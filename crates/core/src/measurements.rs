//! Security measurements: what the Monitor Module collects and the Trust
//! Module signs — the `M` of the attestation protocol.

use monatt_net::wire::{Reader, Wire, WireError, Writer};

/// A measurement request specification (the protocol's `rM`): which
/// measurements the Attestation Server wants from the target server. This
/// is the Attestation Server's property→measurement mapping output.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum MeasurementSpec {
    /// Boot-time hash chain + VM image hash (Case Study I).
    BootIntegrity,
    /// Kernel vs guest-visible task lists via VMI (Case Study II).
    TaskListProbe,
    /// CPU usage-interval histogram over a window (Case Study III).
    UsageIntervals {
        /// Observation window, microseconds.
        window_us: u64,
    },
    /// The VM's virtual running time over a window (Case Study IV).
    CpuTime {
        /// Observation window, microseconds.
        window_us: u64,
    },
    /// Per-VM scheduler event counters over a window (the extension
    /// property's CC-Hunter-style boost-density measurement).
    SchedulerEvents {
        /// Observation window, microseconds.
        window_us: u64,
    },
}

impl MeasurementSpec {
    /// The runtime observation window this spec requires (zero for
    /// boot-time specs).
    pub fn window_us(&self) -> u64 {
        match self {
            MeasurementSpec::BootIntegrity | MeasurementSpec::TaskListProbe => 0,
            MeasurementSpec::UsageIntervals { window_us }
            | MeasurementSpec::CpuTime { window_us }
            | MeasurementSpec::SchedulerEvents { window_us } => *window_us,
        }
    }
}

impl Wire for MeasurementSpec {
    fn encode(&self, w: &mut Writer) {
        match self {
            MeasurementSpec::BootIntegrity => w.put_u8(0),
            MeasurementSpec::TaskListProbe => w.put_u8(1),
            MeasurementSpec::UsageIntervals { window_us } => {
                w.put_u8(2);
                w.put_u64(*window_us);
            }
            MeasurementSpec::CpuTime { window_us } => {
                w.put_u8(3);
                w.put_u64(*window_us);
            }
            MeasurementSpec::SchedulerEvents { window_us } => {
                w.put_u8(4);
                w.put_u64(*window_us);
            }
        }
    }

    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        match r.get_u8()? {
            0 => Ok(MeasurementSpec::BootIntegrity),
            1 => Ok(MeasurementSpec::TaskListProbe),
            2 => Ok(MeasurementSpec::UsageIntervals {
                window_us: r.get_u64()?,
            }),
            3 => Ok(MeasurementSpec::CpuTime {
                window_us: r.get_u64()?,
            }),
            4 => Ok(MeasurementSpec::SchedulerEvents {
                window_us: r.get_u64()?,
            }),
            d => Err(WireError::InvalidDiscriminant(d)),
        }
    }
}

/// A task entry as reported in measurements.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TaskInfo {
    /// Process id.
    pub pid: u32,
    /// Process name.
    pub name: String,
}

impl Wire for TaskInfo {
    fn encode(&self, w: &mut Writer) {
        w.put_u32(self.pid);
        w.put_str(&self.name);
    }

    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        Ok(TaskInfo {
            pid: r.get_u32()?,
            name: r.get_str()?,
        })
    }
}

/// The collected measurements (the protocol's `M`).
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Measurement {
    /// PCR-style boot measurements.
    BootIntegrity {
        /// The accumulated platform PCR value (hypervisor + host OS).
        platform_pcr: [u8; 32],
        /// Hash of the VM image as measured before launch.
        image_hash: [u8; 32],
    },
    /// Task lists from VMI and from the guest itself.
    TaskLists {
        /// The kernel task list read by introspection.
        kernel: Vec<TaskInfo>,
        /// What the (possibly compromised) guest reports.
        guest_visible: Vec<TaskInfo>,
    },
    /// The 30 Trust Evidence Register counters of Case Study III.
    UsageIntervals {
        /// Histogram counters.
        bins: Vec<u64>,
        /// Bin width in microseconds.
        bin_width_us: u64,
        /// Observation window length.
        window_us: u64,
    },
    /// Virtual running time of Case Study IV.
    CpuTime {
        /// The VM's virtual running time in the window (`CPU_measure`).
        virtual_time_us: u64,
        /// Window length (real time).
        window_us: u64,
        /// Number of runnable co-resident vCPUs sharing the pCPU during
        /// the window (for entitlement computation).
        contending_vcpus: u32,
    },
    /// PMU scheduler event counters over a window (extension property).
    SchedulerEvents {
        /// Wake-ups granted BOOST priority.
        boosts: u64,
        /// IPIs sent by the VM.
        ipis_sent: u64,
        /// Total wake-ups.
        wakeups: u64,
        /// Window length.
        window_us: u64,
    },
}

fn put_tasks(w: &mut Writer, tasks: &[TaskInfo]) {
    w.put_u32(tasks.len() as u32);
    for t in tasks {
        t.encode(w);
    }
}

fn get_tasks(r: &mut Reader<'_>) -> Result<Vec<TaskInfo>, WireError> {
    let n = r.get_u32()? as usize;
    if n > 1_000_000 {
        return Err(WireError::LengthOverflow);
    }
    (0..n).map(|_| TaskInfo::decode(r)).collect()
}

impl Wire for Measurement {
    fn encode(&self, w: &mut Writer) {
        match self {
            Measurement::BootIntegrity {
                platform_pcr,
                image_hash,
            } => {
                w.put_u8(0);
                w.put_fixed(platform_pcr);
                w.put_fixed(image_hash);
            }
            Measurement::TaskLists {
                kernel,
                guest_visible,
            } => {
                w.put_u8(1);
                put_tasks(w, kernel);
                put_tasks(w, guest_visible);
            }
            Measurement::UsageIntervals {
                bins,
                bin_width_us,
                window_us,
            } => {
                w.put_u8(2);
                w.put_u32(bins.len() as u32);
                for b in bins {
                    w.put_u64(*b);
                }
                w.put_u64(*bin_width_us);
                w.put_u64(*window_us);
            }
            Measurement::CpuTime {
                virtual_time_us,
                window_us,
                contending_vcpus,
            } => {
                w.put_u8(3);
                w.put_u64(*virtual_time_us);
                w.put_u64(*window_us);
                w.put_u32(*contending_vcpus);
            }
            Measurement::SchedulerEvents {
                boosts,
                ipis_sent,
                wakeups,
                window_us,
            } => {
                w.put_u8(4);
                w.put_u64(*boosts);
                w.put_u64(*ipis_sent);
                w.put_u64(*wakeups);
                w.put_u64(*window_us);
            }
        }
    }

    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        match r.get_u8()? {
            0 => Ok(Measurement::BootIntegrity {
                platform_pcr: r.get_fixed()?,
                image_hash: r.get_fixed()?,
            }),
            1 => Ok(Measurement::TaskLists {
                kernel: get_tasks(r)?,
                guest_visible: get_tasks(r)?,
            }),
            2 => {
                let n = r.get_u32()? as usize;
                if n > 1_000_000 {
                    return Err(WireError::LengthOverflow);
                }
                let bins = (0..n).map(|_| r.get_u64()).collect::<Result<Vec<_>, _>>()?;
                Ok(Measurement::UsageIntervals {
                    bins,
                    bin_width_us: r.get_u64()?,
                    window_us: r.get_u64()?,
                })
            }
            3 => Ok(Measurement::CpuTime {
                virtual_time_us: r.get_u64()?,
                window_us: r.get_u64()?,
                contending_vcpus: r.get_u32()?,
            }),
            4 => Ok(Measurement::SchedulerEvents {
                boosts: r.get_u64()?,
                ipis_sent: r.get_u64()?,
                wakeups: r.get_u64()?,
                window_us: r.get_u64()?,
            }),
            d => Err(WireError::InvalidDiscriminant(d)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn samples() -> Vec<Measurement> {
        vec![
            Measurement::BootIntegrity {
                platform_pcr: [1; 32],
                image_hash: [2; 32],
            },
            Measurement::TaskLists {
                kernel: vec![
                    TaskInfo {
                        pid: 1,
                        name: "init".into(),
                    },
                    TaskInfo {
                        pid: 66,
                        name: "rootkit".into(),
                    },
                ],
                guest_visible: vec![TaskInfo {
                    pid: 1,
                    name: "init".into(),
                }],
            },
            Measurement::UsageIntervals {
                bins: vec![5; 30],
                bin_width_us: 1_000,
                window_us: 3_000_000,
            },
            Measurement::CpuTime {
                virtual_time_us: 123_456,
                window_us: 1_000_000,
                contending_vcpus: 3,
            },
        ]
    }

    #[test]
    fn wire_roundtrip() {
        for m in samples() {
            let bytes = m.to_wire();
            assert_eq!(Measurement::from_wire(&bytes).unwrap(), m);
        }
    }

    #[test]
    fn spec_roundtrip() {
        for spec in [
            MeasurementSpec::BootIntegrity,
            MeasurementSpec::TaskListProbe,
            MeasurementSpec::UsageIntervals { window_us: 5 },
            MeasurementSpec::CpuTime { window_us: 9 },
        ] {
            assert_eq!(MeasurementSpec::from_wire(&spec.to_wire()).unwrap(), spec);
        }
    }

    #[test]
    fn windows() {
        assert_eq!(MeasurementSpec::BootIntegrity.window_us(), 0);
        assert_eq!(MeasurementSpec::CpuTime { window_us: 77 }.window_us(), 77);
    }

    #[test]
    fn bad_discriminant_rejected() {
        assert!(Measurement::from_wire(&[9]).is_err());
        assert!(MeasurementSpec::from_wire(&[9]).is_err());
    }

    #[test]
    fn encoding_is_canonical() {
        let m = samples().remove(1);
        assert_eq!(m.to_wire(), m.to_wire());
    }
}
