//! The Property Interpretation Module (Section 3.2.3 and Section 4): maps
//! requested security properties to measurement specifications, and
//! interprets returned measurements into health verdicts — the bridge
//! across the paper's "semantic gap".

use crate::measurements::{Measurement, MeasurementSpec, TaskInfo};
use crate::types::{HealthStatus, Image, SecurityProperty};
use monatt_crypto::sha256::sha256;
use monatt_crypto::zeroize::ct_eq;
use monatt_tpm::pcr::PcrBank;

/// Default runtime observation window (1 s) for interval and CPU-time
/// measurements — enough for ~200 covert-channel bit slots.
pub const DEFAULT_WINDOW_US: u64 = 1_000_000;

/// The reference values an appraiser needs: pristine platform and image
/// hashes (the role the IMA-style appraiser plays in Section 4.2.2).
#[derive(Clone, Debug)]
pub struct ReferenceDb {
    platform_components: Vec<&'static str>,
    // Reference values are fixed for the database's lifetime, so they are
    // computed once here: appraisal sits on the per-attestation hot path
    // and must not re-derive (or re-allocate) pristine blobs every round.
    platform_pcr: [u8; 32],
    image_hashes: [[u8; 32]; Image::ALL.len()],
}

impl Default for ReferenceDb {
    fn default() -> Self {
        Self::new()
    }
}

impl ReferenceDb {
    /// Creates the reference database with the stock platform software.
    pub fn new() -> Self {
        let platform_components = vec!["firmware-v2", "xen-4.4", "dom0-linux-3.13"];
        let digests: Vec<[u8; 32]> = platform_components
            .iter()
            .map(|c| sha256(c.as_bytes()))
            .collect();
        ReferenceDb {
            platform_pcr: PcrBank::replay(&digests),
            image_hashes: Image::ALL.map(|image| sha256(&image.pristine_bytes())),
            platform_components,
        }
    }

    /// The platform components measured at server boot, in load order.
    pub fn platform_components(&self) -> &[&'static str] {
        &self.platform_components
    }

    /// The expected PCR value of a pristine platform.
    pub fn expected_platform_pcr(&self) -> [u8; 32] {
        self.platform_pcr
    }

    /// The expected hash of a pristine image.
    pub fn expected_image_hash(&self, image: Image) -> [u8; 32] {
        let [cirros, fedora, ubuntu] = self.image_hashes;
        match image {
            Image::Cirros => cirros,
            Image::Fedora => fedora,
            Image::Ubuntu => ubuntu,
        }
    }
}

/// Maps a security property to the measurements that indicate it —
/// the `P → M` mapping of Section 4.1.
pub fn property_to_spec(property: SecurityProperty) -> MeasurementSpec {
    match property {
        SecurityProperty::StartupIntegrity => MeasurementSpec::BootIntegrity,
        SecurityProperty::RuntimeIntegrity => MeasurementSpec::TaskListProbe,
        SecurityProperty::CovertChannelFreedom => MeasurementSpec::UsageIntervals {
            window_us: DEFAULT_WINDOW_US,
        },
        SecurityProperty::CpuAvailability { .. } => MeasurementSpec::CpuTime {
            window_us: DEFAULT_WINDOW_US,
        },
        SecurityProperty::SchedulerFairness => MeasurementSpec::SchedulerEvents {
            window_us: DEFAULT_WINDOW_US,
        },
    }
}

/// Interprets a measurement for a property. `expected_image` supplies the
/// per-VM context startup integrity needs.
pub fn interpret(
    property: SecurityProperty,
    measurement: &Measurement,
    expected_image: Image,
    references: &ReferenceDb,
) -> HealthStatus {
    match (property, measurement) {
        (
            SecurityProperty::StartupIntegrity,
            Measurement::BootIntegrity {
                platform_pcr,
                image_hash,
            },
        ) => interpret_boot(platform_pcr, image_hash, expected_image, references),
        (
            SecurityProperty::RuntimeIntegrity,
            Measurement::TaskLists {
                kernel,
                guest_visible,
            },
        ) => interpret_task_lists(kernel, guest_visible),
        (
            SecurityProperty::CovertChannelFreedom,
            Measurement::UsageIntervals {
                bins, bin_width_us, ..
            },
        ) => interpret_intervals(bins, *bin_width_us),
        (
            SecurityProperty::CpuAvailability { min_share_pct },
            Measurement::CpuTime {
                virtual_time_us,
                window_us,
                contending_vcpus,
            },
        ) => interpret_cpu_time(
            *virtual_time_us,
            *window_us,
            *contending_vcpus,
            min_share_pct,
        ),
        (
            SecurityProperty::SchedulerFairness,
            Measurement::SchedulerEvents {
                boosts, window_us, ..
            },
        ) => interpret_scheduler_events(*boosts, *window_us),
        _ => HealthStatus::Compromised {
            reason: format!("measurement does not match property {property}"),
        },
    }
}

fn interpret_boot(
    platform_pcr: &[u8; 32],
    image_hash: &[u8; 32],
    expected_image: Image,
    references: &ReferenceDb,
) -> HealthStatus {
    if !ct_eq(platform_pcr, &references.expected_platform_pcr()) {
        return HealthStatus::Compromised {
            reason: "platform configuration hash does not match pristine reference".into(),
        };
    }
    if !ct_eq(image_hash, &references.expected_image_hash(expected_image)) {
        return HealthStatus::Compromised {
            reason: format!("VM image hash does not match pristine {expected_image} image"),
        };
    }
    HealthStatus::Healthy
}

fn interpret_task_lists(kernel: &[TaskInfo], guest_visible: &[TaskInfo]) -> HealthStatus {
    let hidden: Vec<&TaskInfo> = kernel
        .iter()
        .filter(|k| !guest_visible.iter().any(|v| v.pid == k.pid))
        .collect();
    if hidden.is_empty() {
        HealthStatus::Healthy
    } else {
        let names: Vec<String> = hidden
            .iter()
            .map(|t| format!("{}(pid {})", t.name, t.pid))
            .collect();
        HealthStatus::Compromised {
            reason: format!(
                "tasks present in kernel memory but hidden from the guest: {}",
                names.join(", ")
            ),
        }
    }
}

/// Statistics of the covert-channel analysis, exposed for the Figure 5
/// harness.
#[derive(Clone, Debug, PartialEq)]
pub struct IntervalAnalysis {
    /// Total recorded intervals.
    pub samples: u64,
    /// Cluster centers in milliseconds (low, high), when two clusters
    /// were found.
    pub centers_ms: Option<(f64, f64)>,
    /// Probability mass of the lower cluster.
    pub low_mass: f64,
    /// Whether the pattern was classified as a covert channel.
    pub covert: bool,
}

/// Minimum samples before the detector will flag anything.
const MIN_SAMPLES: u64 = 50;
/// Minimum probability mass each cluster needs to count as a "peak".
const MIN_PEAK_MASS: f64 = 0.15;
/// Minimum separation between the two peaks, in bins.
const MIN_SEPARATION_BINS: f64 = 2.0;

/// The two-peak detector of Section 4.4.3: clusters the usage-interval
/// distribution with weighted 2-means. Two well-separated peaks of short
/// intervals indicate a "0"/"1" transmission pattern; a benign VM shows a
/// single peak at the 30 ms scheduler slice.
pub fn analyze_intervals(bins: &[u64], bin_width_us: u64) -> IntervalAnalysis {
    let samples: u64 = bins.iter().sum();
    if samples < MIN_SAMPLES || bins.is_empty() || bin_width_us == 0 {
        return IntervalAnalysis {
            samples,
            centers_ms: None,
            low_mass: 0.0,
            covert: false,
        };
    }
    // Weighted 2-means over bin centers.
    let center = |i: usize| (i as f64 + 0.5) * bin_width_us as f64 / 1_000.0;
    let (Some(first), Some(last)) = (
        bins.iter().position(|&b| b > 0),
        bins.iter().rposition(|&b| b > 0),
    ) else {
        // Unreachable given samples >= MIN_SAMPLES, but degrade gracefully.
        return IntervalAnalysis {
            samples,
            centers_ms: None,
            low_mass: 0.0,
            covert: false,
        };
    };
    if first == last {
        // A single occupied bin: one peak.
        return IntervalAnalysis {
            samples,
            centers_ms: None,
            low_mass: 1.0,
            covert: false,
        };
    }
    let mut c_low = center(first);
    let mut c_high = center(last);
    for _ in 0..32 {
        let mut sum_low = 0.0;
        let mut w_low = 0.0;
        let mut sum_high = 0.0;
        let mut w_high = 0.0;
        for (i, &b) in bins.iter().enumerate() {
            if b == 0 {
                continue;
            }
            let (w, c) = (b as f64, center(i));
            if (c - c_low).abs() <= (c - c_high).abs() {
                sum_low += c * w;
                w_low += w;
            } else {
                sum_high += c * w;
                w_high += w;
            }
        }
        let new_low = if w_low > 0.0 { sum_low / w_low } else { c_low };
        let new_high = if w_high > 0.0 {
            sum_high / w_high
        } else {
            c_high
        };
        let converged = (new_low - c_low).abs() < 1e-9 && (new_high - c_high).abs() < 1e-9;
        c_low = new_low;
        c_high = new_high;
        if converged {
            break;
        }
    }
    // Final assignment for masses and per-cluster peak bins.
    let mut mass_low = 0.0;
    let mut peak_low: (usize, u64) = (first, 0);
    let mut peak_high: (usize, u64) = (last, 0);
    for (i, &b) in bins.iter().enumerate() {
        if b == 0 {
            continue;
        }
        let c = center(i);
        if (c - c_low).abs() <= (c - c_high).abs() {
            mass_low += b as f64;
            if b > peak_low.1 {
                peak_low = (i, b);
            }
        } else if b > peak_high.1 {
            peak_high = (i, b);
        }
    }
    let low_mass = mass_low / samples as f64;
    let high_mass = 1.0 - low_mass;
    let separation_bins = (c_high - c_low).abs() / (bin_width_us as f64 / 1_000.0);
    // True bimodality needs a valley: the occupancy between the two peak
    // bins must drop well below both peaks. A jittered unimodal workload
    // has contiguous mass and therefore no valley.
    let valley = match bins.get(peak_low.0 + 1..peak_high.0) {
        Some(between) if !between.is_empty() => between.iter().copied().min().unwrap_or(0),
        _ => peak_low.1.min(peak_high.1),
    };
    let has_valley = (valley as f64) < 0.25 * peak_low.1.min(peak_high.1) as f64;
    let covert = low_mass >= MIN_PEAK_MASS
        && high_mass >= MIN_PEAK_MASS
        && separation_bins >= MIN_SEPARATION_BINS
        && has_valley;
    IntervalAnalysis {
        samples,
        centers_ms: Some((c_low, c_high)),
        low_mass,
        covert,
    }
}

fn interpret_intervals(bins: &[u64], bin_width_us: u64) -> HealthStatus {
    let analysis = analyze_intervals(bins, bin_width_us);
    if let (true, Some((lo, hi))) = (analysis.covert, analysis.centers_ms) {
        HealthStatus::Compromised {
            reason: format!(
                "bimodal CPU usage intervals (peaks at {lo:.1} ms and {hi:.1} ms over {} samples) indicate covert-channel signalling",
                analysis.samples
            ),
        }
    } else {
        HealthStatus::Healthy
    }
}

fn interpret_cpu_time(
    virtual_time_us: u64,
    window_us: u64,
    contending_vcpus: u32,
    min_share_pct: u8,
) -> HealthStatus {
    if window_us == 0 {
        return HealthStatus::Compromised {
            reason: "empty measurement window".into(),
        };
    }
    let usage = virtual_time_us as f64 / window_us as f64;
    // Fair entitlement: an equal share of the pCPU among contending vCPUs.
    let entitlement = 1.0 / contending_vcpus.max(1) as f64;
    let relative = usage / entitlement;
    if relative * 100.0 + 1e-9 < min_share_pct as f64 {
        HealthStatus::Compromised {
            reason: format!(
                "relative CPU usage {:.1}% of entitlement (usage {:.1}% of wall clock, {} contending vCPUs) below the {}% SLA floor",
                relative * 100.0,
                usage * 100.0,
                contending_vcpus,
                min_share_pct
            ),
        }
    } else {
        HealthStatus::Healthy
    }
}

/// Boost wake-ups per second above which a VM is judged to be gaming the
/// scheduler. Benign I/O-bound services wake at most ~100 times per
/// second (their I/O waits are several milliseconds); the boost attacker
/// and the covert-channel sender both wake with boost at ~200/s.
const BOOST_ABUSE_PER_SEC: f64 = 150.0;

fn interpret_scheduler_events(boosts: u64, window_us: u64) -> HealthStatus {
    if window_us == 0 {
        return HealthStatus::Compromised {
            reason: "empty measurement window".into(),
        };
    }
    let rate = boosts as f64 / (window_us as f64 / 1_000_000.0);
    if rate > BOOST_ABUSE_PER_SEC {
        HealthStatus::Compromised {
            reason: format!(
                "{rate:.0} boosted wake-ups per second (threshold {BOOST_ABUSE_PER_SEC:.0}/s) indicate scheduler-boost abuse"
            ),
        }
    } else {
        HealthStatus::Healthy
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn refs() -> ReferenceDb {
        ReferenceDb::new()
    }

    #[test]
    fn pristine_boot_is_healthy() {
        let r = refs();
        let status = interpret(
            SecurityProperty::StartupIntegrity,
            &Measurement::BootIntegrity {
                platform_pcr: r.expected_platform_pcr(),
                image_hash: r.expected_image_hash(Image::Ubuntu),
            },
            Image::Ubuntu,
            &r,
        );
        assert!(status.is_healthy());
    }

    #[test]
    fn tampered_image_detected() {
        let r = refs();
        let status = interpret(
            SecurityProperty::StartupIntegrity,
            &Measurement::BootIntegrity {
                platform_pcr: r.expected_platform_pcr(),
                image_hash: [0xde; 32],
            },
            Image::Ubuntu,
            &r,
        );
        assert!(!status.is_healthy());
    }

    #[test]
    fn wrong_image_kind_detected() {
        let r = refs();
        let status = interpret(
            SecurityProperty::StartupIntegrity,
            &Measurement::BootIntegrity {
                platform_pcr: r.expected_platform_pcr(),
                image_hash: r.expected_image_hash(Image::Fedora),
            },
            Image::Ubuntu,
            &r,
        );
        assert!(!status.is_healthy());
    }

    #[test]
    fn corrupted_platform_detected() {
        let r = refs();
        let status = interpret(
            SecurityProperty::StartupIntegrity,
            &Measurement::BootIntegrity {
                platform_pcr: [0; 32],
                image_hash: r.expected_image_hash(Image::Cirros),
            },
            Image::Cirros,
            &r,
        );
        assert!(!status.is_healthy());
    }

    fn task(pid: u32, name: &str) -> TaskInfo {
        TaskInfo {
            pid,
            name: name.into(),
        }
    }

    #[test]
    fn matching_task_lists_healthy() {
        let tasks = vec![task(1, "init"), task(2, "sshd")];
        let status = interpret_task_lists(&tasks, &tasks);
        assert!(status.is_healthy());
    }

    #[test]
    fn hidden_task_detected_and_named() {
        let kernel = vec![task(1, "init"), task(66, "cryptominer")];
        let visible = vec![task(1, "init")];
        let status = interpret_task_lists(&kernel, &visible);
        let HealthStatus::Compromised { reason } = status else {
            panic!("expected compromised");
        };
        assert!(reason.contains("cryptominer"));
        assert!(reason.contains("66"));
    }

    #[test]
    fn bimodal_intervals_flagged() {
        // Peaks in bins 0 (1ms) and 3 (4ms): the covert pattern.
        let mut bins = vec![0u64; 30];
        bins[0] = 300;
        bins[3] = 280;
        let a = analyze_intervals(&bins, 1_000);
        assert!(a.covert);
        let (lo, hi) = a.centers_ms.unwrap();
        assert!(lo < 2.0 && hi > 3.0, "centers {lo} {hi}");
        assert!(!interpret_intervals(&bins, 1_000).is_healthy());
    }

    #[test]
    fn single_peak_at_slice_is_benign() {
        let mut bins = vec![0u64; 30];
        bins[29] = 200;
        bins[28] = 10;
        assert!(!analyze_intervals(&bins, 1_000).covert);
        assert!(interpret_intervals(&bins, 1_000).is_healthy());
    }

    #[test]
    fn single_short_peak_is_benign() {
        // An I/O-bound service with ~8 ms bursts: one cluster only.
        let mut bins = vec![0u64; 30];
        bins[7] = 150;
        bins[8] = 160;
        bins[6] = 80;
        assert!(!analyze_intervals(&bins, 1_000).covert);
    }

    #[test]
    fn jittered_unimodal_spread_is_benign() {
        // A service with ±20% jitter spreads contiguously over several
        // bins; 2-means will split it, but there is no valley between the
        // halves, so it must not be flagged.
        let mut bins = vec![0u64; 30];
        for (i, count) in [
            (6usize, 40u64),
            (7, 120),
            (8, 160),
            (9, 140),
            (10, 60),
            (11, 20),
        ] {
            bins[i] = count;
        }
        let a = analyze_intervals(&bins, 1_000);
        assert!(!a.covert, "{a:?}");
    }

    #[test]
    fn bimodal_with_valley_still_detected_after_valley_rule() {
        // Slightly smeared covert peaks, still separated by empty bins.
        let mut bins = vec![0u64; 30];
        bins[0] = 250;
        bins[1] = 30;
        bins[3] = 40;
        bins[4] = 240;
        assert!(analyze_intervals(&bins, 1_000).covert);
    }

    #[test]
    fn sparse_data_is_inconclusive() {
        let mut bins = vec![0u64; 30];
        bins[0] = 10;
        bins[10] = 10;
        let a = analyze_intervals(&bins, 1_000);
        assert!(!a.covert, "too few samples to conclude");
    }

    #[test]
    fn availability_verdicts() {
        // Full entitlement: healthy.
        let h = interpret_cpu_time(1_500_000, 3_000_000, 2, 80);
        assert!(h.is_healthy());
        // Starved victim: 3% of wall clock with 3 contenders = 9% of
        // entitlement — far below an 80% floor.
        let c = interpret_cpu_time(90_000, 3_000_000, 3, 80);
        assert!(!c.is_healthy());
        // Solo VM using 100%.
        assert!(interpret_cpu_time(3_000_000, 3_000_000, 1, 90).is_healthy());
    }

    #[test]
    fn scheduler_fairness_thresholds() {
        // 200 boosts/s: the attack signature.
        assert!(!interpret_scheduler_events(200, 1_000_000).is_healthy());
        // ~100 boosts/s: a busy I/O service.
        assert!(interpret_scheduler_events(100, 1_000_000).is_healthy());
        // No window is an error.
        assert!(!interpret_scheduler_events(0, 0).is_healthy());
        // Rates scale with the window.
        assert!(interpret_scheduler_events(200, 2_000_000).is_healthy());
    }

    #[test]
    fn mismatched_measurement_rejected() {
        let status = interpret(
            SecurityProperty::RuntimeIntegrity,
            &Measurement::CpuTime {
                virtual_time_us: 0,
                window_us: 1,
                contending_vcpus: 1,
            },
            Image::Cirros,
            &refs(),
        );
        assert!(!status.is_healthy());
    }

    #[test]
    fn property_spec_mapping() {
        assert_eq!(
            property_to_spec(SecurityProperty::StartupIntegrity),
            MeasurementSpec::BootIntegrity
        );
        assert!(matches!(
            property_to_spec(SecurityProperty::CovertChannelFreedom),
            MeasurementSpec::UsageIntervals { .. }
        ));
    }
}
