//! The `Cloud` facade: wires customer, Cloud Controller, Attestation
//! Server and Cloud Servers together over the simulated network, and
//! exposes the paper's monitoring/attestation APIs (Table 1), the VM
//! launch pipeline (Section 7.1.1), periodic attestation (Section 3.2.1)
//! and remediation responses (Section 5).

use crate::attestation::AttestationServer;
use crate::controller::{CloudController, ResponseAction, ServerInfo, VmLifecycle, VmRecord};
use crate::error::CloudError;
use crate::interpret::ReferenceDb;
use crate::latency::{LatencyParams, RetryPolicy};
use crate::measurements::MeasurementSpec;
use crate::messages::{
    ControllerForward, CustomerReportMsg, CustomerRequest, MeasureRequest, MeasureResponse,
};
use crate::server::CloudServerNode;
use crate::types::{Flavor, HealthStatus, Image, ProtocolStats, SecurityProperty, ServerId, Vid};
use monatt_attacks::boost::{boost_attack_drivers, BoostAttackVcpu};
use monatt_attacks::covert::CovertSender;
use monatt_crypto::drbg::Drbg;
use monatt_crypto::schnorr::SigningKey;
use monatt_hypervisor::driver::{BusyLoop, IdleDriver, WorkloadDriver};
use monatt_hypervisor::scheduler::SchedParams;
use monatt_net::channel::{handshake_pair, ChannelError, SecureChannel};
use monatt_net::sim::SimNetwork;
use monatt_net::wire::Wire;
use monatt_workloads::programs::SpecProgram;
use monatt_workloads::services::CloudService;
use std::collections::BTreeMap;

/// The guest workload to run in a requested VM. Kept as a declarative
/// spec so migration can re-instantiate it on the destination server.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum WorkloadSpec {
    /// All vCPUs idle.
    Idle,
    /// CPU-bound busy loop on every vCPU.
    Busy,
    /// A cloud benchmark service on vCPU 0.
    Service(CloudService),
    /// A SPEC-like CPU-bound program on vCPU 0.
    Program(SpecProgram),
    /// The covert-channel sender of Case Study III (transmits a fixed
    /// pattern).
    CovertSender,
    /// The IPI-boost availability attacker of Case Study IV.
    BoostAttack,
}

/// Observation handles exported by a workload (for throughput and
/// completion measurements in experiments).
#[derive(Clone, Debug, Default)]
pub struct WorkloadHandles {
    /// Request counter of a [`WorkloadSpec::Service`] workload.
    pub service: Option<monatt_hypervisor::driver::Shared<monatt_workloads::ServiceStats>>,
    /// Completion record of a [`WorkloadSpec::Program`] workload.
    pub program: Option<monatt_hypervisor::driver::Shared<monatt_workloads::ProgramStats>>,
}

impl WorkloadSpec {
    fn drivers(&self, vcpus: usize, seed: u64) -> (Vec<Box<dyn WorkloadDriver>>, WorkloadHandles) {
        let mut drivers: Vec<Box<dyn WorkloadDriver>> = Vec::with_capacity(vcpus);
        let mut handles = WorkloadHandles::default();
        match self {
            WorkloadSpec::Idle => {
                for _ in 0..vcpus {
                    drivers.push(Box::new(IdleDriver));
                }
            }
            WorkloadSpec::Busy => {
                for _ in 0..vcpus {
                    drivers.push(Box::new(BusyLoop::default()));
                }
            }
            WorkloadSpec::Service(svc) => {
                let driver = svc.driver(seed);
                handles.service = Some(driver.stats());
                drivers.push(Box::new(driver));
                for _ in 1..vcpus {
                    drivers.push(Box::new(IdleDriver));
                }
            }
            WorkloadSpec::Program(prog) => {
                let driver = prog.driver();
                handles.program = Some(driver.stats());
                drivers.push(Box::new(driver));
                for _ in 1..vcpus {
                    drivers.push(Box::new(IdleDriver));
                }
            }
            WorkloadSpec::CovertSender => {
                drivers.push(Box::new(CovertSender::new(b"\xA5")));
                for _ in 1..vcpus {
                    drivers.push(Box::new(IdleDriver));
                }
            }
            WorkloadSpec::BoostAttack => {
                if vcpus >= 2 {
                    drivers.extend(boost_attack_drivers());
                    for _ in 2..vcpus {
                        drivers.push(Box::new(IdleDriver));
                    }
                } else {
                    drivers.push(Box::new(BoostAttackVcpu::new(0)));
                }
            }
        }
        (drivers, handles)
    }
}

/// A VM request, as submitted by the customer.
#[derive(Clone, Debug)]
pub struct VmRequest {
    /// VM size.
    pub flavor: Flavor,
    /// Boot image.
    pub image: Image,
    /// Security properties to provision monitoring for.
    pub properties: Vec<SecurityProperty>,
    /// Guest workload.
    pub workload: WorkloadSpec,
    /// Experiment hook: corrupt the image in storage before launch
    /// (Case Study I attack).
    pub tampered_image: bool,
    /// Experiment hook: force placement on a specific server.
    pub on_server: Option<ServerId>,
    /// Experiment hook: pin all vCPUs to one pCPU (co-residency).
    pub pin_pcpu: Option<usize>,
}

impl VmRequest {
    /// Creates a request with no security properties and an idle guest.
    pub fn new(flavor: Flavor, image: Image) -> Self {
        VmRequest {
            flavor,
            image,
            properties: Vec::new(),
            workload: WorkloadSpec::Idle,
            tampered_image: false,
            on_server: None,
            pin_pcpu: None,
        }
    }

    /// Adds a required security property.
    pub fn require(mut self, property: SecurityProperty) -> Self {
        self.properties.push(property);
        self
    }

    /// Sets the guest workload.
    pub fn workload(mut self, workload: WorkloadSpec) -> Self {
        self.workload = workload;
        self
    }

    /// Corrupts the image in storage (attack experiment).
    pub fn with_tampered_image(mut self) -> Self {
        self.tampered_image = true;
        self
    }

    /// Forces placement on `server` (experiment hook).
    pub fn on_server(mut self, server: ServerId) -> Self {
        self.on_server = Some(server);
        self
    }

    /// Pins all vCPUs to pCPU `p` of the chosen server (experiment hook).
    pub fn pin_pcpu(mut self, p: usize) -> Self {
        self.pin_pcpu = Some(p);
        self
    }
}

/// Stage breakdown of one VM launch (Figure 9).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct LaunchTiming {
    /// Scheduling stage (incl. the CloudMonatt property filter).
    pub scheduling_us: u64,
    /// Networking stage.
    pub networking_us: u64,
    /// Block-device-mapping stage.
    pub block_device_us: u64,
    /// Spawning stage.
    pub spawning_us: u64,
    /// The new Attestation stage.
    pub attestation_us: u64,
}

impl LaunchTiming {
    /// Total launch time.
    pub fn total_us(&self) -> u64 {
        self.scheduling_us
            + self.networking_us
            + self.block_device_us
            + self.spawning_us
            + self.attestation_us
    }
}

/// The customer-facing attestation result.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct AttestationReport {
    /// The attested VM.
    pub vid: Vid,
    /// The property checked.
    pub property: SecurityProperty,
    /// The verdict.
    pub status: HealthStatus,
    /// End-to-end attestation latency (protocol + measurement window).
    pub elapsed_us: u64,
    /// At what cloud wall-clock time the report was issued.
    pub issued_at_us: u64,
}

impl AttestationReport {
    /// True if the property was judged to hold.
    pub fn healthy(&self) -> bool {
        self.status.is_healthy()
    }
}

/// Timing of a remediation response (Figure 11).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ResponseTiming {
    /// Which response ran.
    pub action: ResponseAction,
    /// Time the response itself took.
    pub response_us: u64,
}

/// The cadence of a periodic attestation (Table 1: "at the frequency of
/// freq or at random intervals").
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Frequency {
    /// A fixed period.
    Fixed(u64),
    /// Uniformly random intervals in `[min_us, max_us]` — randomized
    /// monitoring is harder for an attacker to schedule around.
    Random {
        /// Shortest interval.
        min_us: u64,
        /// Longest interval.
        max_us: u64,
    },
}

impl Frequency {
    /// Convenience constructor for a fixed period in seconds.
    pub fn secs(s: u64) -> Self {
        Frequency::Fixed(s * 1_000_000)
    }

    fn next_interval(&self, rng: &mut Drbg) -> u64 {
        match *self {
            Frequency::Fixed(us) => us,
            Frequency::Random { min_us, max_us } => {
                // Sample from [min_us, max_us] exactly. A degenerate or
                // inverted range (max_us <= min_us) clamps to min_us
                // instead of silently overshooting max_us; a zero
                // interval would never advance the clock, so floor at 1.
                if max_us <= min_us {
                    return min_us.max(1);
                }
                min_us + rng.next_u64_below(max_us - min_us + 1)
            }
        }
    }
}

/// A periodic attestation subscription.
#[derive(Debug)]
struct Subscription {
    vid: Vid,
    property: SecurityProperty,
    frequency: Frequency,
    next_due_us: u64,
    reports: Vec<AttestationReport>,
    /// Samples that came due but failed (protocol error or unreachable).
    missed: u64,
    /// Failures since the last successful sample.
    consecutive_failures: u32,
    /// How often the consecutive-failure threshold was crossed and the
    /// Response Module notified.
    escalations: u32,
}

/// Degradation counters of one periodic subscription — missed samples
/// are recorded, not silently discarded, so a lossy network is
/// distinguishable from a healthy one.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct SubscriptionHealth {
    /// Reports successfully delivered so far.
    pub delivered: u64,
    /// Samples that came due but produced no report.
    pub missed: u64,
    /// Failures since the last successful sample.
    pub consecutive_failures: u32,
    /// Times the failure streak reached the escalation threshold.
    pub escalations: u32,
}

/// Both endpoints of one SSL-like link, with the peer names resolved once
/// at build time so protocol hops never format endpoint identifiers.
struct ChannelPair {
    initiator: SecureChannel,
    responder: SecureChannel,
}

/// Builder for a [`Cloud`].
#[derive(Clone, Debug)]
pub struct CloudBuilder {
    servers: usize,
    pcpus_per_server: usize,
    seed: u64,
    latency: LatencyParams,
    sched: SchedParams,
    retry: RetryPolicy,
    escalation_threshold: u32,
    auto_response: bool,
    corrupted_platforms: Vec<usize>,
}

impl Default for CloudBuilder {
    fn default() -> Self {
        Self::new()
    }
}

impl CloudBuilder {
    /// Starts a builder with 3 servers of 4 pCPUs (the paper's testbed
    /// scale).
    pub fn new() -> Self {
        CloudBuilder {
            servers: 3,
            pcpus_per_server: 4,
            seed: 0,
            latency: LatencyParams::default(),
            sched: SchedParams::default(),
            retry: RetryPolicy::default(),
            escalation_threshold: 3,
            auto_response: false,
            corrupted_platforms: Vec::new(),
        }
    }

    /// Sets the number of cloud servers.
    pub fn servers(mut self, n: usize) -> Self {
        self.servers = n;
        self
    }

    /// Sets pCPUs per server.
    pub fn pcpus_per_server(mut self, n: usize) -> Self {
        self.pcpus_per_server = n;
        self
    }

    /// Seeds all randomness (key generation, nonces, workload jitter).
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Overrides the latency model.
    pub fn latency(mut self, latency: LatencyParams) -> Self {
        self.latency = latency;
        self
    }

    /// Overrides the hypervisor scheduler parameters.
    pub fn sched(mut self, sched: SchedParams) -> Self {
        self.sched = sched;
        self
    }

    /// Overrides the per-hop retransmission policy
    /// ([`RetryPolicy::disabled`] restores fail-fast hops).
    pub fn retry(mut self, retry: RetryPolicy) -> Self {
        self.retry = retry;
        self
    }

    /// After how many consecutive missed periodic samples a subscription
    /// escalates to the Response Module (default 3; minimum 1).
    pub fn escalation_threshold(mut self, k: u32) -> Self {
        self.escalation_threshold = k.max(1);
        self
    }

    /// Enables automatic remediation responses on failed attestations.
    pub fn auto_response(mut self, on: bool) -> Self {
        self.auto_response = on;
        self
    }

    /// Boots server `index` with a corrupted hypervisor (Case Study I
    /// platform attack).
    pub fn corrupt_platform(mut self, index: usize) -> Self {
        self.corrupted_platforms.push(index);
        self
    }

    /// Builds the cloud: provisions keys, boots servers, registers them
    /// with the controller and pCA, and establishes the secure channels.
    ///
    /// Convenience wrapper over [`Self::try_build`] for tests, benches
    /// and examples.
    ///
    /// # Panics
    ///
    /// Panics if a secure-channel handshake between the freshly
    /// provisioned (honest, in-process) parties fails, which indicates a
    /// bug rather than adversarial input.
    pub fn build(self) -> Cloud {
        // Documented convenience panic; fallible callers use try_build.
        self.try_build()
            .expect("cloud assembly between honest parties") // #[allow(monatt::panic_freedom)]
    }

    /// Builds the cloud, surfacing secure-channel establishment failures
    /// as [`CloudError::ChannelEstablishment`] instead of panicking.
    ///
    /// # Errors
    ///
    /// Returns [`CloudError::ChannelEstablishment`] if any of the
    /// customer↔controller, controller↔attestation-server or
    /// attestation-server↔cloud-server handshakes fails.
    pub fn try_build(self) -> Result<Cloud, CloudError> {
        let mut rng = Drbg::from_seed(self.seed);
        let mut controller = CloudController::new(&mut rng);
        let mut attserver = AttestationServer::new(&mut rng);
        let customer_identity = SigningKey::generate(&mut rng);
        let references = ReferenceDb::new();
        let all_properties = [
            SecurityProperty::StartupIntegrity,
            SecurityProperty::RuntimeIntegrity,
            SecurityProperty::CovertChannelFreedom,
            SecurityProperty::CpuAvailability { min_share_pct: 0 },
            SecurityProperty::SchedulerFairness,
        ];
        let mut servers = BTreeMap::new();
        for i in 0..self.servers {
            let id = ServerId(i as u32);
            let corrupted = self.corrupted_platforms.contains(&i);
            let components: Vec<&str> = if corrupted {
                vec!["firmware-v2", "trojaned-xen-4.4", "dom0-linux-3.13"]
            } else {
                references.platform_components().to_vec()
            };
            let node = CloudServerNode::boot(
                id,
                self.pcpus_per_server,
                self.sched,
                Drbg::from_seed(self.seed ^ (0xABCD + i as u64)),
                &components,
                &all_properties,
            );
            attserver.register_cloud_server(node.identity_key());
            controller.register_server(ServerInfo {
                id,
                free_vcpus: node.free_vcpus(),
                supported_properties: all_properties.iter().map(|p| p.label()).collect(),
            });
            servers.insert(id, node);
        }
        // Establish the SSL-like channels (session keys Kx, Ky, Kz).
        let controller_identity = SigningKey::generate(&mut rng);
        let attserver_identity = SigningKey::generate(&mut rng);
        let make_pair = |rng: &mut Drbg,
                         a: &SigningKey,
                         b: &SigningKey,
                         a_name: &str,
                         b_name: &str|
         -> Result<ChannelPair, CloudError> {
            let (mut i, mut r) =
                handshake_pair(rng, a, b).map_err(|error| CloudError::ChannelEstablishment {
                    initiator: a_name.to_string(),
                    responder: b_name.to_string(),
                    error,
                })?;
            i.set_peer(b_name);
            r.set_peer(a_name);
            Ok(ChannelPair {
                initiator: i,
                responder: r,
            })
        };
        let cust_ctrl = make_pair(
            &mut rng,
            &customer_identity,
            &controller_identity,
            "customer",
            "controller",
        )?;
        let ctrl_as = make_pair(
            &mut rng,
            &controller_identity,
            &attserver_identity,
            "controller",
            "attserver",
        )?;
        let mut as_server = BTreeMap::new();
        for id in servers.keys() {
            // In deployment the server end terminates inside the
            // Attestation Client; the channel key is Kz.
            let server_chan_identity = SigningKey::generate(&mut rng);
            as_server.insert(
                *id,
                make_pair(
                    &mut rng,
                    &attserver_identity,
                    &server_chan_identity,
                    "attserver",
                    &id.to_string(),
                )?,
            );
        }
        Ok(Cloud {
            rng,
            controller,
            attserver,
            servers,
            network: SimNetwork::default(),
            cust_ctrl,
            ctrl_as,
            as_server,
            latency: self.latency,
            retry: self.retry,
            escalation_threshold: self.escalation_threshold.max(1),
            stats: ProtocolStats::default(),
            wall_clock_us: 0,
            last_launch: None,
            subscriptions: BTreeMap::new(),
            next_subscription: 1,
            auto_response: self.auto_response,
            vm_meta: BTreeMap::new(),
            seed: self.seed,
        })
    }
}

#[derive(Clone, Debug)]
struct VmMeta {
    workload: WorkloadSpec,
    tampered: bool,
    pin_pcpu: Option<usize>,
    handles: WorkloadHandles,
}

/// The assembled CloudMonatt cloud.
pub struct Cloud {
    rng: Drbg,
    controller: CloudController,
    attserver: AttestationServer,
    servers: BTreeMap<ServerId, CloudServerNode>,
    network: SimNetwork,
    cust_ctrl: ChannelPair,
    ctrl_as: ChannelPair,
    as_server: BTreeMap<ServerId, ChannelPair>,
    latency: LatencyParams,
    retry: RetryPolicy,
    escalation_threshold: u32,
    stats: ProtocolStats,
    wall_clock_us: u64,
    last_launch: Option<LaunchTiming>,
    subscriptions: BTreeMap<u64, Subscription>,
    next_subscription: u64,
    auto_response: bool,
    vm_meta: BTreeMap<Vid, VmMeta>,
    seed: u64,
}

impl std::fmt::Debug for Cloud {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Cloud")
            .field("servers", &self.servers.len())
            .field("wall_clock_us", &self.wall_clock_us)
            .finish_non_exhaustive()
    }
}

/// Seals `payload` on `send`, transmits it, and opens it on `recv`,
/// retransmitting per `retry` when the network loses or corrupts the
/// record. Each attempt seals afresh (a new sequence number), so the
/// receive window never confuses a retransmit with a replay; a benign
/// network-duplicated record is fed to the receiver twice and the second
/// copy must bounce off the window.
///
/// Returned latency charges every failed attempt: the transmit time of
/// whatever made it onto the wire, the sender's loss-detection timeout,
/// and exponential backoff with jitter before each retry. On a clean
/// network this reduces exactly to the single delivery's latency, with
/// no RNG draws.
///
/// The endpoint names come from the channels' cached peer labels (the
/// sender is the receiving channel's peer and vice versa), so the hot
/// path does no name formatting; only error paths allocate.
fn hop(
    network: &mut SimNetwork,
    send: &mut SecureChannel,
    recv: &mut SecureChannel,
    payload: &[u8],
    retry: &RetryPolicy,
    rng: &mut Drbg,
    stats: &mut ProtocolStats,
) -> Result<(Vec<u8>, u64), CloudError> {
    let max_attempts = retry.max_attempts.max(1);
    let mut latency_us = 0u64;
    let mut last_auth_failure: Option<ChannelError> = None;
    for attempt in 1..=max_attempts {
        if attempt > 1 {
            stats.retries += 1;
            latency_us += retry.backoff_us(attempt - 1, rng);
        }
        let record = send.seal(b"", payload);
        stats.messages_sent += 1;
        let delivery = network.transmit(recv.peer(), send.peer(), &record);
        match delivery.payload {
            None => {
                // Nothing arrived: the sender learns of the loss only by
                // timing out.
                stats.drops_seen += 1;
                stats.timeouts += 1;
                latency_us += retry.timeout_us;
            }
            Some(delivered) => match recv.open(b"", &delivered) {
                Ok(plaintext) => {
                    latency_us += delivery.latency_us;
                    if delivery.duplicated {
                        // The network delivered a second identical copy;
                        // the receive window must reject it without
                        // desynchronizing the channel.
                        match recv.open(b"", &delivered) {
                            Err(ChannelError::DuplicateRecord) => {
                                stats.duplicates_rejected += 1;
                            }
                            other => {
                                return Err(CloudError::ProtocolFailure {
                                    reason: format!(
                                        "duplicate record from {} not rejected: {other:?}",
                                        recv.peer()
                                    ),
                                })
                            }
                        }
                    }
                    return Ok((plaintext, latency_us));
                }
                Err(e) => {
                    // Corrupted, tampered or replayed: the record is
                    // rejected, the receiver stays silent, the sender
                    // times out.
                    stats.auth_failures += 1;
                    stats.timeouts += 1;
                    latency_us += delivery.latency_us + retry.timeout_us;
                    last_auth_failure = Some(e);
                }
            },
        }
    }
    // Retry budget exhausted. Distinguish "every delivery failed
    // authentication" (evidence of tampering — a protocol failure) from
    // "nothing ever arrived" (the peer is unreachable).
    match last_auth_failure {
        Some(e) => Err(CloudError::ProtocolFailure {
            reason: format!(
                "secure channel {}->{}: {e} ({max_attempts} attempts)",
                recv.peer(),
                send.peer()
            ),
        }),
        None => Err(CloudError::Unreachable {
            peer: send.peer().to_owned(),
            attempts: max_attempts,
        }),
    }
}

impl Cloud {
    /// Current cloud wall-clock time in microseconds.
    pub fn wall_clock_us(&self) -> u64 {
        self.wall_clock_us
    }

    /// Number of cloud servers.
    pub fn server_count(&self) -> usize {
        self.servers.len()
    }

    /// The server currently hosting `vid`.
    pub fn server_of(&self, vid: Vid) -> Option<ServerId> {
        self.controller.vm(vid).map(|r| r.server)
    }

    /// Lifecycle state of `vid`.
    pub fn vm_state(&self, vid: Vid) -> Option<VmLifecycle> {
        self.controller.vm(vid).map(|r| r.state)
    }

    /// Read access to a server node (monitor tools, experiment checks).
    pub fn server(&self, id: ServerId) -> Option<&CloudServerNode> {
        self.servers.get(&id)
    }

    /// Mutable server access — used by attack injection in experiments.
    pub fn server_mut(&mut self, id: ServerId) -> Option<&mut CloudServerNode> {
        self.servers.get_mut(&id)
    }

    /// The network, for installing Dolev-Yao adversaries and fault
    /// models in experiments.
    pub fn network_mut(&mut self) -> &mut SimNetwork {
        &mut self.network
    }

    /// Per-hop protocol delivery counters (retries, drops seen,
    /// duplicates rejected, timeouts) accumulated since the last reset.
    pub fn protocol_stats(&self) -> ProtocolStats {
        self.stats
    }

    /// Zeroes the protocol counters (e.g. between experiment phases).
    pub fn reset_protocol_stats(&mut self) {
        self.stats = ProtocolStats::default();
    }

    /// The per-hop retransmission policy in force.
    pub fn retry_policy(&self) -> RetryPolicy {
        self.retry
    }

    /// The stage breakdown of the most recent launch (Figure 9).
    pub fn last_launch_timing(&self) -> Option<LaunchTiming> {
        self.last_launch
    }

    /// Advances all server simulators and the wall clock by
    /// `duration_us`.
    pub fn advance(&mut self, duration_us: u64) {
        for node in self.servers.values_mut() {
            node.advance(duration_us);
        }
        self.wall_clock_us += duration_us;
    }

    fn fresh_nonce(&mut self) -> [u8; 32] {
        self.rng.next_bytes32()
    }

    /// Requests a VM (the paper's launch pipeline, Section 7.1.1):
    /// Scheduling → Networking → Block-device-mapping → Spawning →
    /// Attestation. If startup attestation finds a compromised platform,
    /// another server is tried; a compromised image rejects the launch.
    ///
    /// # Errors
    ///
    /// [`CloudError::NoQualifiedServer`] or
    /// [`CloudError::LaunchRejected`].
    pub fn request_vm(&mut self, request: VmRequest) -> Result<Vid, CloudError> {
        let vid = self.controller.allocate_vid();
        let wants_attestation = !request.properties.is_empty();
        let mut timing = LaunchTiming::default();
        let mut excluded: Option<ServerId> = None;
        // Try servers until one passes platform attestation.
        for _attempt in 0..self.servers.len().max(1) {
            // Scheduling.
            let server_id = match request.on_server {
                Some(forced) if excluded != Some(forced) => forced,
                Some(_) => {
                    return Err(CloudError::LaunchRejected {
                        reason: "forced server failed platform attestation".into(),
                    })
                }
                None => {
                    self.controller
                        .select_server(request.flavor, &request.properties, excluded)?
                }
            };
            timing.scheduling_us += self
                .latency
                .scheduling_us(self.servers.len(), wants_attestation);
            // Networking, block device mapping, spawning.
            timing.networking_us += self.latency.networking_us();
            timing.block_device_us += self.latency.block_device_us(request.image);
            timing.spawning_us += self.latency.spawning_us(request.image, request.flavor);
            let mut image_bytes = request.image.pristine_bytes();
            if request.tampered_image {
                image_bytes[0] ^= 0xff;
            }
            let (drivers, handles) = request
                .workload
                .drivers(request.flavor.vcpus(), self.seed ^ vid.0);
            let node = self
                .servers
                .get_mut(&server_id)
                .ok_or(CloudError::UnknownServer(server_id))?;
            node.launch_vm_pinned(
                vid,
                request.image,
                image_bytes,
                drivers,
                256,
                request.pin_pcpu,
            );
            // Attestation stage.
            if wants_attestation {
                let (status, elapsed) = self.attest_internal(
                    vid,
                    server_id,
                    SecurityProperty::StartupIntegrity,
                    request.image,
                )?;
                timing.attestation_us += elapsed;
                match status {
                    HealthStatus::Healthy => {}
                    HealthStatus::Compromised { reason } if reason.contains("platform") => {
                        // Try another server for this VM.
                        if let Some(node) = self.servers.get_mut(&server_id) {
                            node.remove_vm(vid);
                        }
                        excluded = Some(server_id);
                        continue;
                    }
                    HealthStatus::Compromised { reason } => {
                        if let Some(node) = self.servers.get_mut(&server_id) {
                            node.remove_vm(vid);
                        }
                        self.last_launch = Some(timing);
                        return Err(CloudError::LaunchRejected { reason });
                    }
                    HealthStatus::Unreachable { .. } => {
                        // Delivery failures surface as Err(Unreachable)
                        // from attest_internal, so a report never carries
                        // this status here; reject defensively — the
                        // launch policy requires a verdict.
                        if let Some(node) = self.servers.get_mut(&server_id) {
                            node.remove_vm(vid);
                        }
                        self.last_launch = Some(timing);
                        return Err(CloudError::LaunchRejected {
                            reason: "no attestation verdict: server unreachable".into(),
                        });
                    }
                }
            }
            self.controller.record_deployment(VmRecord {
                vid,
                flavor: request.flavor,
                image: request.image,
                properties: request.properties.clone(),
                server: server_id,
                state: VmLifecycle::Active,
            });
            self.vm_meta.insert(
                vid,
                VmMeta {
                    workload: request.workload,
                    tampered: request.tampered_image,
                    pin_pcpu: request.pin_pcpu,
                    handles,
                },
            );
            // The attestation stage already advanced time inside
            // attest_internal; advance the management stages now.
            self.advance(timing.total_us().saturating_sub(timing.attestation_us));
            self.last_launch = Some(timing);
            return Ok(vid);
        }
        self.last_launch = Some(timing);
        Err(CloudError::NoQualifiedServer {
            requested: request.properties,
        })
    }

    /// The controller-to-server attestation core (messages 2-5 of Figure
    /// 3). Returns the interpreted status and the elapsed time.
    fn attest_internal(
        &mut self,
        vid: Vid,
        server_id: ServerId,
        property: SecurityProperty,
        expected_image: Image,
    ) -> Result<(HealthStatus, u64), CloudError> {
        let mut elapsed = 0u64;
        let nonce2 = self.fresh_nonce();
        // Message 2: CC -> AS.
        let fwd = ControllerForward {
            vid,
            server: server_id,
            property,
            nonce2,
        };
        let (bytes, latency) = hop(
            &mut self.network,
            &mut self.ctrl_as.initiator,
            &mut self.ctrl_as.responder,
            &fwd.to_wire(),
            &self.retry,
            &mut self.rng,
            &mut self.stats,
        )?;
        elapsed += latency + self.latency.hop_processing_us;
        let fwd =
            ControllerForward::from_wire(&bytes).map_err(|e| CloudError::ProtocolFailure {
                reason: format!("malformed forward: {e}"),
            })?;
        // Message 3: AS -> CS.
        let nonce3 = self.fresh_nonce();
        let measure_req = self
            .attserver
            .build_measure_request(fwd.vid, fwd.property, nonce3);
        let pair = self
            .as_server
            .get_mut(&server_id)
            .ok_or(CloudError::UnknownServer(server_id))?;
        let (bytes, latency) = hop(
            &mut self.network,
            &mut pair.initiator,
            &mut pair.responder,
            &measure_req.to_wire(),
            &self.retry,
            &mut self.rng,
            &mut self.stats,
        )?;
        elapsed += latency + self.latency.hop_processing_us;
        let req = MeasureRequest::from_wire(&bytes).map_err(|e| CloudError::ProtocolFailure {
            reason: format!("malformed measure request: {e}"),
        })?;
        // The server opens the measurement window; runtime windows run
        // concurrently with all VMs (non-intrusive monitoring).
        let window = req.spec.window_us();
        {
            let node = self
                .servers
                .get_mut(&server_id)
                .ok_or(CloudError::UnknownServer(server_id))?;
            node.begin_window(req.spec, req.vid);
        }
        if window > 0 {
            self.advance(window);
            elapsed += window;
        }
        // Measurement + quote cost.
        if matches!(req.spec, MeasurementSpec::BootIntegrity) {
            elapsed += self.latency.hash_us(expected_image.size_mb());
        }
        elapsed += self.latency.quote_generation_us + self.latency.signature_us;
        let response = {
            let node = self
                .servers
                .get_mut(&server_id)
                .ok_or(CloudError::UnknownServer(server_id))?;
            node.attest(req.vid, req.spec, req.nonce3)
                .ok_or(CloudError::UnknownVm(vid))?
        };
        // Message 4: CS -> AS.
        let msg4 = MeasureResponse {
            vid: response.vid,
            spec: response.spec,
            measurement: response.measurement,
            nonce3: response.nonce,
            quote: response.quote,
            cert_request: response.cert_request,
        };
        let pair = self
            .as_server
            .get_mut(&server_id)
            .ok_or(CloudError::UnknownServer(server_id))?;
        let (bytes, latency) = hop(
            &mut self.network,
            &mut pair.responder,
            &mut pair.initiator,
            &msg4.to_wire(),
            &self.retry,
            &mut self.rng,
            &mut self.stats,
        )?;
        elapsed += latency + self.latency.hop_processing_us + self.latency.signature_us;
        let msg4 = MeasureResponse::from_wire(&bytes).map_err(|e| CloudError::ProtocolFailure {
            reason: format!("malformed measure response: {e}"),
        })?;
        self.attserver
            .validate_response(&msg4, vid, measure_req.spec, nonce3)?;
        let status = self
            .attserver
            .interpret_response(property, &msg4, expected_image);
        // Message 5: AS -> CC.
        let report_msg = self
            .attserver
            .certify_report(vid, server_id, property, status, nonce2);
        let (bytes, latency) = hop(
            &mut self.network,
            &mut self.ctrl_as.responder,
            &mut self.ctrl_as.initiator,
            &report_msg.to_wire(),
            &self.retry,
            &mut self.rng,
            &mut self.stats,
        )?;
        elapsed += latency + self.latency.hop_processing_us + self.latency.signature_us;
        let report_msg = crate::messages::AttestationReportMsg::from_wire(&bytes).map_err(|e| {
            CloudError::ProtocolFailure {
                reason: format!("malformed report: {e}"),
            }
        })?;
        AttestationServer::verify_report_msg(&report_msg, &self.attserver.identity_key(), nonce2)?;
        // Real time passes everywhere while the protocol runs: advance
        // the simulators too (the window portion was already advanced).
        self.advance(elapsed.saturating_sub(window));
        Ok((report_msg.status, elapsed))
    }

    /// The full customer-facing attestation (all six messages of Figure
    /// 3), shared by the Table 1 APIs.
    fn customer_attest(
        &mut self,
        vid: Vid,
        property: SecurityProperty,
    ) -> Result<AttestationReport, CloudError> {
        let record = self
            .controller
            .vm(vid)
            .ok_or(CloudError::UnknownVm(vid))?
            .clone();
        if record.state == VmLifecycle::Terminated {
            return Err(CloudError::UnknownVm(vid));
        }
        let mut elapsed = 0u64;
        // Message 1: C -> CC.
        let nonce1 = self.fresh_nonce();
        let request = CustomerRequest {
            vid,
            property,
            nonce1,
        };
        let (bytes, latency) = hop(
            &mut self.network,
            &mut self.cust_ctrl.initiator,
            &mut self.cust_ctrl.responder,
            &request.to_wire(),
            &self.retry,
            &mut self.rng,
            &mut self.stats,
        )?;
        elapsed += latency + self.latency.hop_processing_us;
        let request =
            CustomerRequest::from_wire(&bytes).map_err(|e| CloudError::ProtocolFailure {
                reason: format!("malformed request: {e}"),
            })?;
        // Messages 2-5.
        let (status, core_elapsed) =
            self.attest_internal(request.vid, record.server, request.property, record.image)?;
        elapsed += core_elapsed;
        // Message 6: CC -> C.
        let report_msg =
            self.controller
                .certify_customer_report(vid, property, status.clone(), request.nonce1);
        let (bytes, latency) = hop(
            &mut self.network,
            &mut self.cust_ctrl.responder,
            &mut self.cust_ctrl.initiator,
            &report_msg.to_wire(),
            &self.retry,
            &mut self.rng,
            &mut self.stats,
        )?;
        elapsed += latency + self.latency.hop_processing_us + 2 * self.latency.signature_us;
        let report_msg =
            CustomerReportMsg::from_wire(&bytes).map_err(|e| CloudError::ProtocolFailure {
                reason: format!("malformed customer report: {e}"),
            })?;
        // The customer verifies quote Q1 and the nonce.
        CloudController::verify_customer_report(
            &report_msg,
            &self.controller.identity_key(),
            nonce1,
        )?;
        // attest_internal already advanced time by its share.
        self.advance(elapsed.saturating_sub(core_elapsed));
        Ok(AttestationReport {
            vid,
            property,
            status: report_msg.status,
            elapsed_us: elapsed,
            issued_at_us: self.wall_clock_us,
        })
    }

    /// Table 1: `startup_attest_current(Vid, P, N)` — attestation before
    /// / at launch time.
    ///
    /// # Errors
    ///
    /// [`CloudError::UnknownVm`] or a protocol failure.
    pub fn startup_attest_current(
        &mut self,
        vid: Vid,
        property: SecurityProperty,
    ) -> Result<AttestationReport, CloudError> {
        self.customer_attest(vid, property)
    }

    /// Table 1: `runtime_attest_current(Vid, P, N)` — an immediate
    /// runtime attestation.
    ///
    /// # Errors
    ///
    /// [`CloudError::UnknownVm`] or a protocol failure.
    pub fn runtime_attest_current(
        &mut self,
        vid: Vid,
        property: SecurityProperty,
    ) -> Result<AttestationReport, CloudError> {
        let report = self.customer_attest(vid, property)?;
        if !report.healthy() && self.auto_response {
            let action = self.controller.choose_response(property);
            let _ = self.respond(vid, action);
        }
        Ok(report)
    }

    /// Table 1: `runtime_attest_periodic(Vid, P, freq, N)` — subscribes
    /// to periodic attestation. Reports accumulate as the cloud
    /// [`Cloud::run`]s.
    ///
    /// # Errors
    ///
    /// [`CloudError::UnknownVm`] if the VM does not exist.
    pub fn runtime_attest_periodic(
        &mut self,
        vid: Vid,
        property: SecurityProperty,
        freq_us: u64,
    ) -> Result<u64, CloudError> {
        self.runtime_attest_with_frequency(vid, property, Frequency::Fixed(freq_us))
    }

    /// Table 1's random-interval mode: periodic attestation at uniformly
    /// random intervals, which an attacker cannot schedule around.
    ///
    /// # Errors
    ///
    /// [`CloudError::UnknownVm`] if the VM does not exist.
    pub fn runtime_attest_with_frequency(
        &mut self,
        vid: Vid,
        property: SecurityProperty,
        frequency: Frequency,
    ) -> Result<u64, CloudError> {
        if self.controller.vm(vid).is_none() {
            return Err(CloudError::UnknownVm(vid));
        }
        let id = self.next_subscription;
        self.next_subscription += 1;
        let first = frequency.next_interval(&mut self.rng);
        self.subscriptions.insert(
            id,
            Subscription {
                vid,
                property,
                frequency,
                next_due_us: self.wall_clock_us + first,
                reports: Vec::new(),
                missed: 0,
                consecutive_failures: 0,
                escalations: 0,
            },
        );
        Ok(id)
    }

    /// Degradation counters of a periodic subscription.
    ///
    /// # Errors
    ///
    /// [`CloudError::UnknownSubscription`] for an unknown id.
    pub fn subscription_health(&self, subscription: u64) -> Result<SubscriptionHealth, CloudError> {
        self.subscriptions
            .get(&subscription)
            .map(|s| SubscriptionHealth {
                delivered: s
                    .reports
                    .iter()
                    .filter(|r| !r.status.is_unreachable())
                    .count() as u64,
                missed: s.missed,
                consecutive_failures: s.consecutive_failures,
                escalations: s.escalations,
            })
            .ok_or(CloudError::UnknownSubscription(subscription))
    }

    /// Table 1: `stop_attest_periodic(Vid, P, N)` — ends a subscription
    /// and returns the accumulated reports.
    ///
    /// # Errors
    ///
    /// [`CloudError::UnknownSubscription`] for an unknown id.
    pub fn stop_attest_periodic(
        &mut self,
        subscription: u64,
    ) -> Result<Vec<AttestationReport>, CloudError> {
        self.subscriptions
            .remove(&subscription)
            .map(|s| s.reports)
            .ok_or(CloudError::UnknownSubscription(subscription))
    }

    /// Runs the cloud for `duration_us`, firing periodic attestations as
    /// they come due.
    ///
    /// A sample that fails (protocol failure or unreachable server) is
    /// recorded on the subscription, not silently discarded; after
    /// [`CloudBuilder::escalation_threshold`] consecutive failures the
    /// subscription files an [`HealthStatus::Unreachable`] report and,
    /// under auto-response, invokes the Response Module's
    /// unreachable policy.
    pub fn run(&mut self, duration_us: u64) {
        let end = self.wall_clock_us + duration_us;
        loop {
            let next_due = self
                .subscriptions
                .values()
                .map(|s| s.next_due_us)
                .min()
                .unwrap_or(u64::MAX);
            if next_due >= end {
                // Attestation work may already have advanced the clock
                // past `end`; saturate so the final advance never
                // overshoots the requested horizon.
                let remaining = end.saturating_sub(self.wall_clock_us);
                if remaining > 0 {
                    self.advance(remaining);
                }
                return;
            }
            let gap = next_due.saturating_sub(self.wall_clock_us);
            if gap > 0 {
                self.advance(gap);
            }
            let due: Vec<u64> = self
                .subscriptions
                .iter()
                .filter(|(_, s)| s.next_due_us <= self.wall_clock_us)
                .map(|(id, _)| *id)
                .collect();
            for id in due {
                // `due` was collected from the map above, but a remove
                // racing in a future refactor should skip, not panic.
                let Some(sub) = self.subscriptions.get(&id) else {
                    continue;
                };
                let (vid, property, frequency) = (sub.vid, sub.property, sub.frequency);
                let report = self.runtime_attest_current(vid, property);
                let interval = frequency.next_interval(&mut self.rng);
                let mut escalated_misses = None;
                if let Some(s) = self.subscriptions.get_mut(&id) {
                    s.next_due_us = self.wall_clock_us + interval;
                    match report {
                        Ok(r) => {
                            s.consecutive_failures = 0;
                            s.reports.push(r);
                        }
                        Err(_) => {
                            s.missed += 1;
                            s.consecutive_failures += 1;
                            if s.consecutive_failures >= self.escalation_threshold {
                                s.escalations += 1;
                                escalated_misses = Some(s.consecutive_failures);
                                s.consecutive_failures = 0;
                            }
                        }
                    }
                }
                if let Some(missed) = escalated_misses {
                    let issued_at = self.wall_clock_us;
                    if let Some(s) = self.subscriptions.get_mut(&id) {
                        // File the degradation as a first-class report so
                        // the customer sees the monitoring gap.
                        s.reports.push(AttestationReport {
                            vid,
                            property,
                            status: HealthStatus::Unreachable { missed },
                            elapsed_us: 0,
                            issued_at_us: issued_at,
                        });
                    }
                    if self.auto_response {
                        let action = self.controller.choose_unreachable_response();
                        let _ = self.respond(vid, action);
                    }
                }
            }
        }
    }

    /// Executes a remediation response (Section 5.2) and reports its
    /// timing (Figure 11).
    ///
    /// # Errors
    ///
    /// [`CloudError::UnknownVm`] or [`CloudError::MigrationFailed`].
    pub fn respond(
        &mut self,
        vid: Vid,
        action: ResponseAction,
    ) -> Result<ResponseTiming, CloudError> {
        let record = self
            .controller
            .vm(vid)
            .ok_or(CloudError::UnknownVm(vid))?
            .clone();
        let response_us = match action {
            ResponseAction::Termination => {
                if let Some(node) = self.servers.get_mut(&record.server) {
                    node.remove_vm(vid);
                }
                self.controller.release_capacity(vid);
                if let Some(r) = self.controller.vm_mut(vid) {
                    r.state = VmLifecycle::Terminated;
                }
                self.latency.terminate_us(record.flavor)
            }
            ResponseAction::Suspension => {
                if let Some(node) = self.servers.get_mut(&record.server) {
                    node.suspend_vm(vid);
                }
                if let Some(r) = self.controller.vm_mut(vid) {
                    r.state = VmLifecycle::Suspended;
                }
                self.latency.suspend_us(record.flavor)
            }
            ResponseAction::Migration => {
                let destination = self
                    .controller
                    .select_server(record.flavor, &record.properties, Some(record.server))
                    .map_err(|_| CloudError::MigrationFailed { vid })?;
                let meta = self.vm_meta.get(&vid).cloned().unwrap_or(VmMeta {
                    workload: WorkloadSpec::Idle,
                    tampered: false,
                    pin_pcpu: None,
                    handles: WorkloadHandles::default(),
                });
                if let Some(node) = self.servers.get_mut(&record.server) {
                    node.remove_vm(vid);
                }
                self.controller.release_capacity(vid);
                let mut image_bytes = record.image.pristine_bytes();
                if meta.tampered {
                    image_bytes[0] ^= 0xff;
                }
                let (drivers, handles) = meta
                    .workload
                    .drivers(record.flavor.vcpus(), self.seed ^ vid.0);
                if let Some(m) = self.vm_meta.get_mut(&vid) {
                    m.handles = handles;
                }
                let node = self
                    .servers
                    .get_mut(&destination)
                    .ok_or(CloudError::UnknownServer(destination))?;
                node.launch_vm_pinned(vid, record.image, image_bytes, drivers, 256, meta.pin_pcpu);
                if let Some(r) = self.controller.vm_mut(vid) {
                    r.server = destination;
                    r.state = VmLifecycle::Active;
                }
                self.controller.take_capacity(destination, record.flavor);
                self.latency.migrate_us(record.flavor)
            }
        };
        self.advance(response_us);
        Ok(ResponseTiming {
            action,
            response_us,
        })
    }

    /// The Section 5.2 suspension recheck: briefly resumes a suspended
    /// VM, re-attests the property, and keeps it running only if the
    /// security health has recovered (re-suspending otherwise). Returns
    /// the recheck report.
    ///
    /// # Errors
    ///
    /// [`CloudError::UnknownVm`] or a protocol failure.
    pub fn recheck_and_resume(
        &mut self,
        vid: Vid,
        property: SecurityProperty,
    ) -> Result<AttestationReport, CloudError> {
        if self.vm_state(vid) != Some(VmLifecycle::Suspended) {
            return self.runtime_attest_current(vid, property);
        }
        self.resume(vid)?;
        let report = self.customer_attest(vid, property)?;
        if !report.healthy() {
            let record = self
                .controller
                .vm(vid)
                .ok_or(CloudError::UnknownVm(vid))?
                .clone();
            if let Some(node) = self.servers.get_mut(&record.server) {
                node.suspend_vm(vid);
            }
            if let Some(r) = self.controller.vm_mut(vid) {
                r.state = VmLifecycle::Suspended;
            }
        }
        Ok(report)
    }

    /// Resumes a suspended VM (after the platform re-attests healthy).
    ///
    /// # Errors
    ///
    /// [`CloudError::UnknownVm`] if the VM does not exist.
    pub fn resume(&mut self, vid: Vid) -> Result<(), CloudError> {
        let record = self
            .controller
            .vm(vid)
            .ok_or(CloudError::UnknownVm(vid))?
            .clone();
        if let Some(node) = self.servers.get_mut(&record.server) {
            node.resume_vm(vid);
        }
        if let Some(r) = self.controller.vm_mut(vid) {
            r.state = VmLifecycle::Active;
        }
        Ok(())
    }

    /// Completed service requests of a [`WorkloadSpec::Service`] VM
    /// (throughput measurements, Figure 10).
    pub fn service_requests(&self, vid: Vid) -> Option<u64> {
        self.vm_meta
            .get(&vid)?
            .handles
            .service
            .as_ref()
            .map(|s| s.borrow().requests)
    }

    /// Completion time of a [`WorkloadSpec::Program`] VM, if finished.
    pub fn program_elapsed_us(&self, vid: Vid) -> Option<u64> {
        self.vm_meta
            .get(&vid)?
            .handles
            .program
            .as_ref()
            .and_then(|s| s.borrow().elapsed_us())
    }

    /// Experiment hook: infects a VM with rootkit-hidden malware (Case
    /// Study II).
    ///
    /// # Errors
    ///
    /// [`CloudError::UnknownVm`] if the VM is not hosted anywhere.
    pub fn infect_vm(&mut self, vid: Vid, service_name: &str) -> Result<u32, CloudError> {
        let server = self.server_of(vid).ok_or(CloudError::UnknownVm(vid))?;
        let node = self
            .servers
            .get_mut(&server)
            .ok_or(CloudError::UnknownServer(server))?;
        let local = node.local_vm(vid).ok_or(CloudError::UnknownVm(vid))?;
        let pid = monatt_attacks::rootkit::infect_with_rootkit(node.sim_mut(), local, service_name)
            .ok_or(CloudError::UnknownVm(vid))?;
        Ok(pid)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cloud() -> Cloud {
        CloudBuilder::new().servers(3).seed(7).build()
    }

    #[test]
    fn launch_and_startup_attest() {
        let mut c = cloud();
        let vid = c
            .request_vm(
                VmRequest::new(Flavor::Small, Image::Cirros)
                    .require(SecurityProperty::StartupIntegrity),
            )
            .unwrap();
        let timing = c.last_launch_timing().unwrap();
        assert!(timing.attestation_us > 0);
        assert!(timing.total_us() > 0);
        // Attestation overhead is roughly the paper's ~20%.
        let frac = timing.attestation_us as f64 / timing.total_us() as f64;
        assert!((0.05..0.40).contains(&frac), "attestation fraction {frac}");
        let report = c
            .startup_attest_current(vid, SecurityProperty::StartupIntegrity)
            .unwrap();
        assert!(report.healthy());
    }

    #[test]
    fn tampered_image_rejected_at_launch() {
        let mut c = cloud();
        let err = c
            .request_vm(
                VmRequest::new(Flavor::Small, Image::Ubuntu)
                    .require(SecurityProperty::StartupIntegrity)
                    .with_tampered_image(),
            )
            .unwrap_err();
        let CloudError::LaunchRejected { reason } = err else {
            panic!("expected rejection, got {err:?}");
        };
        assert!(reason.contains("image"), "{reason}");
    }

    #[test]
    fn corrupted_platform_is_avoided() {
        let mut c = CloudBuilder::new()
            .servers(3)
            .seed(8)
            .corrupt_platform(0)
            .build();
        // OpenStack's balance heuristic would pick any server; platform
        // attestation steers the VM away from server 0.
        for _ in 0..3 {
            let vid = c
                .request_vm(
                    VmRequest::new(Flavor::Small, Image::Cirros)
                        .require(SecurityProperty::StartupIntegrity),
                )
                .unwrap();
            assert_ne!(c.server_of(vid), Some(ServerId(0)));
        }
    }

    #[test]
    fn launch_without_properties_skips_attestation() {
        let mut c = cloud();
        let _vid = c
            .request_vm(VmRequest::new(Flavor::Small, Image::Cirros))
            .unwrap();
        let timing = c.last_launch_timing().unwrap();
        assert_eq!(timing.attestation_us, 0);
    }

    #[test]
    fn runtime_integrity_detects_rootkit() {
        let mut c = cloud();
        let vid = c
            .request_vm(
                VmRequest::new(Flavor::Small, Image::Ubuntu)
                    .require(SecurityProperty::RuntimeIntegrity),
            )
            .unwrap();
        let clean = c
            .runtime_attest_current(vid, SecurityProperty::RuntimeIntegrity)
            .unwrap();
        assert!(clean.healthy());
        c.infect_vm(vid, "cryptominer").unwrap();
        let infected = c
            .runtime_attest_current(vid, SecurityProperty::RuntimeIntegrity)
            .unwrap();
        assert!(!infected.healthy());
        let HealthStatus::Compromised { reason } = &infected.status else {
            panic!()
        };
        assert!(reason.contains("cryptominer"));
    }

    #[test]
    fn responses_change_lifecycle() {
        let mut c = cloud();
        let vid = c
            .request_vm(VmRequest::new(Flavor::Medium, Image::Fedora))
            .unwrap();
        let original_server = c.server_of(vid).unwrap();
        let t = c.respond(vid, ResponseAction::Suspension).unwrap();
        assert!(t.response_us > 0);
        assert_eq!(c.vm_state(vid), Some(VmLifecycle::Suspended));
        c.resume(vid).unwrap();
        assert_eq!(c.vm_state(vid), Some(VmLifecycle::Active));
        let t = c.respond(vid, ResponseAction::Migration).unwrap();
        assert!(t.response_us > 0);
        assert_ne!(c.server_of(vid), Some(original_server));
        assert_eq!(c.vm_state(vid), Some(VmLifecycle::Active));
        let t = c.respond(vid, ResponseAction::Termination).unwrap();
        assert!(t.response_us > 0);
        assert_eq!(c.vm_state(vid), Some(VmLifecycle::Terminated));
        // A terminated VM cannot be attested.
        assert!(c
            .runtime_attest_current(vid, SecurityProperty::RuntimeIntegrity)
            .is_err());
    }

    #[test]
    fn periodic_attestation_accumulates_reports() {
        let mut c = cloud();
        let vid = c
            .request_vm(
                VmRequest::new(Flavor::Small, Image::Cirros)
                    .require(SecurityProperty::RuntimeIntegrity)
                    .workload(WorkloadSpec::Busy),
            )
            .unwrap();
        let sub = c
            .runtime_attest_periodic(vid, SecurityProperty::RuntimeIntegrity, 5_000_000)
            .unwrap();
        c.run(21_000_000);
        let reports = c.stop_attest_periodic(sub).unwrap();
        assert!(
            (3..=5).contains(&reports.len()),
            "expected ~4 periodic reports, got {}",
            reports.len()
        );
        assert!(reports.iter().all(|r| r.healthy()));
        assert!(c.stop_attest_periodic(sub).is_err());
    }

    #[test]
    fn cpu_availability_detects_boost_attack() {
        let mut c = CloudBuilder::new().servers(2).seed(9).build();
        let victim = c
            .request_vm(
                VmRequest::new(Flavor::Small, Image::Ubuntu)
                    .require(SecurityProperty::CpuAvailability { min_share_pct: 50 })
                    .workload(WorkloadSpec::Busy)
                    .on_server(ServerId(0))
                    .pin_pcpu(0),
            )
            .unwrap();
        // Healthy before the attack: sole user of the pCPU.
        let before = c
            .runtime_attest_current(
                victim,
                SecurityProperty::CpuAvailability { min_share_pct: 50 },
            )
            .unwrap();
        assert!(before.healthy(), "{:?}", before.status);
        // Co-locate the attacker.
        let _attacker = c
            .request_vm(
                VmRequest::new(Flavor::Medium, Image::Ubuntu)
                    .workload(WorkloadSpec::BoostAttack)
                    .on_server(ServerId(0))
                    .pin_pcpu(0),
            )
            .unwrap();
        c.advance(1_000_000);
        let after = c
            .runtime_attest_current(
                victim,
                SecurityProperty::CpuAvailability { min_share_pct: 50 },
            )
            .unwrap();
        assert!(!after.healthy(), "victim should be starved");
    }

    #[test]
    fn covert_channel_detected_on_sender() {
        let mut c = CloudBuilder::new().servers(2).seed(10).build();
        let sender = c
            .request_vm(
                VmRequest::new(Flavor::Small, Image::Cirros)
                    .require(SecurityProperty::CovertChannelFreedom)
                    .workload(WorkloadSpec::CovertSender)
                    .on_server(ServerId(0))
                    .pin_pcpu(0),
            )
            .unwrap();
        let _receiver = c
            .request_vm(
                VmRequest::new(Flavor::Small, Image::Cirros)
                    .workload(WorkloadSpec::Busy)
                    .on_server(ServerId(0))
                    .pin_pcpu(0),
            )
            .unwrap();
        c.advance(500_000);
        let report = c
            .runtime_attest_current(sender, SecurityProperty::CovertChannelFreedom)
            .unwrap();
        assert!(!report.healthy(), "covert channel should be detected");
        // A benign busy VM co-resident shows no covert pattern.
        let benign = c
            .request_vm(
                VmRequest::new(Flavor::Small, Image::Cirros)
                    .require(SecurityProperty::CovertChannelFreedom)
                    .workload(WorkloadSpec::Busy)
                    .on_server(ServerId(1))
                    .pin_pcpu(0),
            )
            .unwrap();
        let report = c
            .runtime_attest_current(benign, SecurityProperty::CovertChannelFreedom)
            .unwrap();
        assert!(report.healthy(), "{:?}", report.status);
    }

    #[test]
    fn network_tampering_is_detected_not_accepted() {
        use monatt_net::sim::Tamperer;
        let mut c = cloud();
        let vid = c
            .request_vm(
                VmRequest::new(Flavor::Small, Image::Cirros)
                    .require(SecurityProperty::RuntimeIntegrity),
            )
            .unwrap();
        c.network_mut().set_attacker(Box::new(Tamperer::new("")));
        let err = c
            .runtime_attest_current(vid, SecurityProperty::RuntimeIntegrity)
            .unwrap_err();
        assert!(matches!(err, CloudError::ProtocolFailure { .. }));
        c.network_mut().clear_attacker();
        let ok = c
            .runtime_attest_current(vid, SecurityProperty::RuntimeIntegrity)
            .unwrap();
        assert!(ok.healthy());
    }

    #[test]
    fn auto_response_migrates_starved_vm() {
        let mut c = CloudBuilder::new()
            .servers(2)
            .seed(12)
            .auto_response(true)
            .build();
        let victim = c
            .request_vm(
                VmRequest::new(Flavor::Small, Image::Cirros)
                    .require(SecurityProperty::CpuAvailability { min_share_pct: 50 })
                    .workload(WorkloadSpec::Busy)
                    .on_server(ServerId(0))
                    .pin_pcpu(0),
            )
            .unwrap();
        let _attacker = c
            .request_vm(
                VmRequest::new(Flavor::Medium, Image::Cirros)
                    .workload(WorkloadSpec::BoostAttack)
                    .on_server(ServerId(0))
                    .pin_pcpu(0),
            )
            .unwrap();
        c.advance(1_000_000);
        let report = c
            .runtime_attest_current(
                victim,
                SecurityProperty::CpuAvailability { min_share_pct: 50 },
            )
            .unwrap();
        assert!(!report.healthy());
        // The response module migrated the victim away.
        assert_eq!(c.server_of(victim), Some(ServerId(1)));
        // And it now attests healthy again.
        let after = c
            .runtime_attest_current(
                victim,
                SecurityProperty::CpuAvailability { min_share_pct: 50 },
            )
            .unwrap();
        assert!(after.healthy(), "{:?}", after.status);
    }

    #[test]
    fn random_interval_periodic_attestation() {
        let mut c = cloud();
        let vid = c
            .request_vm(
                VmRequest::new(Flavor::Small, Image::Cirros)
                    .require(SecurityProperty::RuntimeIntegrity)
                    .workload(WorkloadSpec::Busy),
            )
            .unwrap();
        let sub = c
            .runtime_attest_with_frequency(
                vid,
                SecurityProperty::RuntimeIntegrity,
                Frequency::Random {
                    min_us: 2_000_000,
                    max_us: 8_000_000,
                },
            )
            .unwrap();
        c.run(30_000_000);
        let reports = c.stop_attest_periodic(sub).unwrap();
        // Expected count between 30/8 ≈ 3 and 30/2 = 15.
        assert!(
            (3..=15).contains(&reports.len()),
            "got {} reports",
            reports.len()
        );
        // Intervals actually vary.
        let times: Vec<u64> = reports.iter().map(|r| r.issued_at_us).collect();
        let deltas: Vec<u64> = times.windows(2).map(|w| w[1] - w[0]).collect();
        if deltas.len() >= 2 {
            assert!(
                deltas.iter().any(|&d| d != deltas[0]),
                "intervals should vary: {deltas:?}"
            );
        }
    }

    #[test]
    fn suspension_recheck_resumes_only_when_healthy() {
        let mut c = CloudBuilder::new().servers(2).seed(13).build();
        let prop = SecurityProperty::CpuAvailability { min_share_pct: 50 };
        let victim = c
            .request_vm(
                VmRequest::new(Flavor::Small, Image::Cirros)
                    .require(prop)
                    .workload(WorkloadSpec::Busy)
                    .on_server(ServerId(0))
                    .pin_pcpu(0),
            )
            .unwrap();
        let attacker = c
            .request_vm(
                VmRequest::new(Flavor::Medium, Image::Cirros)
                    .workload(WorkloadSpec::BoostAttack)
                    .on_server(ServerId(0))
                    .pin_pcpu(0),
            )
            .unwrap();
        c.advance(1_000_000);
        c.respond(victim, ResponseAction::Suspension).unwrap();
        // The attacker is still there: the recheck re-suspends.
        let report = c.recheck_and_resume(victim, prop).unwrap();
        assert!(!report.healthy());
        assert_eq!(c.vm_state(victim), Some(VmLifecycle::Suspended));
        // Terminate the attacker; now the recheck resumes the victim.
        c.respond(attacker, ResponseAction::Termination).unwrap();
        c.advance(1_000_000);
        let report = c.recheck_and_resume(victim, prop).unwrap();
        assert!(report.healthy(), "{:?}", report.status);
        assert_eq!(c.vm_state(victim), Some(VmLifecycle::Active));
    }

    #[test]
    fn frequency_degenerate_ranges_clamp() {
        let mut rng = Drbg::from_seed(1);
        // Equal bounds: exactly that interval, not max+something.
        let f = Frequency::Random {
            min_us: 5,
            max_us: 5,
        };
        for _ in 0..8 {
            assert_eq!(f.next_interval(&mut rng), 5);
        }
        // Inverted bounds clamp to min.
        let f = Frequency::Random {
            min_us: 10,
            max_us: 2,
        };
        assert_eq!(f.next_interval(&mut rng), 10);
        // All-zero range floors at 1 so run() always advances.
        let f = Frequency::Random {
            min_us: 0,
            max_us: 0,
        };
        assert_eq!(f.next_interval(&mut rng), 1);
        // A proper range stays within [min, max] inclusive.
        let f = Frequency::Random {
            min_us: 3,
            max_us: 6,
        };
        for _ in 0..64 {
            let v = f.next_interval(&mut rng);
            assert!((3..=6).contains(&v), "{v}");
        }
    }

    #[test]
    fn clean_network_keeps_protocol_counters_quiet() {
        let mut c = cloud();
        let vid = c
            .request_vm(
                VmRequest::new(Flavor::Small, Image::Cirros)
                    .require(SecurityProperty::RuntimeIntegrity),
            )
            .unwrap();
        c.runtime_attest_current(vid, SecurityProperty::RuntimeIntegrity)
            .unwrap();
        let stats = c.protocol_stats();
        assert!(stats.messages_sent > 0);
        assert_eq!(stats.retries, 0);
        assert_eq!(stats.drops_seen, 0);
        assert_eq!(stats.timeouts, 0);
        assert_eq!(stats.duplicates_rejected, 0);
        assert_eq!(stats.auth_failures, 0);
        c.reset_protocol_stats();
        assert_eq!(c.protocol_stats(), ProtocolStats::default());
    }

    #[test]
    fn retries_absorb_lossy_network() {
        use monatt_net::sim::FaultModel;
        let mut c = cloud();
        let vid = c
            .request_vm(
                VmRequest::new(Flavor::Small, Image::Cirros)
                    .require(SecurityProperty::RuntimeIntegrity),
            )
            .unwrap();
        let clean = c
            .runtime_attest_current(vid, SecurityProperty::RuntimeIntegrity)
            .unwrap();
        c.network_mut()
            .set_fault_model(FaultModel::new(42).drop_prob(0.2));
        let mut lossy_max = 0;
        for _ in 0..10 {
            let report = c
                .runtime_attest_current(vid, SecurityProperty::RuntimeIntegrity)
                .expect("retries should absorb 20% loss");
            assert!(report.healthy());
            lossy_max = lossy_max.max(report.elapsed_us);
        }
        let stats = c.protocol_stats();
        assert!(stats.retries > 0, "{stats:?}");
        assert_eq!(stats.drops_seen, stats.timeouts);
        // Retransmission time is charged into the latency model.
        assert!(lossy_max > clean.elapsed_us, "{lossy_max} vs {clean:?}");
    }

    #[test]
    fn duplicated_records_are_rejected_without_desync() {
        use monatt_net::sim::FaultModel;
        let mut c = cloud();
        let vid = c
            .request_vm(
                VmRequest::new(Flavor::Small, Image::Cirros)
                    .require(SecurityProperty::RuntimeIntegrity),
            )
            .unwrap();
        c.network_mut()
            .set_fault_model(FaultModel::new(7).duplicate_prob(1.0));
        c.reset_protocol_stats();
        // Every record delivered twice: the window eats each duplicate
        // and the protocol still completes.
        let report = c
            .runtime_attest_current(vid, SecurityProperty::RuntimeIntegrity)
            .unwrap();
        assert!(report.healthy());
        let stats = c.protocol_stats();
        assert_eq!(stats.duplicates_rejected, stats.messages_sent);
    }

    #[test]
    fn missed_periodic_samples_escalate_to_unreachable() {
        use monatt_net::sim::{Intercept, NetworkAttacker};
        struct DropAll;
        impl NetworkAttacker for DropAll {
            fn intercept(&mut self, _: &str, _: &str, _: &[u8]) -> Intercept {
                Intercept::Drop
            }
        }
        let mut c = CloudBuilder::new()
            .servers(3)
            .seed(21)
            .escalation_threshold(2)
            .build();
        let vid = c
            .request_vm(
                VmRequest::new(Flavor::Small, Image::Cirros)
                    .require(SecurityProperty::RuntimeIntegrity),
            )
            .unwrap();
        let sub = c
            .runtime_attest_periodic(vid, SecurityProperty::RuntimeIntegrity, 5_000_000)
            .unwrap();
        c.network_mut().set_attacker(Box::new(DropAll));
        c.run(21_000_000);
        let health = c.subscription_health(sub).unwrap();
        assert_eq!(health.delivered, 0);
        assert!(health.missed >= 3, "{health:?}");
        assert!(health.escalations >= 1, "{health:?}");
        // Healing the network resets the failure streak.
        c.network_mut().clear_attacker();
        c.run(6_000_000);
        let health = c.subscription_health(sub).unwrap();
        assert_eq!(health.consecutive_failures, 0);
        assert!(health.delivered >= 1, "{health:?}");
        let reports = c.stop_attest_periodic(sub).unwrap();
        let unreachable = reports.iter().filter(|r| r.status.is_unreachable()).count();
        assert!(unreachable >= 1, "escalation should file a report");
        assert!(c.subscription_health(sub).is_err());
    }

    #[test]
    fn launch_timing_scales_with_image_and_flavor() {
        let mut c = cloud();
        let mut totals = Vec::new();
        for (image, flavor) in [
            (Image::Cirros, Flavor::Small),
            (Image::Ubuntu, Flavor::Large),
        ] {
            c.request_vm(VmRequest::new(flavor, image).require(SecurityProperty::StartupIntegrity))
                .unwrap();
            totals.push(c.last_launch_timing().unwrap().total_us());
        }
        assert!(totals[1] > totals[0], "{totals:?}");
    }
}
