//! The discrete-event core: a virtual-time event queue.
//!
//! Everything time-driven in the cloud — message deliveries,
//! retransmission timeouts, measurement-window closings, periodic
//! subscription firings — is an entry in one [`EventQueue`], keyed on
//! `(due_us, seq)`. The sequence number is assigned at insertion, so two
//! events scheduled for the same instant pop in the order they were
//! scheduled: the queue is a total order and replaying the same seeded
//! scenario dequeues the same events in the same order every time. That
//! tie-break rule is what makes N interleaved attestation sessions
//! deterministic without any per-session clock.
//!
//! The queue knows nothing about the cloud; payloads are opaque. The
//! high-water depth is tracked here and surfaced through
//! `ProtocolStats::max_queue_depth`.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// One scheduled event.
#[derive(Debug)]
struct Entry<T> {
    due_us: u64,
    seq: u64,
    payload: T,
}

impl<T> PartialEq for Entry<T> {
    fn eq(&self, other: &Self) -> bool {
        self.due_us == other.due_us && self.seq == other.seq
    }
}

impl<T> Eq for Entry<T> {}

impl<T> PartialOrd for Entry<T> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl<T> Ord for Entry<T> {
    fn cmp(&self, other: &Self) -> Ordering {
        // `BinaryHeap` is a max-heap; invert so the earliest (due, seq)
        // pair pops first. `seq` is unique, so the order is total.
        (other.due_us, other.seq).cmp(&(self.due_us, self.seq))
    }
}

/// A virtual-time event queue with deterministic FIFO tie-breaking.
#[derive(Debug)]
pub(crate) struct EventQueue<T> {
    heap: BinaryHeap<Entry<T>>,
    next_seq: u64,
    max_depth: usize,
}

impl<T> Default for EventQueue<T> {
    fn default() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            next_seq: 0,
            max_depth: 0,
        }
    }
}

impl<T> EventQueue<T> {
    /// Schedules `payload` at absolute virtual time `due_us`.
    ///
    /// Scheduling in the past is allowed (the event fires "now", after
    /// anything already due): the caller's clock only moves when events
    /// are popped, and a remediation response can push the wall clock
    /// past instants that were scheduled before it ran.
    pub(crate) fn schedule(&mut self, due_us: u64, payload: T) {
        let seq = self.next_seq;
        self.next_seq = self.next_seq.wrapping_add(1);
        self.heap.push(Entry {
            due_us,
            seq,
            payload,
        });
        self.max_depth = self.max_depth.max(self.heap.len());
    }

    /// The due time and payload of the earliest event, if any.
    #[cfg(test)]
    pub(crate) fn peek(&self) -> Option<(u64, &T)> {
        self.heap.peek().map(|e| (e.due_us, &e.payload))
    }

    /// Removes and returns the earliest event.
    pub(crate) fn pop(&mut self) -> Option<(u64, T)> {
        self.heap.pop().map(|e| (e.due_us, e.payload))
    }

    /// Number of pending events.
    pub(crate) fn len(&self) -> usize {
        self.heap.len()
    }

    /// True when no events are pending.
    pub(crate) fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// High-water mark of pending events since construction.
    #[cfg(test)]
    pub(crate) fn max_depth(&self) -> usize {
        self.max_depth
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_due_order() {
        let mut q = EventQueue::default();
        q.schedule(30, "c");
        q.schedule(10, "a");
        q.schedule(20, "b");
        assert_eq!(q.pop(), Some((10, "a")));
        assert_eq!(q.pop(), Some((20, "b")));
        assert_eq!(q.pop(), Some((30, "c")));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn simultaneous_events_pop_in_schedule_order() {
        let mut q = EventQueue::default();
        for label in ["first", "second", "third", "fourth"] {
            q.schedule(5, label);
        }
        let drained: Vec<&str> = std::iter::from_fn(|| q.pop().map(|(_, p)| p)).collect();
        assert_eq!(drained, ["first", "second", "third", "fourth"]);
    }

    #[test]
    fn interleaved_schedule_and_pop_keeps_total_order() {
        let mut q = EventQueue::default();
        q.schedule(10, 1u32);
        q.schedule(40, 4u32);
        assert_eq!(q.pop(), Some((10, 1)));
        // Scheduling "in the past" fires before anything later.
        q.schedule(5, 0u32);
        q.schedule(20, 2u32);
        assert_eq!(q.pop(), Some((5, 0)));
        assert_eq!(q.pop(), Some((20, 2)));
        q.schedule(30, 3u32);
        assert_eq!(q.pop(), Some((30, 3)));
        assert_eq!(q.pop(), Some((40, 4)));
        assert!(q.is_empty());
    }

    #[test]
    fn peek_does_not_consume() {
        let mut q = EventQueue::default();
        q.schedule(7, 'x');
        assert_eq!(q.peek(), Some((7, &'x')));
        assert_eq!(q.len(), 1);
        assert_eq!(q.pop(), Some((7, 'x')));
        assert_eq!(q.peek(), None);
    }

    #[test]
    fn max_depth_is_a_high_water_mark() {
        let mut q = EventQueue::default();
        assert_eq!(q.max_depth(), 0);
        q.schedule(1, ());
        q.schedule(2, ());
        q.schedule(3, ());
        q.pop();
        q.pop();
        q.schedule(4, ());
        assert_eq!(q.max_depth(), 3);
        assert_eq!(q.len(), 2);
    }
}
