//! The discrete-event core: a sharded virtual-time timer wheel.
//!
//! Everything time-driven in the cloud — message deliveries,
//! retransmission timeouts, measurement-window closings, periodic
//! subscription firings, node crashes and recoveries — is an entry in
//! one [`ShardedEngine`], keyed on `(due_us, seq)`. The sequence number
//! is assigned at insertion, so two events scheduled for the same
//! instant pop in the order they were scheduled: the queue is a total
//! order and replaying the same seeded scenario dequeues the same
//! events in the same order every time. That tie-break rule is what
//! makes N interleaved attestation sessions deterministic without any
//! per-session clock.
//!
//! ## Sharding without observable effect
//!
//! The engine is split into K hierarchical timer wheels
//! ([`monatt_hypervisor::wheel::TimerWheel`]); a shard key — the server
//! id for session traffic — routes each insertion to `key % K`.
//! Crucially, the **sequence counter is global**: every insertion draws
//! the next seq regardless of shard, and [`ShardedEngine::pop`] takes
//! the least `(due_us, seq)` over the K shard heads. Since `(due, seq)`
//! pairs are unique and the per-shard wheels each pop in `(due, seq)`
//! order, the merged pop sequence is the global `(due, seq)` order —
//! for *any* K and *any* key routing. K is therefore a pure structural
//! decomposition seam (per-shard depth accounting today, a parallelism
//! boundary tomorrow) that cannot perturb a trace: the K=1 golden trace
//! is byte-identical at K=4 by construction, and a test pins it.
//!
//! ## Past scheduling
//!
//! Scheduling in the past is **allowed here** (the event fires "now",
//! after anything already due) because the caller's clock only moves
//! when events are popped, and a remediation response can push the wall
//! clock past instants that were scheduled before it ran. The wheel
//! files such entries in its overdue lane, ordered by `(due, seq)` like
//! everything else. The hypervisor's `run_until` instead asserts
//! monotonicity — see the divergence note in `monatt_hypervisor::queue`.
//!
//! The queue knows nothing about the cloud; payloads are opaque. The
//! merged high-water depth is surfaced through
//! `ProtocolStats::max_queue_depth`; per-shard high-water marks through
//! [`ShardedEngine::shard_depths`].

use monatt_hypervisor::wheel::TimerWheel;

/// Per-slot `Vec` capacity pre-reserved in every wheel, so the warm
/// steady state of the session hot path never touches the allocator
/// (slot indices vary with absolute time, so cold slots would otherwise
/// allocate on first use arbitrarily late in a run).
const SLOT_CAPACITY: usize = 4;

/// A K-sharded virtual-time event queue with deterministic FIFO
/// tie-breaking, keyed by the cloud's microsecond wall clock. See the
/// module docs for the merge-determinism argument.
#[derive(Debug)]
pub(crate) struct ShardedEngine<T> {
    shards: Vec<TimerWheel<T>>,
    /// Global insertion stamp — shared across shards so the merged pop
    /// order is the global `(due, seq)` order.
    next_seq: u64,
    /// Entries currently pending, across all shards.
    len: usize,
    /// High-water mark of `len`.
    max_depth: usize,
    /// Per-shard high-water marks.
    shard_peaks: Vec<usize>,
}

impl<T> ShardedEngine<T> {
    /// Creates an engine with `shards` wheels (clamped to at least 1).
    pub(crate) fn new(shards: usize) -> Self {
        let k = shards.max(1);
        ShardedEngine {
            shards: (0..k)
                .map(|_| TimerWheel::with_slot_capacity(SLOT_CAPACITY))
                .collect(),
            next_seq: 0,
            len: 0,
            max_depth: 0,
            shard_peaks: vec![0; k],
        }
    }

    /// Number of shards (K).
    #[cfg(test)]
    pub(crate) fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// Schedules `payload` at `due_us` on the shard `shard_key` routes
    /// to. The key affects only which wheel holds the entry, never the
    /// pop order.
    pub(crate) fn schedule(&mut self, due_us: u64, shard_key: u64, payload: T) {
        let shard = (shard_key % self.shards.len() as u64) as usize;
        let seq = self.next_seq;
        self.next_seq = self.next_seq.wrapping_add(1);
        if let Some(wheel) = self.shards.get_mut(shard) {
            wheel.insert(due_us, seq, payload);
            let depth = wheel.len();
            if let Some(peak) = self.shard_peaks.get_mut(shard) {
                *peak = (*peak).max(depth);
            }
        }
        self.len += 1;
        self.max_depth = self.max_depth.max(self.len);
    }

    /// Pops the globally least `(due_us, seq)` entry across all shards.
    pub(crate) fn pop(&mut self) -> Option<(u64, T)> {
        let mut best: Option<(u64, u64, usize)> = None;
        for (i, wheel) in self.shards.iter_mut().enumerate() {
            if let Some((due, seq)) = wheel.peek() {
                if best.is_none_or(|(bd, bs, _)| (due, seq) < (bd, bs)) {
                    best = Some((due, seq, i));
                }
            }
        }
        let (_, _, shard) = best?;
        let popped = self.shards.get_mut(shard)?.pop();
        if popped.is_some() {
            self.len -= 1;
        }
        popped.map(|(due, _, payload)| (due, payload))
    }

    /// The least `(due_us, seq)` entry without consuming it. (`&mut`
    /// because the wheels settle tombstones and cascades lazily.)
    #[cfg(test)]
    pub(crate) fn peek(&mut self) -> Option<(u64, &T)> {
        let mut best: Option<(u64, u64, usize)> = None;
        for (i, wheel) in self.shards.iter_mut().enumerate() {
            if let Some((due, seq)) = wheel.peek() {
                if best.is_none_or(|(bd, bs, _)| (due, seq) < (bd, bs)) {
                    best = Some((due, seq, i));
                }
            }
        }
        let (_, _, shard) = best?;
        self.shards.get_mut(shard)?.peek_payload()
    }

    /// Entries currently pending.
    #[cfg(test)]
    pub(crate) fn len(&self) -> usize {
        self.len
    }

    /// Whether no entries are pending.
    pub(crate) fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// High-water mark of the merged pending count.
    pub(crate) fn max_depth(&self) -> usize {
        self.max_depth
    }

    /// Per-shard high-water marks of the pending count.
    pub(crate) fn shard_depths(&self) -> &[usize] {
        &self.shard_peaks
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use monatt_hypervisor::queue::EventQueue;
    use proptest::prelude::*;

    #[test]
    fn pops_in_due_order() {
        let mut q = ShardedEngine::new(1);
        q.schedule(30, 0, "c");
        q.schedule(10, 0, "a");
        q.schedule(20, 0, "b");
        assert_eq!(q.pop(), Some((10, "a")));
        assert_eq!(q.pop(), Some((20, "b")));
        assert_eq!(q.pop(), Some((30, "c")));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn simultaneous_events_pop_in_schedule_order() {
        // Even when the simultaneous events land on different shards.
        let mut q = ShardedEngine::new(3);
        for (i, label) in ["first", "second", "third", "fourth"].iter().enumerate() {
            q.schedule(5, i as u64, *label);
        }
        let drained: Vec<&str> = std::iter::from_fn(|| q.pop().map(|(_, p)| p)).collect();
        assert_eq!(drained, ["first", "second", "third", "fourth"]);
    }

    #[test]
    fn interleaved_schedule_and_pop_keeps_total_order() {
        let mut q = ShardedEngine::new(2);
        q.schedule(10, 0, 1u32);
        q.schedule(40, 1, 4u32);
        assert_eq!(q.pop(), Some((10, 1)));
        // Scheduling "in the past" fires before anything later.
        q.schedule(5, 1, 0u32);
        q.schedule(20, 0, 2u32);
        assert_eq!(q.pop(), Some((5, 0)));
        assert_eq!(q.pop(), Some((20, 2)));
        q.schedule(30, 0, 3u32);
        assert_eq!(q.pop(), Some((30, 3)));
        assert_eq!(q.pop(), Some((40, 4)));
        assert!(q.is_empty());
    }

    #[test]
    fn peek_does_not_consume() {
        let mut q = ShardedEngine::new(2);
        q.schedule(7, 1, 'x');
        assert_eq!(q.peek(), Some((7, &'x')));
        assert_eq!(q.len(), 1);
        assert_eq!(q.pop(), Some((7, 'x')));
        assert_eq!(q.peek(), None);
    }

    #[test]
    fn max_depth_is_a_high_water_mark() {
        let mut q = ShardedEngine::new(2);
        assert_eq!(q.max_depth(), 0);
        q.schedule(1, 0, ());
        q.schedule(2, 1, ());
        q.schedule(3, 0, ());
        q.pop();
        q.pop();
        q.schedule(4, 1, ());
        assert_eq!(q.max_depth(), 3);
        assert_eq!(q.len(), 2);
    }

    #[test]
    fn shard_depths_track_per_shard_peaks() {
        let mut q = ShardedEngine::new(2);
        q.schedule(1, 0, ());
        q.schedule(2, 0, ());
        q.schedule(3, 0, ());
        q.schedule(4, 1, ());
        q.pop();
        q.pop();
        assert_eq!(q.shard_depths(), &[3, 1]);
        assert_eq!(q.max_depth(), 4);
        assert_eq!(q.shard_count(), 2);
    }

    #[test]
    fn shard_count_is_clamped_to_one() {
        let mut q = ShardedEngine::new(0);
        assert_eq!(q.shard_count(), 1);
        q.schedule(1, 7, "still works");
        assert_eq!(q.pop(), Some((1, "still works")));
    }

    /// The merged pop order is independent of the shard count and of the
    /// key routing: the global seq plus the least-`(due, seq)` merge make
    /// K purely structural. This is the unit-level face of the golden
    /// trace's K=1 vs K=4 byte-identity.
    #[test]
    fn pop_order_is_invariant_across_shard_counts() {
        let schedule_all = |q: &mut ShardedEngine<u64>| {
            // Same-tick bursts, scattered keys, interleaved pops.
            let mut stamp = 0u64;
            for round in 0..50u64 {
                for key in [round % 7, round % 3, 12345, round] {
                    q.schedule(round / 4, key, stamp);
                    stamp += 1;
                }
            }
        };
        let drain = |mut q: ShardedEngine<u64>| {
            let mut out = Vec::new();
            while let Some(e) = q.pop() {
                out.push(e);
            }
            out
        };
        let mut reference = ShardedEngine::new(1);
        schedule_all(&mut reference);
        let expected = drain(reference);
        for k in [2usize, 3, 4, 8] {
            let mut q = ShardedEngine::new(k);
            schedule_all(&mut q);
            assert_eq!(drain(q), expected, "pop order diverged at K={k}");
        }
    }

    proptest! {
        /// Differential test against the retained BinaryHeap: under any
        /// interleaving of pushes and pops — due times drawn from a tiny
        /// range so same-tick bursts are the norm, keys scattered across
        /// shards, K varying — the sharded wheel pops byte-identically
        /// to the `(due, seq)`-ordered heap.
        #[test]
        fn merged_pops_match_binary_heap_oracle(
            k in 1usize..5,
            ops in proptest::collection::vec((0u64..4, 0u64..8, 0u8..4), 1..250),
        ) {
            let mut q = ShardedEngine::new(k);
            let mut oracle: EventQueue<u64, u64> = EventQueue::new();
            let mut next_id = 0u64; // insertion stamp, mirrors seq
            for (due, key, action) in ops {
                if action == 0 && !oracle.is_empty() {
                    let expected = oracle.pop();
                    prop_assert_eq!(q.pop(), expected);
                } else {
                    q.schedule(due, key, next_id);
                    oracle.schedule(due, next_id);
                    next_id += 1;
                }
                prop_assert_eq!(q.len(), oracle.len());
            }
            // Drain: the tails must match exactly.
            loop {
                let expected = oracle.pop();
                let got = q.pop();
                prop_assert_eq!(got, expected);
                if got.is_none() {
                    break;
                }
            }
            prop_assert!(q.is_empty());
        }
    }
}
