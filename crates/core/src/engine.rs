//! The discrete-event core: a virtual-time event queue.
//!
//! Everything time-driven in the cloud — message deliveries,
//! retransmission timeouts, measurement-window closings, periodic
//! subscription firings, node crashes and recoveries — is an entry in
//! one [`EventQueue`], keyed on `(due_us, seq)`. The sequence number is
//! assigned at insertion, so two events scheduled for the same instant
//! pop in the order they were scheduled: the queue is a total order and
//! replaying the same seeded scenario dequeues the same events in the
//! same order every time. That tie-break rule is what makes N
//! interleaved attestation sessions deterministic without any
//! per-session clock.
//!
//! The heap itself is [`monatt_hypervisor::queue::EventQueue`], the
//! substrate shared with the per-server hypervisor simulator. The two
//! engines use it with intentionally different past-scheduling
//! policies: scheduling in the past is **allowed here** (the event
//! fires "now", after anything already due) because the caller's clock
//! only moves when events are popped, and a remediation response can
//! push the wall clock past instants that were scheduled before it ran.
//! The hypervisor's `run_until` instead asserts monotonicity — see the
//! divergence note in `monatt_hypervisor::queue`.
//!
//! The queue knows nothing about the cloud; payloads are opaque. The
//! high-water depth is tracked in the shared queue and surfaced through
//! `ProtocolStats::max_queue_depth`.

/// A virtual-time event queue with deterministic FIFO tie-breaking,
/// keyed by the cloud's microsecond wall clock.
pub(crate) type EventQueue<T> = monatt_hypervisor::queue::EventQueue<u64, T>;

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn pops_in_due_order() {
        let mut q = EventQueue::default();
        q.schedule(30, "c");
        q.schedule(10, "a");
        q.schedule(20, "b");
        assert_eq!(q.pop(), Some((10, "a")));
        assert_eq!(q.pop(), Some((20, "b")));
        assert_eq!(q.pop(), Some((30, "c")));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn simultaneous_events_pop_in_schedule_order() {
        let mut q = EventQueue::default();
        for label in ["first", "second", "third", "fourth"] {
            q.schedule(5, label);
        }
        let drained: Vec<&str> = std::iter::from_fn(|| q.pop().map(|(_, p)| p)).collect();
        assert_eq!(drained, ["first", "second", "third", "fourth"]);
    }

    #[test]
    fn interleaved_schedule_and_pop_keeps_total_order() {
        let mut q = EventQueue::default();
        q.schedule(10, 1u32);
        q.schedule(40, 4u32);
        assert_eq!(q.pop(), Some((10, 1)));
        // Scheduling "in the past" fires before anything later.
        q.schedule(5, 0u32);
        q.schedule(20, 2u32);
        assert_eq!(q.pop(), Some((5, 0)));
        assert_eq!(q.pop(), Some((20, 2)));
        q.schedule(30, 3u32);
        assert_eq!(q.pop(), Some((30, 3)));
        assert_eq!(q.pop(), Some((40, 4)));
        assert!(q.is_empty());
    }

    #[test]
    fn peek_does_not_consume() {
        let mut q = EventQueue::default();
        q.schedule(7, 'x');
        assert_eq!(q.peek(), Some((7, &'x')));
        assert_eq!(q.len(), 1);
        assert_eq!(q.pop(), Some((7, 'x')));
        assert_eq!(q.peek(), None);
    }

    #[test]
    fn max_depth_is_a_high_water_mark() {
        let mut q = EventQueue::default();
        assert_eq!(q.max_depth(), 0);
        q.schedule(1, ());
        q.schedule(2, ());
        q.schedule(3, ());
        q.pop();
        q.pop();
        q.schedule(4, ());
        assert_eq!(q.max_depth(), 3);
        assert_eq!(q.len(), 2);
    }

    proptest! {
        /// Under any interleaving of pushes and pops — with due times
        /// drawn from a tiny range so bursts of equal timestamps are
        /// the norm, not the exception — every pop is ordered by
        /// `(due_us, seq)`: due times never decrease between
        /// consecutive pops with no intervening push, and two events
        /// popped at the same due time come out in insertion order.
        #[test]
        fn pops_follow_due_then_insertion_order(
            ops in proptest::collection::vec((0u64..4, 0u8..4), 1..200),
        ) {
            let mut q = EventQueue::default();
            let mut next_id = 0u64; // insertion stamp, mirrors seq
            // Events popped since the most recent push. Within such a
            // run the (due, id) pairs must be strictly increasing.
            let mut run: Vec<(u64, u64)> = Vec::new();
            let mut pending = 0usize;
            for (due, action) in ops {
                if action == 0 && pending > 0 {
                    let Some((popped_due, id)) = q.pop() else {
                        prop_assert!(false, "pop returned None with {pending} pending");
                        continue;
                    };
                    pending -= 1;
                    if let Some(&(prev_due, prev_id)) = run.last() {
                        prop_assert!(
                            (prev_due, prev_id) < (popped_due, id),
                            "popped ({popped_due},{id}) after ({prev_due},{prev_id})"
                        );
                        if popped_due == prev_due {
                            // Equal timestamps break ties by insertion.
                            prop_assert!(id > prev_id);
                        }
                    }
                    run.push((popped_due, id));
                } else {
                    q.schedule(due, next_id);
                    next_id += 1;
                    pending += 1;
                    // A push may be earlier than past pops; restart the
                    // monotonicity window.
                    run.clear();
                }
            }
            // Drain: the tail must come out fully sorted by (due, id).
            let mut last: Option<(u64, u64)> = run.last().copied();
            while let Some((due, id)) = q.pop() {
                if let Some(prev) = last {
                    prop_assert!(prev < (due, id));
                }
                last = Some((due, id));
            }
            prop_assert!(q.is_empty());
        }
    }
}
