//! Core identifier and domain types for the CloudMonatt architecture.

use std::fmt;

/// A customer-visible VM identifier (the paper's `Vid`), unique across
/// the cloud.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct Vid(pub u64);

impl fmt::Display for Vid {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "vid-{}", self.0)
    }
}

/// A cloud server identifier (the paper's `I`).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct ServerId(pub u32);

impl fmt::Display for ServerId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "server-{}", self.0)
    }
}

/// A protocol entity that can crash and recover as a whole — the unit
/// of the node-level fault model (as opposed to the per-message
/// [`monatt_net::sim::FaultModel`]). The customer endpoint is assumed
/// reliable; everything inside the cloud provider can go down.
///
/// The `Display` form matches the secure-channel peer names used on the
/// simulated network ("controller", "attserver", "server-N"), so a
/// crashed node and its black-holed network endpoint share one name.
///
/// With a replicated control plane (see [`crate::controlplane`]),
/// controller instance 0 and AS replica 0 keep the legacy
/// `Controller`/`AttestationServer` variants; standby instances get the
/// `ControllerReplica`/`AsReplica` variants (never constructed with
/// index 0 — [`crate::controlplane::controller_node`] and
/// [`crate::controlplane::as_node`] normalize).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub enum NodeId {
    /// The Cloud Controller (equivalently, the link to it).
    Controller,
    /// The Attestation Server.
    AttestationServer,
    /// One cloud server.
    Server(ServerId),
    /// A standby Cloud Controller instance (index ≥ 1).
    ControllerReplica(u32),
    /// A standby Attestation Server replica (index ≥ 1).
    AsReplica(u32),
}

impl NodeId {
    /// The network endpoint name this node terminates (its
    /// secure-channel peer name).
    pub fn endpoint(&self) -> String {
        self.to_string()
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NodeId::Controller => f.write_str("controller"),
            NodeId::AttestationServer => f.write_str("attserver"),
            NodeId::Server(id) => write!(f, "{id}"),
            NodeId::ControllerReplica(i) => write!(f, "controller-{i}"),
            NodeId::AsReplica(r) => write!(f, "attserver-{r}"),
        }
    }
}

/// A 32-byte freshness nonce.
#[derive(Clone, Copy, PartialEq, Eq, Hash)]
pub struct Nonce(pub [u8; 32]);

impl fmt::Debug for Nonce {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "Nonce({:02x}{:02x}{:02x}{:02x}..)",
            self.0[0], self.0[1], self.0[2], self.0[3]
        )
    }
}

/// The security properties a customer can request for a VM — the paper's
/// four concrete case studies (Section 4).
///
/// `Ord` follows declaration order and exists so `(Vid, SecurityProperty)`
/// can key the Attestation Server's evidence cache deterministically.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub enum SecurityProperty {
    /// Case Study I: measured-boot integrity of the platform and VM image.
    StartupIntegrity,
    /// Case Study II: no hidden malware at runtime (VMI task-list check).
    RuntimeIntegrity,
    /// Case Study III: no CPU-timing covert channel involving this VM's
    /// server (interval-histogram check).
    CovertChannelFreedom,
    /// Case Study IV: the VM receives at least this percentage of its
    /// contracted CPU share.
    CpuAvailability {
        /// Minimum acceptable relative CPU share, percent of the SLA
        /// entitlement.
        min_share_pct: u8,
    },
    /// Extension property (the paper's framework supports "an arbitrary
    /// number of security properties"): this VM does not abuse the credit
    /// scheduler's wake-up boost — a CC-Hunter-style event-density check
    /// on the PMU's boost counters that catches the *attacker* side of
    /// Case Studies III and IV.
    SchedulerFairness,
}

impl SecurityProperty {
    /// A stable wire label for the property (used in request encoding and
    /// capability tables).
    pub fn label(&self) -> &'static str {
        match self {
            SecurityProperty::StartupIntegrity => "startup-integrity",
            SecurityProperty::RuntimeIntegrity => "runtime-integrity",
            SecurityProperty::CovertChannelFreedom => "covert-channel-freedom",
            SecurityProperty::CpuAvailability { .. } => "cpu-availability",
            SecurityProperty::SchedulerFairness => "scheduler-fairness",
        }
    }

    /// True if monitoring this property requires a runtime observation
    /// window (as opposed to boot-time measurements).
    pub fn needs_runtime_window(&self) -> bool {
        !matches!(self, SecurityProperty::StartupIntegrity)
    }
}

impl fmt::Display for SecurityProperty {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SecurityProperty::CpuAvailability { min_share_pct } => {
                write!(f, "cpu-availability(min {min_share_pct}%)")
            }
            other => f.write_str(other.label()),
        }
    }
}

/// The verdict of a property interpretation.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum HealthStatus {
    /// The property holds.
    Healthy,
    /// The property is violated; the reason is human-readable evidence.
    Compromised {
        /// Why the property was judged violated.
        reason: String,
    },
    /// No verdict could be reached: the monitored server did not answer
    /// within the protocol's retry budget. Deliberately distinct from
    /// [`HealthStatus::Compromised`] — silence is not evidence of a
    /// violation, but it is not health either, and after repeated
    /// misses it escalates to the Response Module.
    Unreachable {
        /// How many consecutive attestation samples were missed.
        missed: u32,
    },
}

impl HealthStatus {
    /// True for [`HealthStatus::Healthy`].
    pub fn is_healthy(&self) -> bool {
        matches!(self, HealthStatus::Healthy)
    }

    /// True for [`HealthStatus::Unreachable`].
    pub fn is_unreachable(&self) -> bool {
        matches!(self, HealthStatus::Unreachable { .. })
    }
}

/// Per-hop protocol delivery counters, accumulated across every Figure-3
/// message the cloud facade sends. Observability for the retransmit
/// layer: a lossy network shows up here long before attestations start
/// failing outright.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ProtocolStats {
    /// Records sealed and handed to the network (including retries).
    pub messages_sent: u64,
    /// Retransmissions performed after a failed delivery attempt.
    pub retries: u64,
    /// Attempts where the network delivered nothing (drop or attacker).
    pub drops_seen: u64,
    /// Attempts charged a retransmit timeout while waiting on a lost
    /// record.
    pub timeouts: u64,
    /// Benign duplicate records rejected by the receive window.
    pub duplicates_rejected: u64,
    /// Records that failed channel authentication (corruption,
    /// tampering or replay).
    pub auth_failures: u64,
    /// Attestation sessions started (messages 1 or 2 sent).
    pub sessions_started: u64,
    /// Sessions that delivered a verdict.
    pub sessions_completed: u64,
    /// Sessions that failed (retry budget exhausted, tampering, a node
    /// outage, an expired deadline, or a protocol error).
    pub sessions_failed: u64,
    /// Sessions refused at admission by the Attestation Server's
    /// overload gate (never started; disjoint from
    /// `sessions_started`/`sessions_failed`).
    pub sessions_shed: u64,
    /// Sessions aborted because their end-to-end deadline budget
    /// expired (a subset of `sessions_failed`).
    pub deadlines_exceeded: u64,
    /// High-water mark of concurrently in-flight sessions.
    pub max_in_flight: u64,
    /// High-water mark of pending events in the discrete-event queue.
    pub max_queue_depth: u64,
    /// Coalesced msg-4 batch flushes at the Attestation Server (each
    /// flush verifies its whole batch in one combined Schnorr check).
    pub msg4_flushes: u64,
    /// Msg-4 responses validated through coalesced flushes. Strictly
    /// greater than `msg4_flushes` exactly when coalescing merged at
    /// least two sessions into one flush.
    pub msg4_batched: u64,
}

/// VM sizes offered by the cloud (Figure 9 and 11 sweep these).
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum Flavor {
    /// 1 vCPU, 2 GB RAM, 10 GB disk.
    Small,
    /// 2 vCPUs, 4 GB RAM, 20 GB disk.
    Medium,
    /// 4 vCPUs, 8 GB RAM, 40 GB disk.
    Large,
}

impl Flavor {
    /// All flavors in figure order.
    pub const ALL: [Flavor; 3] = [Flavor::Small, Flavor::Medium, Flavor::Large];

    /// Number of vCPUs.
    pub fn vcpus(&self) -> usize {
        match self {
            Flavor::Small => 1,
            Flavor::Medium => 2,
            Flavor::Large => 4,
        }
    }

    /// RAM in gigabytes.
    pub fn memory_gb(&self) -> u64 {
        match self {
            Flavor::Small => 2,
            Flavor::Medium => 4,
            Flavor::Large => 8,
        }
    }

    /// Disk in gigabytes.
    pub fn disk_gb(&self) -> u64 {
        match self {
            Flavor::Small => 10,
            Flavor::Medium => 20,
            Flavor::Large => 40,
        }
    }

    /// Display name.
    pub fn name(&self) -> &'static str {
        match self {
            Flavor::Small => "small",
            Flavor::Medium => "medium",
            Flavor::Large => "large",
        }
    }
}

impl fmt::Display for Flavor {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// VM images offered by the cloud (Figure 9 sweeps these).
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum Image {
    /// Tiny test image (~13 MB).
    Cirros,
    /// Fedora cloud image (~200 MB).
    Fedora,
    /// Ubuntu cloud image (~250 MB).
    Ubuntu,
}

impl Image {
    /// All images in figure order.
    pub const ALL: [Image; 3] = [Image::Cirros, Image::Fedora, Image::Ubuntu];

    /// Image size in megabytes (drives copy and hash costs).
    pub fn size_mb(&self) -> u64 {
        match self {
            Image::Cirros => 13,
            Image::Fedora => 200,
            Image::Ubuntu => 250,
        }
    }

    /// Display name.
    pub fn name(&self) -> &'static str {
        match self {
            Image::Cirros => "cirros",
            Image::Fedora => "fedora",
            Image::Ubuntu => "ubuntu",
        }
    }

    /// The canonical (pristine) image bytes. Only the hash matters; the
    /// content is a deterministic function of the image name and size.
    pub fn pristine_bytes(&self) -> Vec<u8> {
        // A small representative blob: hashing cost is modelled by the
        // latency model, not by actually hashing hundreds of megabytes.
        let mut out = Vec::with_capacity(4096);
        while out.len() < 4096 {
            out.extend_from_slice(self.name().as_bytes());
            out.extend_from_slice(&self.size_mb().to_be_bytes());
        }
        out.truncate(4096);
        out
    }

    /// The initial guest task list booted from this image.
    pub fn initial_tasks(&self) -> &'static [&'static str] {
        match self {
            Image::Cirros => &["init", "sh"],
            Image::Fedora => &["systemd", "sshd", "journald"],
            Image::Ubuntu => &["systemd", "sshd", "cron", "rsyslogd"],
        }
    }
}

impl fmt::Display for Image {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_formats() {
        assert_eq!(Vid(3).to_string(), "vid-3");
        assert_eq!(ServerId(1).to_string(), "server-1");
        assert_eq!(NodeId::Controller.to_string(), "controller");
        assert_eq!(NodeId::AttestationServer.to_string(), "attserver");
        // A server node's endpoint name matches the channel peer name
        // the builder assigns (`ServerId`'s Display).
        assert_eq!(NodeId::Server(ServerId(2)).endpoint(), "server-2");
        assert_eq!(NodeId::ControllerReplica(1).to_string(), "controller-1");
        assert_eq!(NodeId::AsReplica(2).endpoint(), "attserver-2");
        assert_eq!(Flavor::Large.to_string(), "large");
        assert_eq!(Image::Ubuntu.to_string(), "ubuntu");
        assert_eq!(
            SecurityProperty::CpuAvailability { min_share_pct: 40 }.to_string(),
            "cpu-availability(min 40%)"
        );
    }

    #[test]
    fn property_classification() {
        assert!(!SecurityProperty::StartupIntegrity.needs_runtime_window());
        assert!(SecurityProperty::RuntimeIntegrity.needs_runtime_window());
        assert!(SecurityProperty::CovertChannelFreedom.needs_runtime_window());
    }

    #[test]
    fn flavors_scale() {
        assert!(Flavor::Small.vcpus() < Flavor::Large.vcpus());
        assert!(Flavor::Small.memory_gb() < Flavor::Large.memory_gb());
    }

    #[test]
    fn image_bytes_deterministic_and_distinct() {
        assert_eq!(
            Image::Ubuntu.pristine_bytes(),
            Image::Ubuntu.pristine_bytes()
        );
        assert_ne!(
            Image::Ubuntu.pristine_bytes(),
            Image::Fedora.pristine_bytes()
        );
        assert_eq!(Image::Cirros.pristine_bytes().len(), 4096);
    }

    #[test]
    fn health_status() {
        assert!(HealthStatus::Healthy.is_healthy());
        assert!(!HealthStatus::Compromised { reason: "x".into() }.is_healthy());
    }

    #[test]
    fn nonce_debug_is_short() {
        let n = Nonce([0xab; 32]);
        let repr = format!("{:?}", n);
        assert!(repr.len() < 30);
        assert!(repr.contains("abab"));
    }
}
