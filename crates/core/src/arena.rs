//! A slab arena with generation-tagged indices, backing the in-flight
//! session table.
//!
//! Sessions used to live in a `BTreeMap<u64, AttestSession>`: every
//! event popped from the engine paid an O(log n) pointer chase to find
//! its session, and every session spawn/retire allocated and freed tree
//! nodes plus the session's own buffers. Here a [`SessionId`] is a slot
//! index plus a generation tag, so lookup is one bounds-checked array
//! index, and a retired slot **keeps its value** — the next allocation
//! reuses the retained buffers (wire/sealed/late capacity) instead of
//! round-tripping the allocator. That retention is what makes the warm
//! Msg1–Msg6 round allocation-free (pinned by `tests/zero_alloc.rs`).
//!
//! ## Generations against stale ids
//!
//! Retry timers and late-arrival events in the engine carry the
//! [`SessionId`] they were scheduled for; they can fire long after the
//! session retired and its slot was recycled. Freeing a slot bumps its
//! generation, so a stale id's generation no longer matches and the
//! lookup misses — exactly like the map lookup missing a removed key,
//! but without the possibility of aliasing a new tenant. (A slot would
//! need 2³² retire cycles between a timer's scheduling and firing to
//! false-match; the engine's u64 virtual clock runs out first.)

/// Identifier of an in-flight attestation session: a slot index plus
/// the slot generation at allocation time. Stale ids (outlived by their
/// session) miss on lookup instead of aliasing the slot's next tenant.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub(crate) struct SessionId {
    index: u32,
    generation: u32,
}

#[derive(Debug)]
struct Slot<T> {
    generation: u32,
    occupied: bool,
    /// Retained across free/alloc cycles so a recycled slot's buffers
    /// keep their capacity. `None` only before the slot's first tenant.
    value: Option<T>,
}

/// A slab of `T` with generational indices and capacity-retaining free
/// slots. See the module docs.
#[derive(Debug)]
pub(crate) struct Arena<T> {
    slots: Vec<Slot<T>>,
    /// Indices of unoccupied slots, most recently freed last (LIFO
    /// reuse keeps the hot slots hot).
    free: Vec<u32>,
    live: usize,
}

impl<T> Arena<T> {
    pub(crate) fn new() -> Self {
        Arena {
            slots: Vec::new(),
            free: Vec::new(),
            live: 0,
        }
    }

    /// Live entries.
    pub(crate) fn len(&self) -> usize {
        self.live
    }

    /// Claims a slot and returns its id plus the value in it. A
    /// recycled slot returns its **retained previous tenant** — the
    /// caller must fully re-initialize it (that is the point: resetting
    /// in place reuses the buffers). A never-used slot is seeded with
    /// `vacant()`. Returns `None` only if the slab index space (2³²) is
    /// exhausted.
    pub(crate) fn alloc_with(&mut self, vacant: impl FnOnce() -> T) -> Option<(SessionId, &mut T)> {
        let index = match self.free.pop() {
            Some(i) => i,
            None => {
                let i = u32::try_from(self.slots.len()).ok()?;
                self.slots.push(Slot {
                    generation: 0,
                    occupied: false,
                    value: None,
                });
                i
            }
        };
        let slot = self.slots.get_mut(index as usize)?;
        slot.occupied = true;
        self.live += 1;
        let sid = SessionId {
            index,
            generation: slot.generation,
        };
        Some((sid, slot.value.get_or_insert_with(vacant)))
    }

    /// The value behind `sid`, if its session is still live.
    pub(crate) fn get(&self, sid: SessionId) -> Option<&T> {
        self.slots
            .get(sid.index as usize)
            .filter(|s| s.occupied && s.generation == sid.generation)
            .and_then(|s| s.value.as_ref())
    }

    /// Mutable access to the value behind `sid`, if still live.
    pub(crate) fn get_mut(&mut self, sid: SessionId) -> Option<&mut T> {
        self.slots
            .get_mut(sid.index as usize)
            .filter(|s| s.occupied && s.generation == sid.generation)
            .and_then(|s| s.value.as_mut())
    }

    /// Whether `sid` refers to a live entry.
    pub(crate) fn contains(&self, sid: SessionId) -> bool {
        self.get(sid).is_some()
    }

    /// Retires `sid`'s slot: the id goes stale (generation bump) and
    /// the slot joins the free list, **keeping its value** for the next
    /// tenant to reset. Returns whether anything was removed.
    pub(crate) fn remove(&mut self, sid: SessionId) -> bool {
        match self.slots.get_mut(sid.index as usize) {
            Some(slot) if slot.occupied && slot.generation == sid.generation => {
                slot.occupied = false;
                slot.generation = slot.generation.wrapping_add(1);
                self.free.push(sid.index);
                self.live -= 1;
                true
            }
            _ => false,
        }
    }

    /// Iterates over live entries in slot order.
    pub(crate) fn iter(&self) -> impl Iterator<Item = (SessionId, &T)> {
        self.slots.iter().enumerate().filter_map(|(i, s)| {
            if !s.occupied {
                return None;
            }
            let sid = SessionId {
                index: i as u32,
                generation: s.generation,
            };
            s.value.as_ref().map(|v| (sid, v))
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alloc_get_remove_roundtrip() {
        let mut a: Arena<String> = Arena::new();
        let (sid, v) = a.alloc_with(String::new).expect("alloc");
        v.push_str("hello");
        assert_eq!(a.len(), 1);
        assert!(a.contains(sid));
        assert_eq!(a.get(sid).map(String::as_str), Some("hello"));
        assert!(a.remove(sid));
        assert_eq!(a.len(), 0);
        assert!(!a.contains(sid));
        assert!(a.get(sid).is_none());
        assert!(!a.remove(sid), "double remove must be a no-op");
    }

    #[test]
    fn stale_id_misses_recycled_slot() {
        let mut a: Arena<u64> = Arena::new();
        let (old, v) = a.alloc_with(|| 0).expect("alloc");
        *v = 1;
        a.remove(old);
        let (new, v) = a.alloc_with(|| 0).expect("alloc");
        *v = 2;
        // Same slot, different generation: the stale id must miss.
        assert!(a.get(old).is_none());
        assert!(!a.remove(old));
        assert_eq!(a.get(new), Some(&2));
        assert_eq!(a.len(), 1);
    }

    #[test]
    fn recycled_slot_retains_previous_value() {
        let mut a: Arena<Vec<u8>> = Arena::new();
        let (sid, v) = a.alloc_with(Vec::new).expect("alloc");
        v.extend_from_slice(&[1, 2, 3, 4]);
        let cap = v.capacity();
        a.remove(sid);
        let (_, v) = a.alloc_with(Vec::new).expect("alloc");
        // The retained tenant comes back as-is (caller resets it), with
        // its buffer capacity intact — the zero-alloc property.
        assert_eq!(v, &[1, 2, 3, 4]);
        assert_eq!(v.capacity(), cap);
    }

    #[test]
    fn iter_yields_live_entries_only() {
        let mut a: Arena<u32> = Arena::new();
        let mut ids = Vec::new();
        for i in 0..5u32 {
            let (sid, v) = a.alloc_with(|| 0).expect("alloc");
            *v = i;
            ids.push(sid);
        }
        a.remove(ids[1]);
        a.remove(ids[3]);
        let live: Vec<u32> = a.iter().map(|(_, v)| *v).collect();
        assert_eq!(live, [0, 2, 4]);
        for (sid, v) in a.iter() {
            assert_eq!(a.get(sid), Some(v));
        }
    }

    #[test]
    fn free_slots_are_reused_lifo() {
        let mut a: Arena<()> = Arena::new();
        let (s0, _) = a.alloc_with(|| ()).expect("alloc");
        let (s1, _) = a.alloc_with(|| ()).expect("alloc");
        a.remove(s0);
        a.remove(s1);
        // s1 freed last, reused first; no new slots appear.
        let (r0, _) = a.alloc_with(|| ()).expect("alloc");
        let (r1, _) = a.alloc_with(|| ()).expect("alloc");
        assert_eq!(r0.index, s1.index);
        assert_eq!(r1.index, s0.index);
        assert_eq!(a.slots.len(), 2);
    }
}
