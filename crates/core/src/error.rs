//! Error types for the CloudMonatt core.

use crate::types::{NodeId, SecurityProperty, ServerId, Vid};
use monatt_net::channel::ChannelError;
use std::error::Error;
use std::fmt;

/// Errors surfaced by the cloud facade and its components.
#[derive(Clone, Debug, PartialEq, Eq)]
#[non_exhaustive]
pub enum CloudError {
    /// No server satisfies the VM's resource and property requirements.
    NoQualifiedServer {
        /// The properties that could not be satisfied.
        requested: Vec<SecurityProperty>,
    },
    /// The VM does not exist (or was terminated).
    UnknownVm(Vid),
    /// The server does not exist.
    UnknownServer(ServerId),
    /// Startup attestation failed; the launch was rejected.
    LaunchRejected {
        /// Why the attestation failed.
        reason: String,
    },
    /// The attestation protocol failed (signature, quote or nonce check).
    ProtocolFailure {
        /// Which check failed.
        reason: String,
    },
    /// A protocol hop could not deliver a message within its retry
    /// budget: the peer is unreachable (or the network is lossy beyond
    /// the retransmit layer's tolerance). Distinct from an unhealthy
    /// attestation verdict — no evidence about the VM was gathered.
    Unreachable {
        /// The endpoint that could not be reached.
        peer: String,
        /// How many delivery attempts were made.
        attempts: u32,
    },
    /// The requested property is not monitored on the VM's server.
    PropertyNotSupported {
        /// The unsupported property.
        property: SecurityProperty,
        /// The server lacking support.
        server: ServerId,
    },
    /// No periodic attestation with this id is active.
    UnknownSubscription(u64),
    /// A migration could not find a destination server.
    MigrationFailed {
        /// The VM that could not be migrated.
        vid: Vid,
    },
    /// A protocol entity the session depends on — a cloud server, the
    /// Attestation Server or the Cloud Controller — is crashed. Sessions
    /// touching a down node fail fast with this error instead of
    /// burning the retransmission ladder against a black hole.
    NodeDown {
        /// The crashed entity.
        node: NodeId,
    },
    /// The session's end-to-end deadline budget expired (or the
    /// remaining budget could not cover another retransmission
    /// timeout) before a verdict was reached.
    DeadlineExceeded {
        /// The deadline budget the session was given.
        budget_us: u64,
        /// Latency charged to the session before it was abandoned.
        elapsed_us: u64,
    },
    /// The Attestation Server's admission gate is shedding load: the
    /// sessions-in-flight high-water mark was reached and this session
    /// was rejected at admission rather than queued unboundedly.
    Overloaded {
        /// Sessions in flight when admission was refused.
        in_flight: usize,
    },
    /// Establishing a secure channel between two protocol endpoints
    /// failed while assembling the cloud.
    ChannelEstablishment {
        /// The initiating endpoint.
        initiator: String,
        /// The responding endpoint.
        responder: String,
        /// The underlying handshake failure.
        error: ChannelError,
    },
}

impl fmt::Display for CloudError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CloudError::NoQualifiedServer { requested } => {
                let names: Vec<String> = requested.iter().map(|p| p.to_string()).collect();
                write!(
                    f,
                    "no qualified server for properties [{}]",
                    names.join(", ")
                )
            }
            CloudError::UnknownVm(vid) => write!(f, "unknown VM {vid}"),
            CloudError::UnknownServer(s) => write!(f, "unknown server {s}"),
            CloudError::LaunchRejected { reason } => write!(f, "VM launch rejected: {reason}"),
            CloudError::ProtocolFailure { reason } => {
                write!(f, "attestation protocol failure: {reason}")
            }
            CloudError::Unreachable { peer, attempts } => {
                write!(f, "{peer} unreachable after {attempts} delivery attempts")
            }
            CloudError::PropertyNotSupported { property, server } => {
                write!(f, "property {property} not supported on {server}")
            }
            CloudError::UnknownSubscription(id) => {
                write!(f, "no periodic attestation with id {id}")
            }
            CloudError::MigrationFailed { vid } => write!(f, "migration failed for {vid}"),
            CloudError::NodeDown { node } => write!(f, "{node} is down"),
            CloudError::DeadlineExceeded {
                budget_us,
                elapsed_us,
            } => {
                write!(
                    f,
                    "session deadline exceeded: {elapsed_us}us spent of a {budget_us}us budget"
                )
            }
            CloudError::Overloaded { in_flight } => {
                write!(
                    f,
                    "attestation server overloaded: admission refused at {in_flight} sessions in flight"
                )
            }
            CloudError::ChannelEstablishment {
                initiator,
                responder,
                error,
            } => {
                write!(
                    f,
                    "secure-channel handshake {initiator}<->{responder} failed: {error}"
                )
            }
        }
    }
}

impl Error for CloudError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages() {
        let e = CloudError::NoQualifiedServer {
            requested: vec![SecurityProperty::StartupIntegrity],
        };
        assert!(e.to_string().contains("startup-integrity"));
        assert!(CloudError::UnknownVm(Vid(9)).to_string().contains("vid-9"));
        assert_eq!(
            CloudError::NodeDown {
                node: NodeId::Server(ServerId(2)),
            }
            .to_string(),
            "server-2 is down"
        );
        assert_eq!(
            CloudError::NodeDown {
                node: NodeId::AttestationServer,
            }
            .to_string(),
            "attserver is down"
        );
        let e = CloudError::DeadlineExceeded {
            budget_us: 1_000,
            elapsed_us: 1_500,
        };
        assert!(e.to_string().contains("1500us"));
        assert!(e.to_string().contains("1000us budget"));
        assert!(CloudError::Overloaded { in_flight: 64 }
            .to_string()
            .contains("64 sessions"));
    }

    #[test]
    fn is_std_error_send_sync() {
        fn assert_err<E: Error + Send + Sync + 'static>() {}
        assert_err::<CloudError>();
    }
}
