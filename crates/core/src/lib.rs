//! # monatt-core
//!
//! The CloudMonatt architecture (Zhang & Lee, ISCA 2015): an end-to-end
//! system for monitoring and attesting the security health of VMs in an
//! IaaS cloud.
//!
//! ## Components (Figure 1 of the paper)
//!
//! * [`controller`] — the Cloud Controller: nova database, Policy
//!   Validation Module (`property_filter`), Deployment Module and
//!   Response Module.
//! * [`attestation`] — the Attestation Server: Property Interpretation
//!   Module, Property Certification Module and the [`pca`] privacy CA.
//! * [`controlplane`] — the replicated control-plane topology: `K`
//!   sharded controller instances with deterministic failover and an
//!   `N`-replica Attestation-Server pool with health-gated selection.
//! * [`server`] — CloudMonatt-secure cloud servers: hypervisor simulator,
//!   Monitor Module and hardware Trust Module (Figure 2).
//! * [`messages`] — the six attestation protocol messages of Figure 3.
//! * [`protocol`] — the attestation-protocol IR: Figure 3 (and layered
//!   / fan-out variants) as compiled programs the session layer
//!   interprets.
//! * [`interpret`] — the property ↔ measurement semantic bridge,
//!   including the covert-channel two-peak detector and the CPU
//!   availability check (Section 4).
//! * [`latency`] — the management-plane cost model behind Figures 9-11.
//! * [`cloud`] — the [`Cloud`] facade tying everything together, with
//!   the Table 1 APIs: [`Cloud::startup_attest_current`],
//!   [`Cloud::runtime_attest_current`],
//!   [`Cloud::runtime_attest_periodic`] and
//!   [`Cloud::stop_attest_periodic`].
//!
//! ## Quickstart
//!
//! ```
//! use monatt_core::{CloudBuilder, Flavor, Image, SecurityProperty, VmRequest};
//!
//! # fn main() -> Result<(), monatt_core::CloudError> {
//! let mut cloud = CloudBuilder::new().servers(3).seed(1).build();
//! let vid = cloud.request_vm(
//!     VmRequest::new(Flavor::Small, Image::Cirros)
//!         .require(SecurityProperty::StartupIntegrity),
//! )?;
//! let report = cloud.startup_attest_current(vid, SecurityProperty::StartupIntegrity)?;
//! assert!(report.healthy());
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]

pub(crate) mod arena;
pub mod attestation;
pub mod cloud;
pub mod controller;
pub mod controlplane;
pub(crate) mod engine;
pub mod error;
pub mod interpret;
pub mod latency;
pub mod measurements;
pub mod messages;
pub mod outage;
pub mod pca;
pub mod protocol;
pub mod server;
pub(crate) mod session;
pub mod types;

pub use attestation::AttestationServer;
pub use cloud::{
    AttestationReport, Cloud, CloudBuilder, Frequency, LaunchTiming, ResponseTiming,
    SubscriptionHealth, VmRequest, WorkloadSpec,
};
pub use controller::{CloudController, ResponseAction, ServerInfo, VmLifecycle, VmRecord};
pub use controlplane::{ControlPlaneStats, ControlPlaneTopology, RouteTag};
pub use error::CloudError;
pub use interpret::{analyze_intervals, IntervalAnalysis, ReferenceDb, DEFAULT_WINDOW_US};
pub use latency::{LatencyParams, RetryPolicy};
pub use measurements::{Measurement, MeasurementSpec, TaskInfo};
pub use outage::{AdmissionControl, OutageModel, OutageStats};
pub use pca::{AvkCertificate, PrivacyCa};
pub use protocol::{Branch, CompileError, MsgKind, NonceSlot, ProgramId, Protocol, QuoteKind};
pub use server::{AttestationResponse, CloudServerNode};
pub use types::{
    Flavor, HealthStatus, Image, NodeId, Nonce, ProtocolStats, SecurityProperty, ServerId, Vid,
};
