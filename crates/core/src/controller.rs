//! The Cloud Controller (Section 3.2.2): VM management. Contains the nova
//! database (VM records, server capability tables), the Policy Validation
//! Module (`property_filter`), the Deployment Module, and the Response
//! Module that executes remediation (Section 5.2).

use crate::error::CloudError;
use crate::messages::CustomerReportMsg;
use crate::types::{Flavor, HealthStatus, Image, SecurityProperty, ServerId, Vid};
use monatt_crypto::drbg::Drbg;
use monatt_crypto::schnorr::{SigningKey, VerifyingKey};
use monatt_net::wire::EncodeScratch;
use monatt_tpm::quote::Quote;
use std::collections::BTreeMap;

/// Cold error constructor, outlined so the message-6 verification the
/// session warm loop calls into allocates nothing when the quote holds.
#[cold]
fn quote_q1_failure(e: impl std::fmt::Display) -> CloudError {
    CloudError::ProtocolFailure {
        reason: format!("quote Q1 verification failed: {e}"),
    }
}

/// Lifecycle state of a VM as tracked in the nova database.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum VmLifecycle {
    /// Running on its assigned server.
    Active,
    /// Suspended by a remediation response.
    Suspended,
    /// Terminated (by request or remediation).
    Terminated,
}

/// A VM record in the nova database.
#[derive(Clone, Debug)]
pub struct VmRecord {
    /// The VM id.
    pub vid: Vid,
    /// Requested flavor.
    pub flavor: Flavor,
    /// Image it was launched from.
    pub image: Image,
    /// Security properties the customer requested monitoring for.
    pub properties: Vec<SecurityProperty>,
    /// Current host server.
    pub server: ServerId,
    /// Lifecycle state.
    pub state: VmLifecycle,
}

/// A server record: capacity and monitoring capabilities.
#[derive(Clone, Debug)]
pub struct ServerInfo {
    /// The server id.
    pub id: ServerId,
    /// Free vCPU slots (kept in sync by the deployment module).
    pub free_vcpus: usize,
    /// Property labels the server's Monitor Module supports.
    pub supported_properties: Vec<&'static str>,
}

impl ServerInfo {
    /// Whether the server can monitor `property`.
    pub fn supports(&self, property: SecurityProperty) -> bool {
        self.supported_properties.contains(&property.label())
    }
}

/// The remediation responses of Section 5.2.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ResponseAction {
    /// #1: shut the VM down.
    Termination,
    /// #2: suspend pending further checks.
    Suspension,
    /// #3: move to another qualified server.
    Migration,
}

impl std::fmt::Display for ResponseAction {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ResponseAction::Termination => write!(f, "termination"),
            ResponseAction::Suspension => write!(f, "suspension"),
            ResponseAction::Migration => write!(f, "migration"),
        }
    }
}

/// The Cloud Controller.
pub struct CloudController {
    identity: SigningKey,
    vms: BTreeMap<Vid, VmRecord>,
    servers: BTreeMap<ServerId, ServerInfo>,
    next_vid: u64,
}

impl std::fmt::Debug for CloudController {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("CloudController")
            .field("vms", &self.vms.len())
            .field("servers", &self.servers.len())
            .finish_non_exhaustive()
    }
}

impl CloudController {
    /// Creates a controller with a fresh identity key.
    pub fn new(rng: &mut Drbg) -> Self {
        CloudController {
            identity: SigningKey::generate(rng),
            vms: BTreeMap::new(),
            servers: BTreeMap::new(),
            next_vid: 1,
        }
    }

    /// The controller's public identity key (VKc).
    pub fn identity_key(&self) -> VerifyingKey {
        self.identity.verifying_key()
    }

    /// Registers a server in the capability table.
    pub fn register_server(&mut self, info: ServerInfo) {
        self.servers.insert(info.id, info);
    }

    /// Number of registered servers.
    pub fn server_count(&self) -> usize {
        self.servers.len()
    }

    /// Allocates a fresh vid.
    pub fn allocate_vid(&mut self) -> Vid {
        let vid = Vid(self.next_vid);
        self.next_vid += 1;
        vid
    }

    /// The Policy Validation Module's `property_filter`: selects a server
    /// with enough free vCPUs that supports every requested property.
    /// Prefers the emptiest qualified server (OpenStack's balance
    /// heuristic), excluding `exclude` (used when migrating away).
    ///
    /// # Errors
    ///
    /// [`CloudError::NoQualifiedServer`] when no server qualifies.
    pub fn select_server(
        &self,
        flavor: Flavor,
        properties: &[SecurityProperty],
        exclude: Option<ServerId>,
    ) -> Result<ServerId, CloudError> {
        let excluded: std::collections::BTreeSet<ServerId> = exclude.into_iter().collect();
        self.select_server_excluding(flavor, properties, &excluded)
    }

    /// [`Self::select_server`] with an arbitrary exclusion set — used
    /// when several servers are unavailable at once (crashed nodes plus
    /// the server being migrated away from).
    ///
    /// # Errors
    ///
    /// [`CloudError::NoQualifiedServer`] when no server qualifies.
    pub fn select_server_excluding(
        &self,
        flavor: Flavor,
        properties: &[SecurityProperty],
        excluded: &std::collections::BTreeSet<ServerId>,
    ) -> Result<ServerId, CloudError> {
        self.servers
            .values()
            .filter(|s| !excluded.contains(&s.id))
            .filter(|s| s.free_vcpus >= flavor.vcpus())
            .filter(|s| properties.iter().all(|p| s.supports(*p)))
            .max_by_key(|s| s.free_vcpus)
            .map(|s| s.id)
            .ok_or_else(|| CloudError::NoQualifiedServer {
                requested: properties.to_vec(),
            })
    }

    /// Records a successful deployment.
    pub fn record_deployment(&mut self, record: VmRecord) {
        if let Some(server) = self.servers.get_mut(&record.server) {
            server.free_vcpus = server.free_vcpus.saturating_sub(record.flavor.vcpus());
        }
        self.vms.insert(record.vid, record);
    }

    /// Looks up a VM record.
    pub fn vm(&self, vid: Vid) -> Option<&VmRecord> {
        self.vms.get(&vid)
    }

    /// Mutable VM record access.
    pub fn vm_mut(&mut self, vid: Vid) -> Option<&mut VmRecord> {
        self.vms.get_mut(&vid)
    }

    /// All VM records.
    pub fn vms(&self) -> impl Iterator<Item = &VmRecord> {
        self.vms.values()
    }

    /// Takes `flavor`'s capacity on `server` (used when a VM arrives by
    /// migration rather than deployment).
    pub fn take_capacity(&mut self, server: ServerId, flavor: Flavor) {
        if let Some(info) = self.servers.get_mut(&server) {
            info.free_vcpus = info.free_vcpus.saturating_sub(flavor.vcpus());
        }
    }

    /// Releases a VM's capacity on its server (termination/migration).
    pub fn release_capacity(&mut self, vid: Vid) {
        if let Some(record) = self.vms.get(&vid) {
            let vcpus = record.flavor.vcpus();
            if let Some(server) = self.servers.get_mut(&record.server) {
                server.free_vcpus += vcpus;
            }
        }
    }

    /// Picks the remediation response for a failed attestation — the
    /// policy of Section 5.2: integrity failures kill the VM, platform
    /// health issues suspend, availability/covert-channel problems (bad
    /// neighbours) migrate.
    pub fn choose_response(&self, property: SecurityProperty) -> ResponseAction {
        match property {
            SecurityProperty::StartupIntegrity | SecurityProperty::RuntimeIntegrity => {
                ResponseAction::Termination
            }
            SecurityProperty::CovertChannelFreedom => ResponseAction::Migration,
            SecurityProperty::CpuAvailability { .. } => ResponseAction::Migration,
            // The abusive VM itself is the subject: kill it.
            SecurityProperty::SchedulerFairness => ResponseAction::Termination,
        }
    }

    /// Picks the remediation response when a VM's server stops answering
    /// attestation requests altogether. Silence carries no evidence that
    /// the VM itself is compromised, so the guest is not killed; instead
    /// it is migrated to a server the Attestation Server can still
    /// reach, restoring monitorability (Section 3.2's requirement that
    /// the customer can always learn the VM's security health).
    pub fn choose_unreachable_response(&self) -> ResponseAction {
        ResponseAction::Migration
    }

    /// Builds and signs the customer report (message 6, quote Q1 under
    /// SKc).
    pub fn certify_customer_report(
        &self,
        vid: Vid,
        property: SecurityProperty,
        status: HealthStatus,
        nonce1: [u8; 32],
    ) -> CustomerReportMsg {
        self.certify_customer_report_with(vid, property, status, nonce1, &mut EncodeScratch::new())
    }

    /// [`Self::certify_customer_report`] with a caller-provided encode
    /// scratch, so the warm attestation path signs without allocating.
    pub fn certify_customer_report_with(
        &self,
        vid: Vid,
        property: SecurityProperty,
        status: HealthStatus,
        nonce1: [u8; 32],
        scratch: &mut EncodeScratch,
    ) -> CustomerReportMsg {
        Self::certify_customer_report_keyed(&self.identity, vid, property, status, nonce1, scratch)
    }

    /// [`Self::certify_customer_report_with`] under an explicit signing
    /// key. A replicated control plane gives every controller instance
    /// its own long-term key, so the customer pins the instance that
    /// served the session — a standby cannot impersonate the primary.
    pub fn certify_customer_report_keyed(
        key: &SigningKey,
        vid: Vid,
        property: SecurityProperty,
        status: HealthStatus,
        nonce1: [u8; 32],
        scratch: &mut EncodeScratch,
    ) -> CustomerReportMsg {
        let vid_bytes = vid.0.to_be_bytes();
        let (prop_bytes, status_bytes) = scratch.encode_pair(&property, &status);
        let quote = Quote::create(key, &[&vid_bytes, prop_bytes, status_bytes, &nonce1]);
        CustomerReportMsg {
            vid,
            property,
            status,
            nonce1,
            quote,
        }
    }

    /// The controller's long-term signing key (SKc), for the session
    /// layer's per-instance message-6 certification.
    pub(crate) fn signing_key(&self) -> &SigningKey {
        &self.identity
    }

    /// Customer-side verification of message 6.
    ///
    /// # Errors
    ///
    /// [`CloudError::ProtocolFailure`] naming the failed check.
    pub fn verify_customer_report(
        msg: &CustomerReportMsg,
        controller_key: &VerifyingKey,
        expected_nonce1: [u8; 32],
    ) -> Result<(), CloudError> {
        Self::verify_customer_report_with(
            msg,
            controller_key,
            expected_nonce1,
            &mut EncodeScratch::new(),
        )
    }

    /// [`Self::verify_customer_report`] with a caller-provided encode
    /// scratch.
    ///
    /// # Errors
    ///
    /// [`CloudError::ProtocolFailure`] naming the failed check.
    pub fn verify_customer_report_with(
        msg: &CustomerReportMsg,
        controller_key: &VerifyingKey,
        expected_nonce1: [u8; 32],
        scratch: &mut EncodeScratch,
    ) -> Result<(), CloudError> {
        if msg.nonce1 != expected_nonce1 {
            return Err(CloudError::ProtocolFailure {
                reason: "nonce N1 mismatch (possible replay)".into(),
            });
        }
        let vid_bytes = msg.vid.0.to_be_bytes();
        let (prop_bytes, status_bytes) = scratch.encode_pair(&msg.property, &msg.status);
        msg.quote
            .verify(
                controller_key,
                &[&vid_bytes, prop_bytes, status_bytes, &msg.nonce1],
            )
            .map_err(quote_q1_failure)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn controller_with_servers() -> CloudController {
        let mut c = CloudController::new(&mut Drbg::from_seed(50));
        c.register_server(ServerInfo {
            id: ServerId(0),
            free_vcpus: 3,
            supported_properties: vec!["startup-integrity", "runtime-integrity"],
        });
        c.register_server(ServerInfo {
            id: ServerId(1),
            free_vcpus: 16,
            supported_properties: vec![
                "startup-integrity",
                "runtime-integrity",
                "covert-channel-freedom",
                "cpu-availability",
            ],
        });
        c.register_server(ServerInfo {
            id: ServerId(2),
            free_vcpus: 2,
            supported_properties: vec![],
        });
        c
    }

    #[test]
    fn property_filter_selects_qualified_server() {
        let c = controller_with_servers();
        // Covert-channel monitoring only on server 1.
        let s = c
            .select_server(
                Flavor::Small,
                &[SecurityProperty::CovertChannelFreedom],
                None,
            )
            .unwrap();
        assert_eq!(s, ServerId(1));
        // No property requirement: picks the emptiest (server 1).
        let s = c.select_server(Flavor::Small, &[], None).unwrap();
        assert_eq!(s, ServerId(1));
        // Excluding server 1 falls back to server 0 for integrity.
        let s = c
            .select_server(
                Flavor::Small,
                &[SecurityProperty::RuntimeIntegrity],
                Some(ServerId(1)),
            )
            .unwrap();
        assert_eq!(s, ServerId(0));
    }

    #[test]
    fn no_qualified_server_is_an_error() {
        let c = controller_with_servers();
        let err = c
            .select_server(
                Flavor::Small,
                &[SecurityProperty::CovertChannelFreedom],
                Some(ServerId(1)),
            )
            .unwrap_err();
        assert!(matches!(err, CloudError::NoQualifiedServer { .. }));
        // Capacity filter: a huge flavor nowhere fits.
        let err = c
            .select_server(Flavor::Large, &[], Some(ServerId(1)))
            .unwrap_err();
        assert!(matches!(err, CloudError::NoQualifiedServer { .. }));
    }

    #[test]
    fn capacity_bookkeeping() {
        let mut c = controller_with_servers();
        let vid = c.allocate_vid();
        c.record_deployment(VmRecord {
            vid,
            flavor: Flavor::Large,
            image: Image::Ubuntu,
            properties: vec![],
            server: ServerId(1),
            state: VmLifecycle::Active,
        });
        assert_eq!(c.servers[&ServerId(1)].free_vcpus, 12);
        c.release_capacity(vid);
        assert_eq!(c.servers[&ServerId(1)].free_vcpus, 16);
    }

    #[test]
    fn vids_are_unique() {
        let mut c = controller_with_servers();
        let a = c.allocate_vid();
        let b = c.allocate_vid();
        assert_ne!(a, b);
    }

    #[test]
    fn response_policy() {
        let c = controller_with_servers();
        assert_eq!(
            c.choose_response(SecurityProperty::RuntimeIntegrity),
            ResponseAction::Termination
        );
        assert_eq!(
            c.choose_response(SecurityProperty::CovertChannelFreedom),
            ResponseAction::Migration
        );
    }

    #[test]
    fn customer_report_roundtrip() {
        let c = controller_with_servers();
        let msg = c.certify_customer_report(
            Vid(3),
            SecurityProperty::StartupIntegrity,
            HealthStatus::Healthy,
            [1u8; 32],
        );
        CloudController::verify_customer_report(&msg, &c.identity_key(), [1u8; 32]).unwrap();
        // Forged status fails.
        let mut forged = msg.clone();
        forged.status = HealthStatus::Compromised {
            reason: "fake".into(),
        };
        assert!(
            CloudController::verify_customer_report(&forged, &c.identity_key(), [1u8; 32]).is_err()
        );
        // Stale nonce fails.
        assert!(
            CloudController::verify_customer_report(&msg, &c.identity_key(), [2u8; 32]).is_err()
        );
    }
}
