//! The Attestation Server (Section 3.2.3): the attestation requester and
//! appraiser. Holds the oat database (reference values, server registry),
//! the Property Interpretation Module, the Property Certification Module,
//! and works with the privacy CA to authenticate cloud servers
//! anonymously.

use crate::error::CloudError;
use crate::interpret::{interpret, property_to_spec, ReferenceDb};
use crate::measurements::MeasurementSpec;
use crate::messages::{AttestationReportMsg, MeasureRequest, MeasureResponse};
use crate::pca::{PcaError, PrivacyCa};
use crate::types::{HealthStatus, Image, SecurityProperty, ServerId, Vid};
use monatt_crypto::batch::{batch_verify_each, BatchItem};
use monatt_crypto::drbg::Drbg;
use monatt_crypto::schnorr::{SigningKey, VerifyingKey};
use monatt_net::wire::EncodeScratch;

/// Cold error constructors, outlined so the validation paths the
/// session warm loop calls into allocate nothing when every check
/// passes. The serial and batch paths share them, which also keeps
/// their error strings aligned check for check.
#[cold]
fn vid_mismatch(expected: Vid, got: Vid) -> CloudError {
    CloudError::ProtocolFailure {
        reason: format!("vid mismatch: expected {expected}, got {got}"),
    }
}

#[cold]
fn certification_failure(e: impl std::fmt::Display) -> CloudError {
    CloudError::ProtocolFailure {
        reason: format!("attestation key certification failed: {e}"),
    }
}

#[cold]
fn quote_failure(which: &str, e: impl std::fmt::Display) -> CloudError {
    CloudError::ProtocolFailure {
        reason: format!("quote {which} verification failed: {e}"),
    }
}
use monatt_tpm::quote::{Quote, QuoteError};
use std::collections::BTreeMap;

/// A property verdict held by the Property Certification Module for reuse
/// inside its validity window (the sub-attestation-reuse idea from Ozga et
/// al.): a repeat request for the same `(Vid, property)` pair is answered
/// from here without touching the cloud server.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CachedEvidence {
    /// The verdict the full protocol produced.
    pub status: HealthStatus,
    /// The server that hosted the VM when the evidence was gathered.
    /// Invalidation on migration/evacuation/crash keys off this.
    pub server: ServerId,
    /// Wall-clock expiry (exclusive): at or past this instant the evidence
    /// is stale and the full protocol must run again.
    pub valid_until_us: u64,
}

/// One msg-4 of a coalesced batch awaiting AS validation.
pub struct BatchValidationItem<'a> {
    /// The decoded measurement response.
    pub response: &'a MeasureResponse,
    /// The VM the session asked about.
    pub expected_vid: Vid,
    /// The measurement the session requested.
    pub expected_spec: MeasurementSpec,
    /// The session's freshness nonce N3.
    pub expected_nonce3: [u8; 32],
}

/// The Attestation Server.
pub struct AttestationServer {
    identity: SigningKey,
    pca: PrivacyCa,
    references: ReferenceDb,
    /// Evidence cache keyed `(Vid, SecurityProperty)`; empty (and
    /// untouched) unless the cloud enables a validity window.
    evidence: BTreeMap<(Vid, SecurityProperty), CachedEvidence>,
    evidence_hits: u64,
    evidence_misses: u64,
}

impl std::fmt::Debug for AttestationServer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("AttestationServer").finish_non_exhaustive()
    }
}

impl AttestationServer {
    /// Creates the Attestation Server with its own identity key and an
    /// embedded privacy CA.
    pub fn new(rng: &mut Drbg) -> Self {
        AttestationServer {
            identity: SigningKey::generate(rng),
            pca: PrivacyCa::new(rng),
            references: ReferenceDb::new(),
            evidence: BTreeMap::new(),
            evidence_hits: 0,
            evidence_misses: 0,
        }
    }

    /// The server's public identity key (VKa).
    pub fn identity_key(&self) -> VerifyingKey {
        self.identity.verifying_key()
    }

    /// Registers a cloud server's identity key with the pCA (deployment
    /// time).
    pub fn register_cloud_server(&mut self, identity: VerifyingKey) {
        self.pca.register_server(identity);
    }

    /// Turns on the pCA's certified-AVK cache (see
    /// [`PrivacyCa::enable_cert_cache`]).
    pub fn enable_avk_cert_cache(&mut self) {
        self.pca.enable_cert_cache();
    }

    /// Certified-AVK cache hits and misses.
    pub fn avk_cert_cache_stats(&self) -> (u64, u64) {
        self.pca.cache_stats()
    }

    /// Reacts to a channel re-key: the pCA epoch advances (staling every
    /// issued certificate and dropping the certified-AVK cache) and all
    /// cached evidence is invalidated — trust gathered over the old
    /// channel does not carry across a re-handshake.
    pub fn on_rekey(&mut self) {
        self.pca.bump_epoch();
        self.evidence.clear();
    }

    /// Looks up fresh cached evidence for `(vid, property)` at `now_us`,
    /// counting a hit or miss. Expired entries are dropped on the way.
    pub fn evidence_lookup(
        &mut self,
        vid: Vid,
        property: SecurityProperty,
        now_us: u64,
    ) -> Option<CachedEvidence> {
        match self.evidence.get(&(vid, property)) {
            Some(entry) if now_us < entry.valid_until_us => {
                self.evidence_hits += 1;
                Some(entry.clone())
            }
            Some(_) => {
                self.evidence.remove(&(vid, property));
                self.evidence_misses += 1;
                None
            }
            None => {
                self.evidence_misses += 1;
                None
            }
        }
    }

    /// Stores a freshly certified verdict for reuse until
    /// `valid_until_us`.
    pub fn evidence_insert(
        &mut self,
        vid: Vid,
        property: SecurityProperty,
        server: ServerId,
        status: HealthStatus,
        valid_until_us: u64,
    ) {
        self.evidence.insert(
            (vid, property),
            CachedEvidence {
                status,
                server,
                valid_until_us,
            },
        );
    }

    /// Drops all cached evidence about `vid` (migration, termination).
    pub fn invalidate_evidence_for_vid(&mut self, vid: Vid) {
        self.evidence.retain(|(v, _), _| *v != vid);
    }

    /// Drops all cached evidence gathered on `server` (crash,
    /// evacuation): the platform that produced it is gone.
    pub fn invalidate_evidence_for_server(&mut self, server: ServerId) {
        self.evidence.retain(|_, entry| entry.server != server);
    }

    /// Drops every cached verdict (Attestation Server crash).
    pub fn invalidate_all_evidence(&mut self) {
        self.evidence.clear();
    }

    /// Evidence cache hits and misses.
    pub fn evidence_cache_stats(&self) -> (u64, u64) {
        (self.evidence_hits, self.evidence_misses)
    }

    /// The reference database used by the interpretation module.
    pub fn references(&self) -> &ReferenceDb {
        &self.references
    }

    /// Builds the measurement request for a property (the P → rM mapping).
    pub fn build_measure_request(
        &self,
        vid: Vid,
        property: SecurityProperty,
        nonce3: [u8; 32],
    ) -> MeasureRequest {
        MeasureRequest {
            vid,
            spec: property_to_spec(property),
            nonce3,
        }
    }

    /// Validates a cloud server's response: certifies the session key via
    /// the pCA, then checks the quote digest and signature and the nonce
    /// and vid echoes.
    ///
    /// # Errors
    ///
    /// [`CloudError::ProtocolFailure`] naming the failed check.
    pub fn validate_response(
        &mut self,
        response: &MeasureResponse,
        expected_vid: Vid,
        expected_spec: MeasurementSpec,
        expected_nonce3: [u8; 32],
    ) -> Result<(), CloudError> {
        self.validate_response_with(
            response,
            expected_vid,
            expected_spec,
            expected_nonce3,
            &mut EncodeScratch::new(),
        )
    }

    /// [`Self::validate_response`] with a caller-provided encode scratch,
    /// so the warm attestation path rebuilds the quote fields without
    /// allocating.
    ///
    /// # Errors
    ///
    /// [`CloudError::ProtocolFailure`] naming the failed check.
    pub fn validate_response_with(
        &mut self,
        response: &MeasureResponse,
        expected_vid: Vid,
        expected_spec: MeasurementSpec,
        expected_nonce3: [u8; 32],
        scratch: &mut EncodeScratch,
    ) -> Result<(), CloudError> {
        if response.vid != expected_vid {
            return Err(vid_mismatch(expected_vid, response.vid));
        }
        if response.spec != expected_spec {
            return Err(CloudError::ProtocolFailure {
                reason: "measurement spec mismatch".into(),
            });
        }
        if response.nonce3 != expected_nonce3 {
            return Err(CloudError::ProtocolFailure {
                reason: "nonce N3 mismatch (possible replay)".into(),
            });
        }
        let cert = self
            .pca
            .certify(&response.cert_request)
            .map_err(certification_failure)?;
        let vid_bytes = response.vid.0.to_be_bytes();
        let (spec_bytes, meas_bytes) = scratch.encode_pair(&response.spec, &response.measurement);
        response
            .quote
            .verify(
                &cert.attestation_key,
                &[&vid_bytes, spec_bytes, meas_bytes, &response.nonce3],
            )
            .map_err(|e| quote_failure("Q3", e))
    }

    /// The cheap per-item checks of the batch path — vid/spec/nonce
    /// echoes, server registration, quote digest — mirroring the serial
    /// [`Self::validate_response_with`] order and error strings exactly.
    /// Returns whether the item's certification request missed the cert
    /// cache (so its identity binding still needs verification).
    fn precheck_item(
        &mut self,
        item: &BatchValidationItem<'_>,
        scratch: &mut EncodeScratch,
    ) -> Result<bool, CloudError> {
        let response = item.response;
        if response.vid != item.expected_vid {
            return Err(vid_mismatch(item.expected_vid, response.vid));
        }
        if response.spec != item.expected_spec {
            return Err(CloudError::ProtocolFailure {
                reason: "measurement spec mismatch".into(),
            });
        }
        if response.nonce3 != item.expected_nonce3 {
            return Err(CloudError::ProtocolFailure {
                reason: "nonce N3 mismatch (possible replay)".into(),
            });
        }
        if !self.pca.is_registered(&response.cert_request.identity_key) {
            return Err(certification_failure(PcaError::UnregisteredServer));
        }
        let vid_bytes = response.vid.0.to_be_bytes();
        let (spec_bytes, meas_bytes) = scratch.encode_pair(&response.spec, &response.measurement);
        response
            .quote
            .check_fields(&[&vid_bytes, spec_bytes, meas_bytes, &response.nonce3])
            .map_err(|e| quote_failure("Q3", e))?;
        Ok(self.pca.cached(&response.cert_request).is_none())
    }

    /// Validates a coalesced batch of measurement responses, returning one
    /// verdict per item in order.
    ///
    /// The cheap checks (vid/spec/nonce echoes, quote digests, cert-cache
    /// lookups) run per item; every Schnorr verification the batch still
    /// needs — identity bindings for uncached certification requests plus
    /// one quote signature per item — is folded into a single
    /// random-linear-combination [`batch_verify_each`] call. A batch that
    /// fails the combined equation falls back to serial verification
    /// inside that call, so a forged quote is rejected exactly and never
    /// poisons its batch-mates. Verdicts and error strings match the
    /// serial [`Self::validate_response_with`] path check for check.
    pub fn validate_response_batch(
        &mut self,
        items: &[BatchValidationItem<'_>],
        scratch: &mut EncodeScratch,
    ) -> Vec<Result<(), CloudError>> {
        let n = items.len();
        // Per-item cheap-check verdicts and whether each item's
        // certification request missed the cert cache (and therefore
        // needs its identity binding verified), built in lockstep.
        let mut failures: Vec<Option<CloudError>> = Vec::with_capacity(n);
        let mut needs_binding: Vec<bool> = Vec::with_capacity(n);
        // Owned copies of each binding message (the AVK bytes), allocated
        // before the batch is assembled so the borrows below can live
        // across the whole call.
        let mut avk_bytes: Vec<[u8; 32]> = Vec::with_capacity(n);
        for item in items {
            avk_bytes.push(item.response.cert_request.attestation_key.to_bytes());
        }
        for item in items {
            match self.precheck_item(item, scratch) {
                Ok(nb) => {
                    failures.push(None);
                    needs_binding.push(nb);
                }
                Err(e) => {
                    failures.push(Some(e));
                    needs_binding.push(false);
                }
            }
        }
        // Assemble the signature batch: uncached identity bindings first,
        // then one quote signature per surviving item.
        let mut sig_batch: Vec<BatchItem<'_>> = Vec::with_capacity(2 * n);
        let mut owners: Vec<(usize, bool)> = Vec::with_capacity(2 * n); // (item, is_binding)
        let per_item = items
            .iter()
            .zip(failures.iter())
            .zip(needs_binding.iter())
            .zip(avk_bytes.iter());
        for (i, (((item, failure), binding), avk)) in per_item.enumerate() {
            if failure.is_some() {
                continue;
            }
            let request = &item.response.cert_request;
            if *binding {
                sig_batch.push((request.identity_key, avk, request.identity_signature));
                owners.push((i, true));
            }
            sig_batch.push((
                request.attestation_key,
                &item.response.quote.digest,
                item.response.quote.signature,
            ));
            owners.push((i, false));
        }
        let verdicts = batch_verify_each(&sig_batch);
        for ((i, is_binding), verdict) in owners.iter().zip(verdicts.iter()) {
            let Some(slot) = failures.get_mut(*i) else {
                continue;
            };
            if verdict.is_ok() || slot.is_some() {
                continue;
            }
            *slot = Some(match is_binding {
                true => certification_failure(PcaError::BadBinding),
                false => quote_failure("Q3", QuoteError::BadSignature),
            });
        }
        // Issue (and cache) certificates for the bindings that held, so
        // follow-up sessions presenting the same binding hit the cache.
        for ((i, is_binding), verdict) in owners.iter().zip(verdicts.iter()) {
            if *is_binding && verdict.is_ok() && failures.get(*i).is_some_and(|f| f.is_none()) {
                if let Some(item) = items.get(*i) {
                    self.pca.issue(&item.response.cert_request);
                }
            }
        }
        failures
            .into_iter()
            .map(|f| match f {
                Some(e) => Err(e),
                None => Ok(()),
            })
            .collect()
    }

    /// Runs the Property Interpretation Module on a validated response.
    pub fn interpret_response(
        &self,
        property: SecurityProperty,
        response: &MeasureResponse,
        expected_image: Image,
    ) -> HealthStatus {
        interpret(
            property,
            &response.measurement,
            expected_image,
            &self.references,
        )
    }

    /// The Property Certification Module: packages and signs the report
    /// for the controller (message 5, quote Q2 under SKa).
    pub fn certify_report(
        &self,
        vid: Vid,
        server: ServerId,
        property: SecurityProperty,
        status: HealthStatus,
        nonce2: [u8; 32],
    ) -> AttestationReportMsg {
        self.certify_report_with(
            vid,
            server,
            property,
            status,
            nonce2,
            &mut EncodeScratch::new(),
        )
    }

    /// [`Self::certify_report`] with a caller-provided encode scratch.
    pub fn certify_report_with(
        &self,
        vid: Vid,
        server: ServerId,
        property: SecurityProperty,
        status: HealthStatus,
        nonce2: [u8; 32],
        scratch: &mut EncodeScratch,
    ) -> AttestationReportMsg {
        let vid_bytes = vid.0.to_be_bytes();
        let server_bytes = server.0.to_be_bytes();
        let (prop_bytes, status_bytes) = scratch.encode_pair(&property, &status);
        let quote = Quote::create(
            &self.identity,
            &[&vid_bytes, &server_bytes, prop_bytes, status_bytes, &nonce2],
        );
        AttestationReportMsg {
            vid,
            server,
            property,
            status,
            nonce2,
            quote,
        }
    }

    /// Verifies a message-5 report (used by the controller).
    ///
    /// # Errors
    ///
    /// [`CloudError::ProtocolFailure`] if the quote or nonce fails.
    pub fn verify_report_msg(
        msg: &AttestationReportMsg,
        attserver_key: &VerifyingKey,
        expected_nonce2: [u8; 32],
    ) -> Result<(), CloudError> {
        Self::verify_report_msg_with(
            msg,
            attserver_key,
            expected_nonce2,
            &mut EncodeScratch::new(),
        )
    }

    /// [`Self::verify_report_msg`] with a caller-provided encode scratch.
    ///
    /// # Errors
    ///
    /// [`CloudError::ProtocolFailure`] if the quote or nonce fails.
    pub fn verify_report_msg_with(
        msg: &AttestationReportMsg,
        attserver_key: &VerifyingKey,
        expected_nonce2: [u8; 32],
        scratch: &mut EncodeScratch,
    ) -> Result<(), CloudError> {
        if msg.nonce2 != expected_nonce2 {
            return Err(CloudError::ProtocolFailure {
                reason: "nonce N2 mismatch (possible replay)".into(),
            });
        }
        let vid_bytes = msg.vid.0.to_be_bytes();
        let server_bytes = msg.server.0.to_be_bytes();
        let (prop_bytes, status_bytes) = scratch.encode_pair(&msg.property, &msg.status);
        msg.quote
            .verify(
                attserver_key,
                &[
                    &vid_bytes,
                    &server_bytes,
                    prop_bytes,
                    status_bytes,
                    &msg.nonce2,
                ],
            )
            .map_err(|e| quote_failure("Q2", e))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::server::CloudServerNode;
    use monatt_hypervisor::driver::IdleDriver;
    use monatt_hypervisor::scheduler::SchedParams;

    fn setup() -> (AttestationServer, CloudServerNode) {
        let mut rng = Drbg::from_seed(40);
        let mut attserver = AttestationServer::new(&mut rng);
        let refs = ReferenceDb::new();
        let mut node = CloudServerNode::boot(
            ServerId(0),
            1,
            SchedParams::default(),
            Drbg::from_seed(41),
            refs.platform_components(),
            &[SecurityProperty::StartupIntegrity],
        );
        attserver.register_cloud_server(node.identity_key());
        node.launch_vm(
            Vid(1),
            Image::Cirros,
            Image::Cirros.pristine_bytes(),
            vec![Box::new(IdleDriver)],
            256,
        );
        (attserver, node)
    }

    #[test]
    fn end_to_end_measure_validate_interpret() {
        let (mut attserver, mut node) = setup();
        let nonce3 = [3u8; 32];
        let req =
            attserver.build_measure_request(Vid(1), SecurityProperty::StartupIntegrity, nonce3);
        let resp: crate::messages::MeasureResponse =
            node.attest(req.vid, req.spec, req.nonce3).unwrap().into();
        attserver
            .validate_response(&resp, Vid(1), req.spec, nonce3)
            .unwrap();
        let status =
            attserver.interpret_response(SecurityProperty::StartupIntegrity, &resp, Image::Cirros);
        assert!(status.is_healthy());
    }

    #[test]
    fn tampered_measurement_fails_validation() {
        let (mut attserver, mut node) = setup();
        let nonce3 = [3u8; 32];
        let req =
            attserver.build_measure_request(Vid(1), SecurityProperty::StartupIntegrity, nonce3);
        let mut resp: crate::messages::MeasureResponse =
            node.attest(req.vid, req.spec, req.nonce3).unwrap().into();
        // Forge the measurement after quoting.
        resp.measurement = crate::measurements::Measurement::BootIntegrity {
            platform_pcr: [0; 32],
            image_hash: [0; 32],
        };
        let err = attserver
            .validate_response(&resp, Vid(1), req.spec, nonce3)
            .unwrap_err();
        assert!(matches!(err, CloudError::ProtocolFailure { .. }));
    }

    #[test]
    fn replayed_nonce_fails_validation() {
        let (mut attserver, mut node) = setup();
        let req =
            attserver.build_measure_request(Vid(1), SecurityProperty::StartupIntegrity, [3u8; 32]);
        let resp: crate::messages::MeasureResponse =
            node.attest(req.vid, req.spec, req.nonce3).unwrap().into();
        let err = attserver
            .validate_response(&resp, Vid(1), req.spec, [4u8; 32])
            .unwrap_err();
        let CloudError::ProtocolFailure { reason } = err else {
            panic!("wrong error");
        };
        assert!(reason.contains("N3"));
    }

    #[test]
    fn unregistered_server_fails_validation() {
        let mut rng = Drbg::from_seed(42);
        let mut attserver = AttestationServer::new(&mut rng);
        let refs = ReferenceDb::new();
        let mut node = CloudServerNode::boot(
            ServerId(5),
            1,
            SchedParams::default(),
            Drbg::from_seed(43),
            refs.platform_components(),
            &[],
        );
        node.launch_vm(
            Vid(1),
            Image::Cirros,
            Image::Cirros.pristine_bytes(),
            vec![Box::new(IdleDriver)],
            256,
        );
        let resp: crate::messages::MeasureResponse = node
            .attest(Vid(1), MeasurementSpec::BootIntegrity, [0u8; 32])
            .unwrap()
            .into();
        let err = attserver
            .validate_response(&resp, Vid(1), MeasurementSpec::BootIntegrity, [0u8; 32])
            .unwrap_err();
        let CloudError::ProtocolFailure { reason } = err else {
            panic!("wrong error");
        };
        assert!(reason.contains("certification"));
    }

    #[test]
    fn report_certification_roundtrip() {
        let mut rng = Drbg::from_seed(44);
        let attserver = AttestationServer::new(&mut rng);
        let msg = attserver.certify_report(
            Vid(9),
            ServerId(1),
            SecurityProperty::RuntimeIntegrity,
            HealthStatus::Healthy,
            [8u8; 32],
        );
        AttestationServer::verify_report_msg(&msg, &attserver.identity_key(), [8u8; 32]).unwrap();
        // Tampering with the status breaks the quote.
        let mut forged = msg.clone();
        forged.status = HealthStatus::Compromised {
            reason: "flip".into(),
        };
        assert!(AttestationServer::verify_report_msg(
            &forged,
            &attserver.identity_key(),
            [8u8; 32]
        )
        .is_err());
        // Wrong nonce is a replay.
        assert!(
            AttestationServer::verify_report_msg(&msg, &attserver.identity_key(), [9u8; 32])
                .is_err()
        );
    }
    /// Builds `n` independent valid measurement responses from the
    /// setup node (fresh nonce per item, fresh AVK per attest).
    fn batch_fixture(
        attserver: &mut AttestationServer,
        node: &mut CloudServerNode,
        n: usize,
    ) -> Vec<(crate::messages::MeasureResponse, MeasurementSpec, [u8; 32])> {
        (0..n)
            .map(|i| {
                let nonce3 = [i as u8 + 1; 32];
                let req = attserver.build_measure_request(
                    Vid(1),
                    SecurityProperty::StartupIntegrity,
                    nonce3,
                );
                let resp: crate::messages::MeasureResponse =
                    node.attest(req.vid, req.spec, req.nonce3).unwrap().into();
                (resp, req.spec, nonce3)
            })
            .collect()
    }

    #[test]
    fn batch_verdicts_match_serial_and_isolate_a_forged_quote() {
        let (mut attserver, mut node) = setup();
        let mut fixture = batch_fixture(&mut attserver, &mut node, 4);
        // Forge item 2's quote signature. The digest still matches (the
        // cheap per-item check passes), so rejection can only come from
        // the Schnorr layer: the combined batch equation fails and the
        // serial fallback pins the failure on this item alone.
        {
            let sig = &mut fixture[2].0.quote.signature;
            let mut s = sig.s.to_be_bytes();
            s[31] ^= 1;
            sig.s = monatt_crypto::bigint::U256::from_be_bytes(&s);
        }
        let items: Vec<BatchValidationItem<'_>> = fixture
            .iter()
            .map(|(resp, spec, nonce3)| BatchValidationItem {
                response: resp,
                expected_vid: Vid(1),
                expected_spec: *spec,
                expected_nonce3: *nonce3,
            })
            .collect();
        let mut scratch = EncodeScratch::new();
        let batch = attserver.validate_response_batch(&items, &mut scratch);
        for (i, (resp, spec, nonce3)) in fixture.iter().enumerate() {
            let serial = attserver.validate_response(resp, Vid(1), *spec, *nonce3);
            match (&batch[i], &serial) {
                (Ok(()), Ok(())) => assert_ne!(i, 2, "forged item must fail"),
                (Err(b), Err(s)) => {
                    assert_eq!(i, 2, "only the forged item may fail");
                    assert_eq!(b.to_string(), s.to_string(), "error strings must match");
                    assert!(b.to_string().contains("quote Q3"), "{b}");
                }
                (b, s) => panic!("verdict diverged at {i}: batch {b:?} vs serial {s:?}"),
            }
        }
    }

    #[test]
    fn singleton_batch_matches_serial_exactly() {
        let (mut attserver, mut node) = setup();
        let fixture = batch_fixture(&mut attserver, &mut node, 1);
        let (resp, spec, nonce3) = &fixture[0];
        let items = [BatchValidationItem {
            response: resp,
            expected_vid: Vid(1),
            expected_spec: *spec,
            expected_nonce3: *nonce3,
        }];
        let mut scratch = EncodeScratch::new();
        assert!(attserver.validate_response_batch(&items, &mut scratch)[0].is_ok());
        attserver
            .validate_response(resp, Vid(1), *spec, *nonce3)
            .unwrap();
        // And a cheap-check failure (wrong nonce echo) short-circuits
        // before any Schnorr work, with the serial error string.
        let items = [BatchValidationItem {
            response: resp,
            expected_vid: Vid(1),
            expected_spec: *spec,
            expected_nonce3: [0xaa; 32],
        }];
        let err = attserver.validate_response_batch(&items, &mut scratch)[0]
            .as_ref()
            .unwrap_err()
            .to_string();
        assert!(err.contains("N3"), "{err}");
    }
}
