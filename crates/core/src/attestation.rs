//! The Attestation Server (Section 3.2.3): the attestation requester and
//! appraiser. Holds the oat database (reference values, server registry),
//! the Property Interpretation Module, the Property Certification Module,
//! and works with the privacy CA to authenticate cloud servers
//! anonymously.

use crate::error::CloudError;
use crate::interpret::{interpret, property_to_spec, ReferenceDb};
use crate::measurements::MeasurementSpec;
use crate::messages::{AttestationReportMsg, MeasureRequest, MeasureResponse};
use crate::pca::PrivacyCa;
use crate::types::{HealthStatus, Image, SecurityProperty, ServerId, Vid};
use monatt_crypto::drbg::Drbg;
use monatt_crypto::schnorr::{SigningKey, VerifyingKey};
use monatt_net::wire::EncodeScratch;
use monatt_tpm::quote::Quote;

/// The Attestation Server.
pub struct AttestationServer {
    identity: SigningKey,
    pca: PrivacyCa,
    references: ReferenceDb,
}

impl std::fmt::Debug for AttestationServer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("AttestationServer").finish_non_exhaustive()
    }
}

impl AttestationServer {
    /// Creates the Attestation Server with its own identity key and an
    /// embedded privacy CA.
    pub fn new(rng: &mut Drbg) -> Self {
        AttestationServer {
            identity: SigningKey::generate(rng),
            pca: PrivacyCa::new(rng),
            references: ReferenceDb::new(),
        }
    }

    /// The server's public identity key (VKa).
    pub fn identity_key(&self) -> VerifyingKey {
        self.identity.verifying_key()
    }

    /// Registers a cloud server's identity key with the pCA (deployment
    /// time).
    pub fn register_cloud_server(&mut self, identity: VerifyingKey) {
        self.pca.register_server(identity);
    }

    /// The reference database used by the interpretation module.
    pub fn references(&self) -> &ReferenceDb {
        &self.references
    }

    /// Builds the measurement request for a property (the P → rM mapping).
    pub fn build_measure_request(
        &self,
        vid: Vid,
        property: SecurityProperty,
        nonce3: [u8; 32],
    ) -> MeasureRequest {
        MeasureRequest {
            vid,
            spec: property_to_spec(property),
            nonce3,
        }
    }

    /// Validates a cloud server's response: certifies the session key via
    /// the pCA, then checks the quote digest and signature and the nonce
    /// and vid echoes.
    ///
    /// # Errors
    ///
    /// [`CloudError::ProtocolFailure`] naming the failed check.
    pub fn validate_response(
        &self,
        response: &MeasureResponse,
        expected_vid: Vid,
        expected_spec: MeasurementSpec,
        expected_nonce3: [u8; 32],
    ) -> Result<(), CloudError> {
        self.validate_response_with(
            response,
            expected_vid,
            expected_spec,
            expected_nonce3,
            &mut EncodeScratch::new(),
        )
    }

    /// [`Self::validate_response`] with a caller-provided encode scratch,
    /// so the warm attestation path rebuilds the quote fields without
    /// allocating.
    ///
    /// # Errors
    ///
    /// [`CloudError::ProtocolFailure`] naming the failed check.
    pub fn validate_response_with(
        &self,
        response: &MeasureResponse,
        expected_vid: Vid,
        expected_spec: MeasurementSpec,
        expected_nonce3: [u8; 32],
        scratch: &mut EncodeScratch,
    ) -> Result<(), CloudError> {
        if response.vid != expected_vid {
            return Err(CloudError::ProtocolFailure {
                reason: format!(
                    "vid mismatch: expected {expected_vid}, got {}",
                    response.vid
                ),
            });
        }
        if response.spec != expected_spec {
            return Err(CloudError::ProtocolFailure {
                reason: "measurement spec mismatch".into(),
            });
        }
        if response.nonce3 != expected_nonce3 {
            return Err(CloudError::ProtocolFailure {
                reason: "nonce N3 mismatch (possible replay)".into(),
            });
        }
        let cert =
            self.pca
                .certify(&response.cert_request)
                .map_err(|e| CloudError::ProtocolFailure {
                    reason: format!("attestation key certification failed: {e}"),
                })?;
        let vid_bytes = response.vid.0.to_be_bytes();
        let (spec_bytes, meas_bytes) = scratch.encode_pair(&response.spec, &response.measurement);
        response
            .quote
            .verify(
                &cert.attestation_key,
                &[&vid_bytes, spec_bytes, meas_bytes, &response.nonce3],
            )
            .map_err(|e| CloudError::ProtocolFailure {
                reason: format!("quote Q3 verification failed: {e}"),
            })
    }

    /// Runs the Property Interpretation Module on a validated response.
    pub fn interpret_response(
        &self,
        property: SecurityProperty,
        response: &MeasureResponse,
        expected_image: Image,
    ) -> HealthStatus {
        interpret(
            property,
            &response.measurement,
            expected_image,
            &self.references,
        )
    }

    /// The Property Certification Module: packages and signs the report
    /// for the controller (message 5, quote Q2 under SKa).
    pub fn certify_report(
        &self,
        vid: Vid,
        server: ServerId,
        property: SecurityProperty,
        status: HealthStatus,
        nonce2: [u8; 32],
    ) -> AttestationReportMsg {
        self.certify_report_with(
            vid,
            server,
            property,
            status,
            nonce2,
            &mut EncodeScratch::new(),
        )
    }

    /// [`Self::certify_report`] with a caller-provided encode scratch.
    pub fn certify_report_with(
        &self,
        vid: Vid,
        server: ServerId,
        property: SecurityProperty,
        status: HealthStatus,
        nonce2: [u8; 32],
        scratch: &mut EncodeScratch,
    ) -> AttestationReportMsg {
        let vid_bytes = vid.0.to_be_bytes();
        let server_bytes = server.0.to_be_bytes();
        let (prop_bytes, status_bytes) = scratch.encode_pair(&property, &status);
        let quote = Quote::create(
            &self.identity,
            &[&vid_bytes, &server_bytes, prop_bytes, status_bytes, &nonce2],
        );
        AttestationReportMsg {
            vid,
            server,
            property,
            status,
            nonce2,
            quote,
        }
    }

    /// Verifies a message-5 report (used by the controller).
    ///
    /// # Errors
    ///
    /// [`CloudError::ProtocolFailure`] if the quote or nonce fails.
    pub fn verify_report_msg(
        msg: &AttestationReportMsg,
        attserver_key: &VerifyingKey,
        expected_nonce2: [u8; 32],
    ) -> Result<(), CloudError> {
        Self::verify_report_msg_with(
            msg,
            attserver_key,
            expected_nonce2,
            &mut EncodeScratch::new(),
        )
    }

    /// [`Self::verify_report_msg`] with a caller-provided encode scratch.
    ///
    /// # Errors
    ///
    /// [`CloudError::ProtocolFailure`] if the quote or nonce fails.
    pub fn verify_report_msg_with(
        msg: &AttestationReportMsg,
        attserver_key: &VerifyingKey,
        expected_nonce2: [u8; 32],
        scratch: &mut EncodeScratch,
    ) -> Result<(), CloudError> {
        if msg.nonce2 != expected_nonce2 {
            return Err(CloudError::ProtocolFailure {
                reason: "nonce N2 mismatch (possible replay)".into(),
            });
        }
        let vid_bytes = msg.vid.0.to_be_bytes();
        let server_bytes = msg.server.0.to_be_bytes();
        let (prop_bytes, status_bytes) = scratch.encode_pair(&msg.property, &msg.status);
        msg.quote
            .verify(
                attserver_key,
                &[
                    &vid_bytes,
                    &server_bytes,
                    prop_bytes,
                    status_bytes,
                    &msg.nonce2,
                ],
            )
            .map_err(|e| CloudError::ProtocolFailure {
                reason: format!("quote Q2 verification failed: {e}"),
            })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::server::CloudServerNode;
    use monatt_hypervisor::driver::IdleDriver;
    use monatt_hypervisor::scheduler::SchedParams;

    fn setup() -> (AttestationServer, CloudServerNode) {
        let mut rng = Drbg::from_seed(40);
        let mut attserver = AttestationServer::new(&mut rng);
        let refs = ReferenceDb::new();
        let mut node = CloudServerNode::boot(
            ServerId(0),
            1,
            SchedParams::default(),
            Drbg::from_seed(41),
            refs.platform_components(),
            &[SecurityProperty::StartupIntegrity],
        );
        attserver.register_cloud_server(node.identity_key());
        node.launch_vm(
            Vid(1),
            Image::Cirros,
            Image::Cirros.pristine_bytes(),
            vec![Box::new(IdleDriver)],
            256,
        );
        (attserver, node)
    }

    #[test]
    fn end_to_end_measure_validate_interpret() {
        let (attserver, mut node) = setup();
        let nonce3 = [3u8; 32];
        let req =
            attserver.build_measure_request(Vid(1), SecurityProperty::StartupIntegrity, nonce3);
        let resp: crate::messages::MeasureResponse =
            node.attest(req.vid, req.spec, req.nonce3).unwrap().into();
        attserver
            .validate_response(&resp, Vid(1), req.spec, nonce3)
            .unwrap();
        let status =
            attserver.interpret_response(SecurityProperty::StartupIntegrity, &resp, Image::Cirros);
        assert!(status.is_healthy());
    }

    #[test]
    fn tampered_measurement_fails_validation() {
        let (attserver, mut node) = setup();
        let nonce3 = [3u8; 32];
        let req =
            attserver.build_measure_request(Vid(1), SecurityProperty::StartupIntegrity, nonce3);
        let mut resp: crate::messages::MeasureResponse =
            node.attest(req.vid, req.spec, req.nonce3).unwrap().into();
        // Forge the measurement after quoting.
        resp.measurement = crate::measurements::Measurement::BootIntegrity {
            platform_pcr: [0; 32],
            image_hash: [0; 32],
        };
        let err = attserver
            .validate_response(&resp, Vid(1), req.spec, nonce3)
            .unwrap_err();
        assert!(matches!(err, CloudError::ProtocolFailure { .. }));
    }

    #[test]
    fn replayed_nonce_fails_validation() {
        let (attserver, mut node) = setup();
        let req =
            attserver.build_measure_request(Vid(1), SecurityProperty::StartupIntegrity, [3u8; 32]);
        let resp: crate::messages::MeasureResponse =
            node.attest(req.vid, req.spec, req.nonce3).unwrap().into();
        let err = attserver
            .validate_response(&resp, Vid(1), req.spec, [4u8; 32])
            .unwrap_err();
        let CloudError::ProtocolFailure { reason } = err else {
            panic!("wrong error");
        };
        assert!(reason.contains("N3"));
    }

    #[test]
    fn unregistered_server_fails_validation() {
        let mut rng = Drbg::from_seed(42);
        let attserver = AttestationServer::new(&mut rng);
        let refs = ReferenceDb::new();
        let mut node = CloudServerNode::boot(
            ServerId(5),
            1,
            SchedParams::default(),
            Drbg::from_seed(43),
            refs.platform_components(),
            &[],
        );
        node.launch_vm(
            Vid(1),
            Image::Cirros,
            Image::Cirros.pristine_bytes(),
            vec![Box::new(IdleDriver)],
            256,
        );
        let resp: crate::messages::MeasureResponse = node
            .attest(Vid(1), MeasurementSpec::BootIntegrity, [0u8; 32])
            .unwrap()
            .into();
        let err = attserver
            .validate_response(&resp, Vid(1), MeasurementSpec::BootIntegrity, [0u8; 32])
            .unwrap_err();
        let CloudError::ProtocolFailure { reason } = err else {
            panic!("wrong error");
        };
        assert!(reason.contains("certification"));
    }

    #[test]
    fn report_certification_roundtrip() {
        let mut rng = Drbg::from_seed(44);
        let attserver = AttestationServer::new(&mut rng);
        let msg = attserver.certify_report(
            Vid(9),
            ServerId(1),
            SecurityProperty::RuntimeIntegrity,
            HealthStatus::Healthy,
            [8u8; 32],
        );
        AttestationServer::verify_report_msg(&msg, &attserver.identity_key(), [8u8; 32]).unwrap();
        // Tampering with the status breaks the quote.
        let mut forged = msg.clone();
        forged.status = HealthStatus::Compromised {
            reason: "flip".into(),
        };
        assert!(AttestationServer::verify_report_msg(
            &forged,
            &attserver.identity_key(),
            [8u8; 32]
        )
        .is_err());
        // Wrong nonce is a replay.
        assert!(
            AttestationServer::verify_report_msg(&msg, &attserver.identity_key(), [9u8; 32])
                .is_err()
        );
    }
}
