//! Control-plane topology: sharded Cloud Controllers and an
//! Attestation-Server replica pool.
//!
//! CloudMonatt's Figure 2 concentrates the trust pipeline in one Cloud
//! Controller and one Attestation Server; this module describes the
//! redundancy layer that turns a control-plane crash into a latency
//! blip instead of an outage. It is pure *topology* — who owns which
//! VM, which replica serves which session — and deliberately knows
//! nothing about the data-plane latency model, channels, or caches:
//!
//! * **Controller sharding.** VM records, subscriptions and placement
//!   decisions are routed to one of `K` controller instances by a
//!   stable hash of the [`Vid`]. Every shard has a *home* instance
//!   (`shard == instance index`); when the home is down, ownership
//!   moves deterministically to the next live instance on the ring
//!   (`home, home+1, …` mod `K`). Ownership is a pure function of the
//!   up-set, so there is no adoption state to drift: recomputing after
//!   every transition *is* the failover, and "every shard owned by
//!   exactly one live instance" holds by construction whenever any
//!   instance is live.
//! * **AS replica pool.** Each session has a preferred replica (again a
//!   stable `Vid` hash, salted so controller and AS assignments are
//!   independent); a crashed replica reroutes sessions to the next live
//!   replica at admission time. Replicas are *fully independent*
//!   appraisers — each has its own signing identity, its own privacy-CA
//!   certification chain and its own evidence/AVK caches (warmed
//!   separately), so a replica crash invalidates only that replica's
//!   state.
//!
//! Routing decisions are taken once, at session admission, and pinned
//! in the session's [`RouteTag`]: an instance that dies mid-session
//! fails those sessions fast (they re-enter through the admission
//! hysteresis gate and are re-routed), it never migrates live protocol
//! state.
//!
//! The K=1/N=1 topology is *dormant*: every route is the zero tag, no
//! extra key material or channels exist, and the wire format is
//! byte-identical to the unreplicated cloud (pinned by the golden
//! trace).

use crate::types::{NodeId, Vid};

/// Hash salt separating the AS-replica assignment from the controller
/// shard assignment, so the two ring positions of a VM are independent.
const REPLICA_SALT: u64 = 0x5EED_A5A5_0F0F_3C3C;

/// SplitMix64 finalizer — a stable, well-mixed `Vid → u64` hash. The
/// shard map must never depend on `HashMap` iteration order or other
/// ambient state, so the hash is spelled out here.
fn splitmix64(seed: u64) -> u64 {
    let mut x = seed.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// The [`NodeId`] of controller instance `instance`. Instance 0 is the
/// legacy [`NodeId::Controller`]; standbys get
/// [`NodeId::ControllerReplica`].
pub fn controller_node(instance: u32) -> NodeId {
    if instance == 0 {
        NodeId::Controller
    } else {
        NodeId::ControllerReplica(instance)
    }
}

/// The [`NodeId`] of AS replica `replica`. Replica 0 is the legacy
/// [`NodeId::AttestationServer`]; standbys get [`NodeId::AsReplica`].
pub fn as_node(replica: u32) -> NodeId {
    if replica == 0 {
        NodeId::AttestationServer
    } else {
        NodeId::AsReplica(replica)
    }
}

/// The controller-instance index of `node`, if it is a controller.
pub fn controller_instance(node: NodeId) -> Option<u32> {
    match node {
        NodeId::Controller => Some(0),
        NodeId::ControllerReplica(i) => Some(i),
        _ => None,
    }
}

/// The AS-replica index of `node`, if it is an Attestation Server.
pub fn as_replica_index(node: NodeId) -> Option<u32> {
    match node {
        NodeId::AttestationServer => Some(0),
        NodeId::AsReplica(r) => Some(r),
        _ => None,
    }
}

/// The customer's secure-channel peer name. The customer endpoint is
/// assumed reliable (it is outside the provider), so it has no
/// [`NodeId`]; this constant is the single source of its name.
pub const CUSTOMER_ENDPOINT: &str = "customer";

/// Where one session's control-plane hops go: the shard its `Vid`
/// hashes to, the controller instance that currently owns that shard,
/// and the AS replica appraising it. Pinned into the session at
/// admission and stamped onto every record when the topology is
/// non-dormant (see `messages.rs`), so a misrouted record is detected
/// rather than silently served by the wrong instance.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct RouteTag {
    /// The controller shard `hash(vid) % K`.
    pub shard: u32,
    /// The controller instance owning `shard` at admission time.
    pub controller: u32,
    /// The AS replica serving messages 2–5 of this session.
    pub replica: u32,
}

/// Failover observability: how often ownership moved and how many
/// sessions were rerouted. All counters are cumulative over the run.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ControlPlaneStats {
    /// Controller crashes that moved at least one owned shard to a
    /// standby.
    pub failovers: u64,
    /// Shards adopted by a standby instance after a controller crash.
    pub shards_adopted: u64,
    /// Shards whose home (or a nearer ring instance) took ownership
    /// back after a controller recovery.
    pub shards_reclaimed: u64,
    /// Sessions admitted against a non-preferred AS replica because the
    /// preferred one was down.
    pub as_reroutes: u64,
    /// Sessions admitted against a standby controller instance because
    /// their shard's home instance was down.
    pub failover_sessions: u64,
}

/// The replicated control-plane topology: `K` controller instances,
/// `N` AS replicas, and the live/down health of each. See the module
/// docs for the ownership and routing rules.
#[derive(Clone, Debug)]
pub struct ControlPlaneTopology {
    shards: u32,
    replicas: u32,
    controller_up: Vec<bool>,
    replica_up: Vec<bool>,
    /// Current owner of each shard (`None` iff no controller is live).
    owner: Vec<Option<u32>>,
    stats: ControlPlaneStats,
}

impl ControlPlaneTopology {
    /// A topology with `controllers` sharded controller instances and
    /// an AS pool of `replicas` (both clamped to ≥ 1). Everything
    /// starts live; each shard starts at its home instance.
    pub fn new(controllers: u32, replicas: u32) -> Self {
        let shards = controllers.max(1);
        let replicas = replicas.max(1);
        ControlPlaneTopology {
            shards,
            replicas,
            controller_up: vec![true; shards as usize],
            replica_up: vec![true; replicas as usize],
            owner: (0..shards).map(Some).collect(),
            stats: ControlPlaneStats::default(),
        }
    }

    /// Number of controller instances (== number of shards), `K`.
    pub fn controllers(&self) -> u32 {
        self.shards
    }

    /// Number of AS replicas, `N`.
    pub fn replicas(&self) -> u32 {
        self.replicas
    }

    /// True for the unreplicated K=1/N=1 topology: no extra key
    /// material, no routing metadata on the wire, byte-identical to the
    /// pre-replication cloud.
    pub fn is_dormant(&self) -> bool {
        self.shards == 1 && self.replicas == 1
    }

    /// Cumulative failover/reroute counters.
    pub fn stats(&self) -> ControlPlaneStats {
        self.stats
    }

    /// The controller shard `vid` hashes to.
    pub fn shard_of(&self, vid: Vid) -> u32 {
        (splitmix64(vid.0) % u64::from(self.shards)) as u32
    }

    /// The AS replica `vid` prefers when all replicas are live.
    pub fn preferred_replica(&self, vid: Vid) -> u32 {
        (splitmix64(vid.0 ^ REPLICA_SALT) % u64::from(self.replicas)) as u32
    }

    /// The live owner of `shard`: the first live instance on the ring
    /// starting at the shard's home. `None` iff every controller
    /// instance is down.
    pub fn owner_of_shard(&self, shard: u32) -> Option<u32> {
        self.owner.get(shard as usize).copied().flatten()
    }

    /// Whether controller instance `instance` is currently live.
    pub fn controller_is_live(&self, instance: u32) -> bool {
        self.controller_up
            .get(instance as usize)
            .copied()
            .unwrap_or(false)
    }

    /// Whether AS replica `replica` is currently live.
    pub fn replica_is_live(&self, replica: u32) -> bool {
        self.replica_up
            .get(replica as usize)
            .copied()
            .unwrap_or(false)
    }

    /// Every control-plane node of this topology, controllers first —
    /// the set the [`crate::OutageModel`] churns when control-plane
    /// MTBF is configured.
    pub fn control_nodes(&self) -> Vec<NodeId> {
        (0..self.shards)
            .map(controller_node)
            .chain((0..self.replicas).map(as_node))
            .collect()
    }

    /// Routes one session at admission time. Infallible by design:
    /// when every instance (or replica) is down the route falls back
    /// to the *home* node, and the session fail-fasts against it with
    /// the usual `NodeDown` error — exactly the unreplicated behavior.
    pub fn route_for(&mut self, vid: Vid) -> RouteTag {
        let shard = self.shard_of(vid);
        let controller = match self.owner_of_shard(shard) {
            Some(instance) => {
                if instance != shard {
                    self.stats.failover_sessions += 1;
                }
                instance
            }
            None => shard,
        };
        let preferred = self.preferred_replica(vid);
        let replica = match self.live_replica_from(preferred) {
            Some(r) => {
                if r != preferred {
                    self.stats.as_reroutes += 1;
                }
                r
            }
            None => preferred,
        };
        RouteTag {
            shard,
            controller,
            replica,
        }
    }

    /// The replica a session for `vid` would be served by right now:
    /// the preferred replica, or the next live one on the ring when
    /// the preferred is down (falling back to the preferred — and its
    /// `NodeDown` fail-fast — when every replica is down). Pure;
    /// reroute *counting* happens only at admission in
    /// [`ControlPlaneTopology::route_for`].
    pub fn serving_replica(&self, vid: Vid) -> u32 {
        let preferred = self.preferred_replica(vid);
        self.live_replica_from(preferred).unwrap_or(preferred)
    }

    /// First live replica on the ring starting at `preferred`.
    fn live_replica_from(&self, preferred: u32) -> Option<u32> {
        (0..self.replicas)
            .map(|step| (preferred + step) % self.replicas.max(1))
            .find(|&r| self.replica_is_live(r))
    }

    /// First live controller instance on the ring starting at `home`.
    fn ring_owner(&self, home: u32) -> Option<u32> {
        (0..self.shards)
            .map(|step| (home + step) % self.shards.max(1))
            .find(|&i| self.controller_is_live(i))
    }

    /// Recomputes every shard's owner from the up-set; returns how many
    /// shards changed hands.
    fn recompute_owners(&mut self) -> u64 {
        let mut moved = 0u64;
        for shard in 0..self.shards {
            let new = self.ring_owner(shard);
            if let Some(slot) = self.owner.get_mut(shard as usize) {
                if *slot != new {
                    *slot = new;
                    moved += 1;
                }
            }
        }
        moved
    }

    /// Records a node crash. Server crashes are not topology events and
    /// are ignored; a controller crash triggers the deterministic
    /// failover (standbys adopt the dead instance's shards), an AS
    /// crash gates the replica out of selection.
    pub fn on_crash(&mut self, node: NodeId) {
        if let Some(i) = controller_instance(node) {
            if let Some(slot) = self.controller_up.get_mut(i as usize) {
                *slot = false;
            }
            let moved = self.recompute_owners();
            if moved > 0 {
                self.stats.failovers += 1;
                self.stats.shards_adopted += moved;
            }
        } else if let Some(r) = as_replica_index(node) {
            if let Some(slot) = self.replica_up.get_mut(r as usize) {
                *slot = false;
            }
        }
    }

    /// Records a node recovery: a recovered controller reclaims the
    /// shards it is nearest home for; a recovered AS replica re-enters
    /// selection (with cold caches — warming is the replica's problem,
    /// not the topology's).
    pub fn on_recover(&mut self, node: NodeId) {
        if let Some(i) = controller_instance(node) {
            if let Some(slot) = self.controller_up.get_mut(i as usize) {
                *slot = true;
            }
            self.stats.shards_reclaimed += self.recompute_owners();
        } else if let Some(r) = as_replica_index(node) {
            if let Some(slot) = self.replica_up.get_mut(r as usize) {
                *slot = true;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dormant_topology_routes_everything_to_zero() {
        let mut t = ControlPlaneTopology::new(1, 1);
        assert!(t.is_dormant());
        for v in 0..64 {
            assert_eq!(t.route_for(Vid(v)), RouteTag::default());
        }
        assert_eq!(t.stats(), ControlPlaneStats::default());
    }

    #[test]
    fn shard_assignment_is_stable_and_spread() {
        let t = ControlPlaneTopology::new(4, 3);
        let mut seen_shards = [false; 4];
        let mut seen_replicas = [false; 3];
        for v in 0..256 {
            let s = t.shard_of(Vid(v));
            let r = t.preferred_replica(Vid(v));
            assert_eq!(s, t.shard_of(Vid(v)), "stable");
            if let Some(slot) = seen_shards.get_mut(s as usize) {
                *slot = true;
            }
            if let Some(slot) = seen_replicas.get_mut(r as usize) {
                *slot = true;
            }
        }
        assert!(seen_shards.iter().all(|&b| b), "all shards hit");
        assert!(seen_replicas.iter().all(|&b| b), "all replicas hit");
    }

    #[test]
    fn controller_crash_fails_over_on_the_ring_and_recovery_reclaims() {
        let mut t = ControlPlaneTopology::new(3, 1);
        assert_eq!(t.owner_of_shard(1), Some(1));
        t.on_crash(NodeId::ControllerReplica(1));
        assert_eq!(t.owner_of_shard(1), Some(2), "next live on the ring");
        assert_eq!(t.owner_of_shard(0), Some(0), "other shards untouched");
        assert_eq!(t.stats().failovers, 1);
        assert_eq!(t.stats().shards_adopted, 1);
        t.on_crash(NodeId::ControllerReplica(2));
        assert_eq!(t.owner_of_shard(1), Some(0), "wraps past two dead");
        assert_eq!(t.owner_of_shard(2), Some(0));
        t.on_recover(NodeId::ControllerReplica(1));
        assert_eq!(t.owner_of_shard(1), Some(1), "home reclaims");
        // Shard 2's home is still down; its ring scan (2 → 0 → 1) finds
        // instance 0 first, so recovery of 1 does not move it.
        assert_eq!(t.owner_of_shard(2), Some(0), "ring order is stable");
        assert_eq!(t.stats().shards_reclaimed, 1);
    }

    #[test]
    fn all_controllers_down_routes_to_home_for_fail_fast() {
        let mut t = ControlPlaneTopology::new(2, 1);
        t.on_crash(NodeId::Controller);
        t.on_crash(NodeId::ControllerReplica(1));
        let vid = Vid(7);
        let home = t.shard_of(vid);
        assert_eq!(t.owner_of_shard(home), None);
        assert_eq!(t.route_for(vid).controller, home);
    }

    #[test]
    fn replica_crash_reroutes_sessions_and_counts() {
        let mut t = ControlPlaneTopology::new(1, 2);
        let vid = (0..64)
            .map(Vid)
            .find(|&v| t.preferred_replica(v) == 1)
            .unwrap_or(Vid(0));
        t.on_crash(NodeId::AsReplica(1));
        let tag = t.route_for(vid);
        assert_eq!(tag.replica, 0, "rerouted to the live replica");
        assert_eq!(t.stats().as_reroutes, 1);
        t.on_recover(NodeId::AsReplica(1));
        assert_eq!(t.route_for(vid).replica, 1, "preference restored");
    }

    #[test]
    fn server_churn_is_not_a_topology_event() {
        let mut t = ControlPlaneTopology::new(2, 2);
        let before = t.clone();
        t.on_crash(NodeId::Server(crate::types::ServerId(3)));
        t.on_recover(NodeId::Server(crate::types::ServerId(3)));
        assert_eq!(t.owner_of_shard(0), before.owner_of_shard(0));
        assert_eq!(t.stats(), before.stats());
    }

    #[test]
    fn node_helpers_normalize_index_zero() {
        assert_eq!(controller_node(0), NodeId::Controller);
        assert_eq!(controller_node(2), NodeId::ControllerReplica(2));
        assert_eq!(as_node(0), NodeId::AttestationServer);
        assert_eq!(as_node(1), NodeId::AsReplica(1));
        assert_eq!(controller_instance(NodeId::Controller), Some(0));
        assert_eq!(as_replica_index(NodeId::AsReplica(4)), Some(4));
        assert_eq!(controller_instance(NodeId::AttestationServer), None);
    }

    #[test]
    fn control_nodes_enumerates_the_whole_plane() {
        let t = ControlPlaneTopology::new(2, 2);
        assert_eq!(
            t.control_nodes(),
            vec![
                NodeId::Controller,
                NodeId::ControllerReplica(1),
                NodeId::AttestationServer,
                NodeId::AsReplica(1),
            ]
        );
    }
}
