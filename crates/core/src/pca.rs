//! The privacy Certificate Authority (Section 3.2.3 / 3.4.2).
//!
//! Cloud servers register their long-term identity keys VKs at deployment
//! time. For each attestation session, a server submits its fresh public
//! attestation key AVKs signed by its identity key; the pCA verifies the
//! binding and issues a certificate for AVKs. The Attestation Server then
//! authenticates the quote *without learning which server produced it
//! from the key alone* — preserving the server anonymity that prevents
//! co-location probing (Section 3.4.2).

use monatt_crypto::drbg::Drbg;
use monatt_crypto::schnorr::{Signature, SigningKey, VerifyingKey};
use monatt_crypto::sha256::Sha256;
use monatt_tpm::module::CertificationRequest;
use std::collections::{BTreeMap, BTreeSet};

/// Domain-separation tag mixed into every certificate signature, so a pCA
/// signature over an attestation key can never be confused with any other
/// signature the same key makes (report quotes, handshake transcripts).
const CERT_DST: &[u8] = b"monatt/pca-avk-cert/v2";

/// Length of the certificate signing payload: tag, epoch, key.
const CERT_PAYLOAD_LEN: usize = 22 + 8 + 32;

/// A certificate for a session attestation key.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct AvkCertificate {
    /// The certified attestation key.
    pub attestation_key: VerifyingKey,
    /// The pCA key epoch the certificate was issued under. Certificates
    /// from earlier epochs are stale: the epoch bumps on channel re-key
    /// (node recovery), which is exactly when old bindings stop being
    /// trustworthy.
    pub epoch: u64,
    /// The pCA's signature over the tagged `(epoch, key)` payload.
    pub signature: Signature,
}

/// Errors from certification.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
#[non_exhaustive]
pub enum PcaError {
    /// The identity key is not registered with the pCA.
    UnregisteredServer,
    /// The identity signature over the attestation key is invalid.
    BadBinding,
}

impl std::fmt::Display for PcaError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PcaError::UnregisteredServer => write!(f, "server identity key not registered"),
            PcaError::BadBinding => write!(f, "identity signature over attestation key invalid"),
        }
    }
}

impl std::error::Error for PcaError {}

/// The privacy CA.
pub struct PrivacyCa {
    key: SigningKey,
    registered: BTreeSet<[u8; 32]>,
    /// Current key epoch; bumped on channel re-key, invalidating every
    /// certificate issued before the bump.
    epoch: u64,
    /// Whether the certified-AVK cache is on. Off by default: with fresh
    /// per-session attestation keys the cache can never hit, and its
    /// inserts would put allocations on the warm attestation path.
    cache_enabled: bool,
    /// Certified-AVK cache: request digest → certificate issued this
    /// epoch. A cloud server re-submitting an identical identity binding
    /// gets its certificate back without the pCA re-verifying the binding
    /// signature. Keyed by a hash of the *entire* request (identity key,
    /// attestation key, binding signature), so only byte-identical
    /// requests can hit. Cleared on epoch bump.
    cert_cache: BTreeMap<[u8; 32], AvkCertificate>,
    cache_hits: u64,
    cache_misses: u64,
}

impl std::fmt::Debug for PrivacyCa {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PrivacyCa")
            .field("registered", &self.registered.len())
            .field("epoch", &self.epoch)
            .finish_non_exhaustive()
    }
}

impl PrivacyCa {
    /// Creates a pCA with a fresh key pair.
    pub fn new(rng: &mut Drbg) -> Self {
        PrivacyCa {
            key: SigningKey::generate(rng),
            registered: BTreeSet::new(),
            epoch: 0,
            cache_enabled: false,
            cert_cache: BTreeMap::new(),
            cache_hits: 0,
            cache_misses: 0,
        }
    }

    /// Turns on the certified-AVK cache. Only worthwhile together with
    /// server-side attestation-key reuse — with fresh per-session keys
    /// every lookup misses.
    pub fn enable_cert_cache(&mut self) {
        self.cache_enabled = true;
    }

    /// The pCA's public key, distributed to verifiers.
    pub fn public_key(&self) -> VerifyingKey {
        self.key.verifying_key()
    }

    /// The current key epoch.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Advances to a new key epoch (called on channel re-key, e.g. after
    /// node recovery). Every previously issued certificate becomes stale
    /// and the certified-AVK cache is dropped with them.
    pub fn bump_epoch(&mut self) {
        self.epoch += 1;
        self.cert_cache.clear();
    }

    /// Certified-AVK cache hits and misses since construction.
    pub fn cache_stats(&self) -> (u64, u64) {
        (self.cache_hits, self.cache_misses)
    }

    /// Registers a cloud server's identity key at deployment time.
    pub fn register_server(&mut self, identity: VerifyingKey) {
        self.registered.insert(identity.to_bytes());
    }

    /// Certifies a session attestation key.
    ///
    /// A byte-identical request already certified this epoch is answered
    /// from the certified-AVK cache without re-verifying the identity
    /// binding.
    ///
    /// # Errors
    ///
    /// [`PcaError::UnregisteredServer`] if the identity key is unknown,
    /// [`PcaError::BadBinding`] if the identity signature is invalid.
    pub fn certify(&mut self, request: &CertificationRequest) -> Result<AvkCertificate, PcaError> {
        if !self.registered.contains(&request.identity_key.to_bytes()) {
            return Err(PcaError::UnregisteredServer);
        }
        if self.cache_enabled {
            if let Some(cert) = self.cert_cache.get(&Self::request_digest(request)) {
                self.cache_hits += 1;
                return Ok(cert.clone());
            }
            self.cache_misses += 1;
        }
        if !request.verify() {
            return Err(PcaError::BadBinding);
        }
        Ok(self.issue(request))
    }

    /// True when `identity` was registered at deployment time.
    pub(crate) fn is_registered(&self, identity: &VerifyingKey) -> bool {
        self.registered.contains(&identity.to_bytes())
    }

    /// Issues (and, when the cache is on, caches) a certificate for a
    /// request whose identity binding has already been verified — the
    /// batch-validation path checks bindings in bulk and then calls this
    /// per survivor.
    pub(crate) fn issue(&mut self, request: &CertificationRequest) -> AvkCertificate {
        let cert = AvkCertificate {
            attestation_key: request.attestation_key,
            epoch: self.epoch,
            signature: self.key.sign(&AvkCertificate::signed_payload(
                &request.attestation_key,
                self.epoch,
            )),
        };
        if self.cache_enabled {
            self.cert_cache
                .insert(Self::request_digest(request), cert.clone());
        }
        cert
    }

    /// Looks up a cached certificate for `request` without verifying
    /// anything; callers must have checked registration already. Returns
    /// `None` (and counts nothing) when the cache is off.
    pub(crate) fn cached(&mut self, request: &CertificationRequest) -> Option<AvkCertificate> {
        if !self.cache_enabled {
            return None;
        }
        let cert = self.cert_cache.get(&Self::request_digest(request)).cloned();
        match cert.is_some() {
            true => self.cache_hits += 1,
            false => self.cache_misses += 1,
        }
        cert
    }

    /// Hashes the full certification request for use as a cache key.
    pub(crate) fn request_digest(request: &CertificationRequest) -> [u8; 32] {
        let mut h = Sha256::new();
        h.update(&request.identity_key.to_bytes());
        h.update(&request.attestation_key.to_bytes());
        h.update(&request.identity_signature.to_bytes());
        h.finalize()
    }
}

impl AvkCertificate {
    /// The byte string a certificate signature covers: domain tag, issuing
    /// epoch, certified key. Binding the epoch means a certificate cannot
    /// outlive a channel re-key. Fixed-size so certificate issuance stays
    /// off the allocator (it sits on the warm attestation path).
    fn signed_payload(attestation_key: &VerifyingKey, epoch: u64) -> [u8; CERT_PAYLOAD_LEN] {
        let mut payload = [0u8; CERT_PAYLOAD_LEN];
        let (dst, rest) = payload.split_at_mut(CERT_DST.len());
        let (ep, key) = rest.split_at_mut(8);
        dst.copy_from_slice(CERT_DST);
        ep.copy_from_slice(&epoch.to_be_bytes());
        key.copy_from_slice(&attestation_key.to_bytes());
        payload
    }

    /// Verifies this certificate against the pCA's public key and its
    /// current epoch. A certificate issued under an earlier epoch fails
    /// even if its signature is intact: re-keying revoked it.
    pub fn verify(&self, pca_key: &VerifyingKey, current_epoch: u64) -> bool {
        self.epoch == current_epoch
            && pca_key
                .verify(
                    &Self::signed_payload(&self.attestation_key, self.epoch),
                    &self.signature,
                )
                .is_ok()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use monatt_tpm::module::TrustModule;

    #[test]
    fn registered_server_gets_certified() {
        let mut rng = Drbg::from_seed(30);
        let mut pca = PrivacyCa::new(&mut rng);
        let mut tm = TrustModule::provision(Drbg::from_seed(31));
        pca.register_server(tm.identity_key());
        let session = tm.begin_attestation();
        let cert = pca.certify(session.certification_request()).unwrap();
        assert!(cert.verify(&pca.public_key(), pca.epoch()));
        assert_eq!(cert.attestation_key, session.attestation_key());
    }

    #[test]
    fn identical_request_is_served_from_cache() {
        let mut rng = Drbg::from_seed(50);
        let mut pca = PrivacyCa::new(&mut rng);
        pca.enable_cert_cache();
        let mut tm = TrustModule::provision(Drbg::from_seed(51));
        pca.register_server(tm.identity_key());
        let session = tm.begin_attestation();
        let first = pca.certify(session.certification_request()).unwrap();
        let second = pca.certify(session.certification_request()).unwrap();
        assert_eq!(first, second);
        assert_eq!(pca.cache_stats(), (1, 1));
    }

    #[test]
    fn epoch_bump_invalidates_issued_certificates() {
        let mut rng = Drbg::from_seed(52);
        let mut pca = PrivacyCa::new(&mut rng);
        pca.enable_cert_cache();
        let mut tm = TrustModule::provision(Drbg::from_seed(53));
        pca.register_server(tm.identity_key());
        let session = tm.begin_attestation();
        let cert = pca.certify(session.certification_request()).unwrap();
        assert!(cert.verify(&pca.public_key(), pca.epoch()));
        pca.bump_epoch();
        // The old certificate is stale after re-keying even though its
        // signature bytes are intact.
        assert!(!cert.verify(&pca.public_key(), pca.epoch()));
        // The cache was dropped with the epoch: a re-certification is a
        // miss and yields a fresh, epoch-1 certificate.
        let fresh = pca.certify(session.certification_request()).unwrap();
        assert_eq!(fresh.epoch, 1);
        assert!(fresh.verify(&pca.public_key(), pca.epoch()));
        assert_ne!(cert.signature, fresh.signature);
    }

    #[test]
    fn cert_signature_is_domain_separated() {
        // The pCA signing the raw key bytes (the pre-DST payload) must not
        // produce a valid certificate signature.
        let mut rng = Drbg::from_seed(54);
        let mut pca = PrivacyCa::new(&mut rng);
        let mut tm = TrustModule::provision(Drbg::from_seed(55));
        pca.register_server(tm.identity_key());
        let session = tm.begin_attestation();
        let cert = pca.certify(session.certification_request()).unwrap();
        let untagged = pca.key.sign(&cert.attestation_key.to_bytes());
        let forged = AvkCertificate {
            attestation_key: cert.attestation_key,
            epoch: cert.epoch,
            signature: untagged,
        };
        assert!(!forged.verify(&pca.public_key(), pca.epoch()));
    }

    #[test]
    fn unregistered_server_rejected() {
        let mut rng = Drbg::from_seed(32);
        let mut pca = PrivacyCa::new(&mut rng);
        let mut tm = TrustModule::provision(Drbg::from_seed(33));
        let session = tm.begin_attestation();
        assert_eq!(
            pca.certify(session.certification_request()),
            Err(PcaError::UnregisteredServer)
        );
    }

    #[test]
    fn bad_binding_rejected() {
        let mut rng = Drbg::from_seed(34);
        let mut pca = PrivacyCa::new(&mut rng);
        let mut tm1 = TrustModule::provision(Drbg::from_seed(35));
        let mut tm2 = TrustModule::provision(Drbg::from_seed(36));
        pca.register_server(tm1.identity_key());
        let s1 = tm1.begin_attestation();
        let s2 = tm2.begin_attestation();
        // Splice: claim tm1's identity but present tm2's attestation key.
        let forged = CertificationRequest {
            attestation_key: s2.attestation_key(),
            identity_signature: s1.certification_request().identity_signature,
            identity_key: tm1.identity_key(),
        };
        assert_eq!(pca.certify(&forged), Err(PcaError::BadBinding));
    }

    #[test]
    fn forged_certificate_fails_verification() {
        let mut rng = Drbg::from_seed(37);
        let mut pca = PrivacyCa::new(&mut rng);
        let other_pca = PrivacyCa::new(&mut rng);
        let mut tm = TrustModule::provision(Drbg::from_seed(38));
        pca.register_server(tm.identity_key());
        let session = tm.begin_attestation();
        let cert = pca.certify(session.certification_request()).unwrap();
        assert!(!cert.verify(&other_pca.public_key(), other_pca.epoch()));
    }
}
