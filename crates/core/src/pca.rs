//! The privacy Certificate Authority (Section 3.2.3 / 3.4.2).
//!
//! Cloud servers register their long-term identity keys VKs at deployment
//! time. For each attestation session, a server submits its fresh public
//! attestation key AVKs signed by its identity key; the pCA verifies the
//! binding and issues a certificate for AVKs. The Attestation Server then
//! authenticates the quote *without learning which server produced it
//! from the key alone* — preserving the server anonymity that prevents
//! co-location probing (Section 3.4.2).

use monatt_crypto::drbg::Drbg;
use monatt_crypto::schnorr::{Signature, SigningKey, VerifyingKey};
use monatt_tpm::module::CertificationRequest;
use std::collections::BTreeSet;

/// A certificate for a session attestation key.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct AvkCertificate {
    /// The certified attestation key.
    pub attestation_key: VerifyingKey,
    /// The pCA's signature over the key.
    pub signature: Signature,
}

/// Errors from certification.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
#[non_exhaustive]
pub enum PcaError {
    /// The identity key is not registered with the pCA.
    UnregisteredServer,
    /// The identity signature over the attestation key is invalid.
    BadBinding,
}

impl std::fmt::Display for PcaError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PcaError::UnregisteredServer => write!(f, "server identity key not registered"),
            PcaError::BadBinding => write!(f, "identity signature over attestation key invalid"),
        }
    }
}

impl std::error::Error for PcaError {}

/// The privacy CA.
pub struct PrivacyCa {
    key: SigningKey,
    registered: BTreeSet<[u8; 32]>,
}

impl std::fmt::Debug for PrivacyCa {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PrivacyCa")
            .field("registered", &self.registered.len())
            .finish_non_exhaustive()
    }
}

impl PrivacyCa {
    /// Creates a pCA with a fresh key pair.
    pub fn new(rng: &mut Drbg) -> Self {
        PrivacyCa {
            key: SigningKey::generate(rng),
            registered: BTreeSet::new(),
        }
    }

    /// The pCA's public key, distributed to verifiers.
    pub fn public_key(&self) -> VerifyingKey {
        self.key.verifying_key()
    }

    /// Registers a cloud server's identity key at deployment time.
    pub fn register_server(&mut self, identity: VerifyingKey) {
        self.registered.insert(identity.to_bytes());
    }

    /// Certifies a session attestation key.
    ///
    /// # Errors
    ///
    /// [`PcaError::UnregisteredServer`] if the identity key is unknown,
    /// [`PcaError::BadBinding`] if the identity signature is invalid.
    pub fn certify(&self, request: &CertificationRequest) -> Result<AvkCertificate, PcaError> {
        if !self.registered.contains(&request.identity_key.to_bytes()) {
            return Err(PcaError::UnregisteredServer);
        }
        if !request.verify() {
            return Err(PcaError::BadBinding);
        }
        let signature = self.key.sign(&request.attestation_key.to_bytes());
        Ok(AvkCertificate {
            attestation_key: request.attestation_key,
            signature,
        })
    }
}

impl AvkCertificate {
    /// Verifies this certificate against the pCA's public key.
    pub fn verify(&self, pca_key: &VerifyingKey) -> bool {
        pca_key
            .verify(&self.attestation_key.to_bytes(), &self.signature)
            .is_ok()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use monatt_tpm::module::TrustModule;

    #[test]
    fn registered_server_gets_certified() {
        let mut rng = Drbg::from_seed(30);
        let mut pca = PrivacyCa::new(&mut rng);
        let mut tm = TrustModule::provision(Drbg::from_seed(31));
        pca.register_server(tm.identity_key());
        let session = tm.begin_attestation();
        let cert = pca.certify(session.certification_request()).unwrap();
        assert!(cert.verify(&pca.public_key()));
        assert_eq!(cert.attestation_key, session.attestation_key());
    }

    #[test]
    fn unregistered_server_rejected() {
        let mut rng = Drbg::from_seed(32);
        let pca = PrivacyCa::new(&mut rng);
        let mut tm = TrustModule::provision(Drbg::from_seed(33));
        let session = tm.begin_attestation();
        assert_eq!(
            pca.certify(session.certification_request()),
            Err(PcaError::UnregisteredServer)
        );
    }

    #[test]
    fn bad_binding_rejected() {
        let mut rng = Drbg::from_seed(34);
        let mut pca = PrivacyCa::new(&mut rng);
        let mut tm1 = TrustModule::provision(Drbg::from_seed(35));
        let mut tm2 = TrustModule::provision(Drbg::from_seed(36));
        pca.register_server(tm1.identity_key());
        let s1 = tm1.begin_attestation();
        let s2 = tm2.begin_attestation();
        // Splice: claim tm1's identity but present tm2's attestation key.
        let forged = CertificationRequest {
            attestation_key: s2.attestation_key(),
            identity_signature: s1.certification_request().identity_signature,
            identity_key: tm1.identity_key(),
        };
        assert_eq!(pca.certify(&forged), Err(PcaError::BadBinding));
    }

    #[test]
    fn forged_certificate_fails_verification() {
        let mut rng = Drbg::from_seed(37);
        let mut pca = PrivacyCa::new(&mut rng);
        let other_pca = PrivacyCa::new(&mut rng);
        let mut tm = TrustModule::provision(Drbg::from_seed(38));
        pca.register_server(tm.identity_key());
        let session = tm.begin_attestation();
        let cert = pca.certify(session.certification_request()).unwrap();
        assert!(!cert.verify(&other_pca.public_key()));
    }
}
