//! The latency model behind the management-plane timings of Figures 9-11.
//!
//! The paper measured these on a three-server OpenStack Havana testbed;
//! our simulator replaces the testbed with calibrated cost formulas. The
//! calibration targets the paper's *shapes*: launch stages of hundreds of
//! milliseconds to seconds with attestation ≈20 % of the total (Fig. 9),
//! and response times ordered Termination < Suspension < Migration with
//! migration dominated by memory copy over a 1 Gbps link (Fig. 11).

use crate::types::{Flavor, Image};
use monatt_crypto::drbg::Drbg;

/// Microseconds per millisecond.
const MS: u64 = 1_000;

/// Per-hop retransmission policy for the Figure-3 protocol: how many
/// delivery attempts each message gets and how long the sender backs off
/// between them. The paper's threat model gives the adversary "full
/// control of the network" (Section 3.3); real deployments additionally
/// lose messages benignly, so delivery failure is a protocol state to
/// recover from, not a fatal error.
///
/// Backoff is exponential with up to 50 % decorrelating jitter
/// (`backoff * 2^(attempt-1)` capped at `backoff_cap_us`), and all retry
/// time — timeouts plus backoff — is charged into the end-to-end latency
/// of Figures 9-11, so a lossy network visibly slows attestation instead
/// of silently failing it. With a clean network the policy adds zero
/// latency and draws no randomness, keeping fault-free runs bit-identical
/// to a fail-fast configuration.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Total delivery attempts per hop, including the first (1 =
    /// fail-fast, the pre-retransmit behaviour).
    pub max_attempts: u32,
    /// How long the sender waits before declaring a record lost.
    pub timeout_us: u64,
    /// First-retry backoff; doubles each further attempt.
    pub backoff_base_us: u64,
    /// Upper bound on a single backoff step (before jitter).
    pub backoff_cap_us: u64,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            max_attempts: 5,
            timeout_us: 2 * MS,
            backoff_base_us: 500,
            backoff_cap_us: 8 * MS,
        }
    }
}

impl RetryPolicy {
    /// The fail-fast policy: one attempt, no retransmission.
    pub fn disabled() -> Self {
        RetryPolicy {
            max_attempts: 1,
            ..Self::default()
        }
    }

    /// The backoff (plus jitter) charged before retry number `attempt`
    /// (1-based: the backoff taken after the `attempt`-th failed try).
    /// `attempt == 0` is treated as the first retry — the subtraction
    /// saturates instead of underflowing to a shift of 16 (which would
    /// silently charge the cap for what should be the cheapest step).
    pub fn backoff_us(&self, attempt: u32, rng: &mut Drbg) -> u64 {
        let exp = self
            .backoff_base_us
            .saturating_mul(1u64 << attempt.saturating_sub(1).min(16))
            .min(self.backoff_cap_us);
        exp + rng.next_u64_below(exp / 2 + 1)
    }
}

/// Cost parameters for cloud management operations.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct LatencyParams {
    /// Fixed scheduling cost (filter evaluation etc.).
    pub scheduling_base_us: u64,
    /// Additional scheduling cost per candidate server.
    pub scheduling_per_server_us: u64,
    /// Extra scheduling cost when the property filter consults the
    /// attestation database (CloudMonatt's addition).
    pub property_filter_us: u64,
    /// Network (port/DHCP) setup cost.
    pub networking_us: u64,
    /// Base block-device mapping cost.
    pub block_device_base_us: u64,
    /// Block-device cost per MB of image.
    pub block_device_per_mb_us: u64,
    /// Base spawning cost.
    pub spawn_base_us: u64,
    /// Spawning cost per MB of image.
    pub spawn_per_mb_us: u64,
    /// Spawning cost per vCPU of the flavor (device model setup).
    pub spawn_per_vcpu_us: u64,
    /// Hashing throughput for integrity measurement, MB per second.
    pub hash_mb_per_sec: u64,
    /// Cost of one signature (sign or verify) in the Trust Module or a
    /// server.
    pub signature_us: u64,
    /// Cost of generating a TPM-style quote in the Trust Module (key
    /// generation plus signing on a slow security processor).
    pub quote_generation_us: u64,
    /// Per-hop processing overhead in the attestation protocol.
    pub hop_processing_us: u64,
    /// Termination: base cost.
    pub terminate_base_us: u64,
    /// Termination: cost per GB of RAM to tear down.
    pub terminate_per_gb_us: u64,
    /// Suspension: base cost.
    pub suspend_base_us: u64,
    /// Suspension: state-save cost per GB of RAM.
    pub suspend_per_gb_us: u64,
    /// Migration: base cost (pre-copy setup + switchover).
    pub migrate_base_us: u64,
    /// Migration: memory-copy cost per GB of RAM (1 Gbps-ish effective).
    pub migrate_per_gb_us: u64,
}

impl Default for LatencyParams {
    fn default() -> Self {
        LatencyParams {
            scheduling_base_us: 120 * MS,
            scheduling_per_server_us: 8 * MS,
            property_filter_us: 60 * MS,
            networking_us: 700 * MS,
            block_device_base_us: 250 * MS,
            block_device_per_mb_us: 2 * MS,
            spawn_base_us: 800 * MS,
            spawn_per_mb_us: 4 * MS,
            spawn_per_vcpu_us: 150 * MS,
            hash_mb_per_sec: 400,
            signature_us: 15 * MS,
            quote_generation_us: 120 * MS,
            hop_processing_us: 40 * MS,
            terminate_base_us: 400 * MS,
            terminate_per_gb_us: 80 * MS,
            suspend_base_us: 500 * MS,
            suspend_per_gb_us: 450 * MS,
            migrate_base_us: 1_000 * MS,
            migrate_per_gb_us: 1_500 * MS,
        }
    }
}

impl LatencyParams {
    /// Scheduling-stage latency for a pool of `servers`, with or without
    /// the CloudMonatt property filter.
    pub fn scheduling_us(&self, servers: usize, with_property_filter: bool) -> u64 {
        self.scheduling_base_us
            + self.scheduling_per_server_us * servers as u64
            + if with_property_filter {
                self.property_filter_us
            } else {
                0
            }
    }

    /// Networking-stage latency.
    pub fn networking_us(&self) -> u64 {
        self.networking_us
    }

    /// Block-device-mapping-stage latency.
    pub fn block_device_us(&self, image: Image) -> u64 {
        self.block_device_base_us + self.block_device_per_mb_us * image.size_mb()
    }

    /// Spawning-stage latency.
    pub fn spawning_us(&self, image: Image, flavor: Flavor) -> u64 {
        self.spawn_base_us
            + self.spawn_per_mb_us * image.size_mb()
            + self.spawn_per_vcpu_us * flavor.vcpus() as u64
    }

    /// Time to hash `mb` megabytes in the integrity measurement unit.
    pub fn hash_us(&self, mb: u64) -> u64 {
        mb * 1_000_000 / self.hash_mb_per_sec
    }

    /// Post-arrival processing charge for message `n` (1–6) of the
    /// Figure-3 protocol. Every hop pays `hop_processing_us`; messages 4
    /// and 5 each add one signature (the server signing its response,
    /// the Attestation Server signing the property report) and message 6
    /// adds two (the controller signing quote Q1, the customer verifying
    /// it). The session state machine charges these between an arrival
    /// event and the next transmission, which keeps the end-to-end sum
    /// identical to the pre-event-loop inline model.
    pub fn post_hop_us(&self, message: u8) -> u64 {
        let signatures: u64 = match message {
            4 | 5 => 1,
            6 => 2,
            _ => 0,
        };
        self.hop_processing_us + signatures * self.signature_us
    }

    /// Measurement-and-quote charge once a measurement window closes:
    /// optional image hashing (boot integrity), quote generation, one
    /// signature by the Trust Module.
    pub fn measurement_us(&self, hashed_image_mb: Option<u64>) -> u64 {
        let hash = hashed_image_mb.map_or(0, |mb| self.hash_us(mb));
        hash + self.quote_generation_us + self.signature_us
    }

    /// Termination response latency.
    pub fn terminate_us(&self, flavor: Flavor) -> u64 {
        self.terminate_base_us + self.terminate_per_gb_us * flavor.memory_gb()
    }

    /// Suspension response latency.
    pub fn suspend_us(&self, flavor: Flavor) -> u64 {
        self.suspend_base_us + self.suspend_per_gb_us * flavor.memory_gb()
    }

    /// Migration response latency.
    pub fn migrate_us(&self, flavor: Flavor) -> u64 {
        self.migrate_base_us + self.migrate_per_gb_us * flavor.memory_gb()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn launch_stage_shapes_match_figure9() {
        let p = LatencyParams::default();
        // Stages are hundreds of ms to seconds.
        for image in Image::ALL {
            for flavor in Flavor::ALL {
                let total = p.scheduling_us(3, true)
                    + p.networking_us()
                    + p.block_device_us(image)
                    + p.spawning_us(image, flavor);
                assert!(
                    (1_500 * MS..7_000 * MS).contains(&total),
                    "{image}/{flavor}: {total}"
                );
            }
        }
        // Bigger images cost more.
        assert!(p.block_device_us(Image::Ubuntu) > p.block_device_us(Image::Cirros));
        assert!(
            p.spawning_us(Image::Ubuntu, Flavor::Large)
                > p.spawning_us(Image::Cirros, Flavor::Small)
        );
    }

    #[test]
    fn response_ordering_matches_figure11() {
        let p = LatencyParams::default();
        for flavor in Flavor::ALL {
            assert!(p.terminate_us(flavor) < p.suspend_us(flavor));
            assert!(p.suspend_us(flavor) < p.migrate_us(flavor));
        }
        // Larger VMs migrate slower.
        assert!(p.migrate_us(Flavor::Large) > p.migrate_us(Flavor::Small));
    }

    #[test]
    fn property_filter_adds_cost() {
        let p = LatencyParams::default();
        assert!(p.scheduling_us(3, true) > p.scheduling_us(3, false));
    }

    #[test]
    fn hashing_scales() {
        let p = LatencyParams::default();
        assert_eq!(p.hash_us(400), 1_000_000);
        assert!(p.hash_us(Image::Ubuntu.size_mb()) > p.hash_us(Image::Cirros.size_mb()));
    }

    #[test]
    fn backoff_grows_and_caps() {
        let policy = RetryPolicy::default();
        let mut rng = Drbg::from_seed(5);
        let b1 = policy.backoff_us(1, &mut rng);
        assert!((500..=750).contains(&b1), "{b1}");
        // Deep attempts are capped at backoff_cap_us (+50% jitter).
        let deep = policy.backoff_us(30, &mut rng);
        assert!(
            (policy.backoff_cap_us..=policy.backoff_cap_us * 3 / 2).contains(&deep),
            "{deep}"
        );
    }

    #[test]
    fn backoff_at_attempt_zero_does_not_underflow() {
        // Regression: `1u64 << (attempt - 1)` underflowed at attempt 0,
        // shifting by (u32::MAX).min(16) = 16 and charging the cap for
        // what should be the cheapest backoff step.
        let policy = RetryPolicy::default();
        let mut rng = Drbg::from_seed(6);
        let b0 = policy.backoff_us(0, &mut rng);
        let b1 = policy.backoff_us(1, &mut rng);
        // Attempt 0 behaves like the first retry: base plus <=50% jitter.
        assert!((500..=750).contains(&b0), "{b0}");
        assert!((500..=750).contains(&b1), "{b1}");
    }

    #[test]
    fn disabled_policy_is_fail_fast() {
        assert_eq!(RetryPolicy::disabled().max_attempts, 1);
    }
}
