//! One CloudMonatt-capable cloud server: the hypervisor simulator, the
//! hardware Trust Module, the Monitor Module (monitor kernel + tools) and
//! the Attestation Client (Figure 2).

use crate::measurements::{Measurement, MeasurementSpec, TaskInfo};
use crate::types::{Image, SecurityProperty, ServerId, Vid};
use monatt_crypto::drbg::Drbg;
use monatt_crypto::schnorr::VerifyingKey;
use monatt_crypto::sha256::sha256;
use monatt_hypervisor::driver::WorkloadDriver;
use monatt_hypervisor::engine::ServerSim;
use monatt_hypervisor::guest::GuestOs;
use monatt_hypervisor::ids::VmId;
use monatt_hypervisor::scheduler::SchedParams;
use monatt_hypervisor::vm::VmConfig;
use monatt_hypervisor::vmi::VmiTool;
use monatt_tpm::module::{CertificationRequest, TrustModule};
use monatt_tpm::quote::Quote;
use monatt_tpm::registers::RegisterLayout;
use std::collections::{BTreeMap, BTreeSet};

/// Histogram geometry of the covert-channel Trust Evidence Registers:
/// 30 bins of 1 ms (Section 4.4.2).
pub const INTERVAL_BINS: usize = 30;
/// Width of each interval bin in microseconds.
pub const INTERVAL_BIN_WIDTH_US: u64 = 1_000;

/// The signed response of the Attestation Client: measurements plus the
/// quote `Q3 = H(Vid || rM || M || N3)` signed with the session key ASKs
/// (Figure 3, message 4 content).
#[derive(Clone, Debug)]
pub struct AttestationResponse {
    /// The VM the measurements concern.
    pub vid: Vid,
    /// Echo of the measurement spec (`rM`).
    pub spec: MeasurementSpec,
    /// The measurements (`M`).
    pub measurement: Measurement,
    /// Echo of the nonce (`N3`).
    pub nonce: [u8; 32],
    /// The signed quote.
    pub quote: Quote,
    /// The session attestation key and its certification request for the
    /// privacy CA.
    pub cert_request: CertificationRequest,
}

impl From<AttestationResponse> for crate::messages::MeasureResponse {
    fn from(r: AttestationResponse) -> Self {
        crate::messages::MeasureResponse {
            vid: r.vid,
            spec: r.spec,
            measurement: r.measurement,
            nonce3: r.nonce,
            quote: r.quote,
            cert_request: r.cert_request,
        }
    }
}

/// Per-VM record on the server.
#[derive(Debug)]
struct VmSlot {
    local: VmId,
    image: Image,
    /// Image hash measured at launch time (before any runtime tampering).
    measured_image_hash: [u8; 32],
}

/// A cloud server node.
pub struct CloudServerNode {
    id: ServerId,
    trust: TrustModule,
    sim: ServerSim,
    vms: BTreeMap<Vid, VmSlot>,
    capacity_vcpus: usize,
    used_vcpus: usize,
    supported: BTreeSet<&'static str>,
    window_start_cpu: BTreeMap<Vid, u64>,
    window_start_pmu: BTreeMap<Vid, monatt_hypervisor::pmu::VmCounters>,
    quote_scratch: monatt_net::wire::EncodeScratch,
    /// Opt-in: reuse one attestation session key across attestations so
    /// the pCA's certified-AVK cache can short-circuit repeat bindings.
    /// Default off — the paper's anonymity argument wants a fresh AVK
    /// per session, so reuse is an explicit deployment trade-off.
    reuse_avk: bool,
    /// The cached attestation session when `reuse_avk` is on. Dropped on
    /// channel re-key or crash recovery (see [`Self::reset_avk_session`]).
    avk_session: Option<monatt_tpm::module::AttestationSession>,
}

impl std::fmt::Debug for CloudServerNode {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("CloudServerNode")
            .field("id", &self.id)
            .field("vms", &self.vms.len())
            .field("capacity_vcpus", &self.capacity_vcpus)
            .finish_non_exhaustive()
    }
}

impl CloudServerNode {
    /// Boots a server: provisions the Trust Module, measures the platform
    /// components into PCR 0, and starts the hypervisor simulator.
    ///
    /// `platform_components` is what is *actually* loaded — pass a
    /// corrupted list to model a compromised platform.
    pub fn boot(
        id: ServerId,
        pcpus: usize,
        sched: SchedParams,
        rng: Drbg,
        platform_components: &[&str],
        supported: &[SecurityProperty],
    ) -> Self {
        let mut trust = TrustModule::provision(rng);
        for component in platform_components {
            trust
                .pcrs_mut()
                .extend(0, sha256(component.as_bytes()), component);
        }
        CloudServerNode {
            id,
            trust,
            sim: ServerSim::new(pcpus, sched),
            vms: BTreeMap::new(),
            capacity_vcpus: pcpus * 8,
            used_vcpus: 0,
            supported: supported.iter().map(|p| p.label()).collect(),
            window_start_cpu: BTreeMap::new(),
            window_start_pmu: BTreeMap::new(),
            quote_scratch: monatt_net::wire::EncodeScratch::new(),
            reuse_avk: false,
            avk_session: None,
        }
    }

    /// Turns attestation-key reuse on or off. Turning it off (or on)
    /// drops any cached session, so the next attestation starts fresh.
    pub fn set_avk_reuse(&mut self, on: bool) {
        self.reuse_avk = on;
        self.avk_session = None;
    }

    /// Drops the cached attestation session (channel re-key, crash
    /// recovery): a binding certified under the old trust context must
    /// not be presented again.
    pub fn reset_avk_session(&mut self) {
        self.avk_session = None;
    }

    /// This server's id.
    pub fn id(&self) -> ServerId {
        self.id
    }

    /// The server's public identity key (VKs), registered with the pCA.
    pub fn identity_key(&self) -> VerifyingKey {
        self.trust.identity_key()
    }

    /// Whether the server's Monitor Module supports monitoring `property`.
    pub fn supports(&self, property: SecurityProperty) -> bool {
        self.supported.contains(property.label())
    }

    /// Free vCPU slots.
    pub fn free_vcpus(&self) -> usize {
        self.capacity_vcpus - self.used_vcpus
    }

    /// Read access to the hypervisor simulator (monitor tools, tests).
    pub fn sim(&self) -> &ServerSim {
        &self.sim
    }

    /// Mutable access to the hypervisor simulator — used by attack
    /// injection in experiments.
    pub fn sim_mut(&mut self) -> &mut ServerSim {
        &mut self.sim
    }

    /// Whether this server hosts `vid`.
    pub fn hosts(&self, vid: Vid) -> bool {
        self.vms.contains_key(&vid)
    }

    /// Number of VMs on the server.
    pub fn vm_count(&self) -> usize {
        self.vms.len()
    }

    /// Launches a VM: boots the guest from `image_bytes` (possibly
    /// tampered), measures the image hash, and starts the vCPUs.
    ///
    /// # Panics
    ///
    /// Panics if the vid is already present or drivers are empty.
    pub fn launch_vm(
        &mut self,
        vid: Vid,
        image: Image,
        image_bytes: Vec<u8>,
        drivers: Vec<Box<dyn WorkloadDriver>>,
        weight: u32,
    ) -> VmId {
        self.launch_vm_pinned(vid, image, image_bytes, drivers, weight, None)
    }

    /// Like [`Self::launch_vm`] but optionally pinning every vCPU to one
    /// pCPU (used by co-residency experiments).
    ///
    /// # Panics
    ///
    /// Panics if the vid is already present, drivers are empty, or the
    /// pin is out of range.
    pub fn launch_vm_pinned(
        &mut self,
        vid: Vid,
        image: Image,
        image_bytes: Vec<u8>,
        drivers: Vec<Box<dyn WorkloadDriver>>,
        weight: u32,
        pin_pcpu: Option<usize>,
    ) -> VmId {
        assert!(!self.vms.contains_key(&vid), "vid already on this server");
        let vcpus = drivers.len();
        let guest = GuestOs::boot(image_bytes, image.initial_tasks());
        let measured_image_hash = guest.image_hash();
        let mut config = VmConfig::new(&format!("{vid}"), drivers)
            .weight(weight)
            .guest(guest);
        if let Some(p) = pin_pcpu {
            config = config.pin(vec![monatt_hypervisor::ids::PcpuId(p); vcpus]);
        }
        let local = self.sim.create_vm(config);
        self.used_vcpus += vcpus;
        self.vms.insert(
            vid,
            VmSlot {
                local,
                image,
                measured_image_hash,
            },
        );
        local
    }

    /// Removes a VM (terminate or migrate-away).
    pub fn remove_vm(&mut self, vid: Vid) {
        if let Some(slot) = self.vms.remove(&vid) {
            let vcpus = self.sim.vm(slot.local).map(|v| v.vcpu_count).unwrap_or(0);
            self.sim.terminate_vm(slot.local);
            self.used_vcpus = self.used_vcpus.saturating_sub(vcpus);
        }
    }

    /// Suspends a hosted VM.
    pub fn suspend_vm(&mut self, vid: Vid) {
        if let Some(slot) = self.vms.get(&vid) {
            self.sim.suspend_vm(slot.local);
        }
    }

    /// Resumes a hosted VM.
    pub fn resume_vm(&mut self, vid: Vid) {
        if let Some(slot) = self.vms.get(&vid) {
            self.sim.resume_vm(slot.local);
        }
    }

    /// The local simulator id of a hosted VM.
    pub fn local_vm(&self, vid: Vid) -> Option<VmId> {
        self.vms.get(&vid).map(|s| s.local)
    }

    /// The image a hosted VM was launched from.
    pub fn vm_image(&self, vid: Vid) -> Option<Image> {
        self.vms.get(&vid).map(|s| s.image)
    }

    /// Runs the hypervisor for `duration_us` of simulated time.
    pub fn advance(&mut self, duration_us: u64) {
        self.sim.run_for(duration_us);
    }

    /// Catches the hypervisor up to the cloud wall clock (the lazy-clock
    /// pull model: the cloud moves only its wall clock per event, and a
    /// node pays its elapsed time when next touched). Quiescent servers
    /// fast-forward in O(pending events) rather than O(elapsed ticks),
    /// which is what makes 100k-server fleets tractable.
    pub fn catch_up(&mut self, wall_us: u64) {
        self.sim
            .run_until_lazy(monatt_hypervisor::time::SimTime::from_micros(wall_us));
    }

    /// Opens a measurement window for a runtime spec: resets the VMM
    /// profile tool and programs the Trust Evidence Registers. The caller
    /// then advances the simulator by the spec's window before calling
    /// [`Self::collect`].
    pub fn begin_window(&mut self, spec: MeasurementSpec, vid: Vid) {
        if spec.window_us() == 0 {
            return;
        }
        let now = self.sim.now();
        self.sim.profile_mut().reset_window(now);
        match spec {
            MeasurementSpec::UsageIntervals { .. } => {
                self.trust.program_registers(RegisterLayout::Histogram {
                    bins: INTERVAL_BINS,
                    bin_width_us: INTERVAL_BIN_WIDTH_US,
                });
            }
            MeasurementSpec::CpuTime { .. } => {
                self.trust
                    .program_registers(RegisterLayout::Accumulators { count: 1 });
                if let Some(local) = self.vms.get(&vid).map(|s| s.local) {
                    let start = self.vm_total_cpu_us(local);
                    self.window_start_cpu.insert(vid, start);
                }
            }
            MeasurementSpec::SchedulerEvents { .. } => {
                self.trust
                    .program_registers(RegisterLayout::Accumulators { count: 3 });
                if let Some(local) = self.vms.get(&vid).map(|s| s.local) {
                    self.window_start_pmu
                        .insert(vid, self.sim.pmu().counters(local));
                }
            }
            _ => {}
        }
    }

    fn vm_total_cpu_us(&self, local: VmId) -> u64 {
        let count = self.sim.vm(local).map(|v| v.vcpu_count).unwrap_or(0);
        (0..count)
            .map(|index| {
                self.sim
                    .vcpu_cpu_time_us(monatt_hypervisor::ids::VcpuId { vm: local, index })
            })
            .sum()
    }

    /// Collects the measurements for `spec` — the Monitor Kernel writing
    /// into the Trust Evidence Registers and reading them back.
    ///
    /// Returns `None` if the VM is not hosted here.
    pub fn collect(&mut self, spec: MeasurementSpec, vid: Vid) -> Option<Measurement> {
        let slot = self.vms.get(&vid)?;
        let local = slot.local;
        match spec {
            MeasurementSpec::BootIntegrity => Some(Measurement::BootIntegrity {
                platform_pcr: self.trust.pcrs().read(0),
                image_hash: slot.measured_image_hash,
            }),
            MeasurementSpec::TaskListProbe => {
                let vmi = VmiTool::new(&self.sim);
                let to_info = |tasks: Vec<monatt_hypervisor::guest::GuestTask>| {
                    tasks
                        .into_iter()
                        .map(|t| TaskInfo {
                            pid: t.pid,
                            name: t.name,
                        })
                        .collect::<Vec<_>>()
                };
                Some(Measurement::TaskLists {
                    kernel: to_info(vmi.kernel_task_list(local).ok()?),
                    guest_visible: to_info(vmi.guest_visible_task_list(local).ok()?),
                })
            }
            MeasurementSpec::UsageIntervals { window_us } => {
                // Feed the profile tool's segments into the registers, as
                // the Monitor Kernel does, then read them out.
                let hist = self.sim.profile().interval_histogram(
                    local,
                    INTERVAL_BINS,
                    INTERVAL_BIN_WIDTH_US,
                );
                let regs = self.trust.registers_mut()?;
                let token = regs.unlock();
                regs.clear(&token);
                for (bin, count) in hist.iter().enumerate() {
                    for _ in 0..*count {
                        regs.record_interval(&token, (bin as u64) * INTERVAL_BIN_WIDTH_US + 1);
                    }
                }
                Some(Measurement::UsageIntervals {
                    bins: regs.snapshot(),
                    bin_width_us: INTERVAL_BIN_WIDTH_US,
                    window_us,
                })
            }
            MeasurementSpec::CpuTime { window_us } => {
                let start = self.window_start_cpu.get(&vid).copied().unwrap_or(0);
                let total = self.vm_total_cpu_us(local);
                let virtual_time_us = total.saturating_sub(start);
                let first_vcpu = monatt_hypervisor::ids::VcpuId {
                    vm: local,
                    index: 0,
                };
                let contending = self
                    .sim
                    .vcpu_pcpu(first_vcpu)
                    .map(|p| self.sim.schedulable_vcpus_on(p))
                    .unwrap_or(1)
                    .max(1);
                // Write CPU_measure into a Trust Evidence Register.
                if let Some(regs) = self.trust.registers_mut() {
                    let token = regs.unlock();
                    regs.clear(&token);
                    regs.accumulate(&token, 0, virtual_time_us);
                }
                Some(Measurement::CpuTime {
                    virtual_time_us,
                    window_us,
                    contending_vcpus: contending as u32,
                })
            }
            MeasurementSpec::SchedulerEvents { window_us } => {
                let baseline = self.window_start_pmu.get(&vid).copied().unwrap_or_default();
                let now = self.sim.pmu().counters(local);
                let boosts = now.boosts.saturating_sub(baseline.boosts);
                let ipis_sent = now.ipis_sent.saturating_sub(baseline.ipis_sent);
                let wakeups = now.wakeups.saturating_sub(baseline.wakeups);
                // Write the event counts into Trust Evidence Registers.
                if let Some(regs) = self.trust.registers_mut() {
                    let token = regs.unlock();
                    regs.clear(&token);
                    regs.accumulate(&token, 0, boosts);
                    regs.accumulate(&token, 1, ipis_sent);
                    regs.accumulate(&token, 2, wakeups);
                }
                Some(Measurement::SchedulerEvents {
                    boosts,
                    ipis_sent,
                    wakeups,
                    window_us,
                })
            }
        }
    }

    /// The Attestation Client flow (steps 1-8 of Figure 2): collect
    /// measurements, generate a session attestation key, quote and sign.
    ///
    /// Returns `None` if the VM is not hosted here.
    pub fn attest(
        &mut self,
        vid: Vid,
        spec: MeasurementSpec,
        nonce: [u8; 32],
    ) -> Option<AttestationResponse> {
        let measurement = self.collect(spec, vid)?;
        // Default: a fresh session key pair per attestation (anonymity).
        // Under `reuse_avk` the previous session is kept so repeat
        // attestations present the identical certification request and
        // hit the pCA's certified-AVK cache.
        let fresh;
        let session = if self.reuse_avk {
            if self.avk_session.is_none() {
                self.avk_session = Some(self.trust.begin_attestation());
            }
            self.avk_session.as_ref()?
        } else {
            fresh = self.trust.begin_attestation();
            &fresh
        };
        let vid_bytes = vid.0.to_be_bytes();
        let (spec_bytes, meas_bytes) = self.quote_scratch.encode_pair(&spec, &measurement);
        let quote = session.quote(&[&vid_bytes, spec_bytes, meas_bytes, &nonce]);
        Some(AttestationResponse {
            vid,
            spec,
            measurement,
            nonce,
            quote,
            cert_request: session.certification_request().clone(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::interpret::ReferenceDb;
    use monatt_hypervisor::driver::{BusyLoop, IdleDriver};

    fn node() -> CloudServerNode {
        let refs = ReferenceDb::new();
        CloudServerNode::boot(
            ServerId(0),
            2,
            SchedParams::default(),
            Drbg::from_seed(1),
            refs.platform_components(),
            &[
                SecurityProperty::StartupIntegrity,
                SecurityProperty::RuntimeIntegrity,
                SecurityProperty::CovertChannelFreedom,
                SecurityProperty::CpuAvailability { min_share_pct: 0 },
            ],
        )
    }

    #[test]
    fn platform_measurement_matches_reference() {
        let n = node();
        let refs = ReferenceDb::new();
        assert_eq!(n.sim().pcpu_count(), 2);
        assert_eq!(n.identity_key(), n.identity_key());
        // PCR 0 should equal the pristine replay.
        let m = {
            let mut n = node();
            n.launch_vm(
                Vid(1),
                Image::Cirros,
                Image::Cirros.pristine_bytes(),
                vec![Box::new(IdleDriver)],
                256,
            );
            n.collect(MeasurementSpec::BootIntegrity, Vid(1)).unwrap()
        };
        let Measurement::BootIntegrity {
            platform_pcr,
            image_hash,
        } = m
        else {
            panic!("wrong measurement");
        };
        assert_eq!(platform_pcr, refs.expected_platform_pcr());
        assert_eq!(image_hash, refs.expected_image_hash(Image::Cirros));
    }

    #[test]
    fn corrupted_platform_yields_different_pcr() {
        let refs = ReferenceDb::new();
        let n = CloudServerNode::boot(
            ServerId(1),
            1,
            SchedParams::default(),
            Drbg::from_seed(2),
            &["firmware-v2", "evil-hypervisor", "dom0-linux-3.13"],
            &[],
        );
        assert_ne!(n.trust.pcrs().read(0), refs.expected_platform_pcr());
    }

    #[test]
    fn capacity_tracking() {
        let mut n = node();
        assert_eq!(n.free_vcpus(), 16);
        n.launch_vm(
            Vid(1),
            Image::Cirros,
            Image::Cirros.pristine_bytes(),
            vec![Box::new(IdleDriver), Box::new(IdleDriver)],
            256,
        );
        assert_eq!(n.free_vcpus(), 14);
        n.remove_vm(Vid(1));
        assert_eq!(n.free_vcpus(), 16);
        assert!(!n.hosts(Vid(1)));
    }

    #[test]
    fn cpu_time_window_measures_usage() {
        let mut n = node();
        n.launch_vm(
            Vid(1),
            Image::Cirros,
            Image::Cirros.pristine_bytes(),
            vec![Box::new(BusyLoop::default())],
            256,
        );
        let spec = MeasurementSpec::CpuTime {
            window_us: 1_000_000,
        };
        n.begin_window(spec, Vid(1));
        n.advance(1_000_000);
        let Measurement::CpuTime {
            virtual_time_us,
            window_us,
            contending_vcpus,
        } = n.collect(spec, Vid(1)).unwrap()
        else {
            panic!("wrong measurement");
        };
        assert!(virtual_time_us > 900_000, "usage = {virtual_time_us}");
        assert_eq!(window_us, 1_000_000);
        assert_eq!(contending_vcpus, 1);
    }

    #[test]
    fn attest_produces_verifiable_quote() {
        let mut n = node();
        n.launch_vm(
            Vid(7),
            Image::Ubuntu,
            Image::Ubuntu.pristine_bytes(),
            vec![Box::new(IdleDriver)],
            256,
        );
        let resp = n
            .attest(Vid(7), MeasurementSpec::BootIntegrity, [9u8; 32])
            .unwrap();
        assert!(resp.cert_request.verify());
        let vid_bytes = 7u64.to_be_bytes();
        let spec_bytes = monatt_net::wire::Wire::to_wire(&resp.spec);
        let meas_bytes = monatt_net::wire::Wire::to_wire(&resp.measurement);
        assert!(resp
            .quote
            .verify(
                &resp.cert_request.attestation_key,
                &[&vid_bytes, &spec_bytes, &meas_bytes, &resp.nonce]
            )
            .is_ok());
        // Each attestation uses a fresh session key.
        let resp2 = n
            .attest(Vid(7), MeasurementSpec::BootIntegrity, [9u8; 32])
            .unwrap();
        assert_ne!(
            resp.cert_request.attestation_key,
            resp2.cert_request.attestation_key
        );
    }

    #[test]
    fn avk_reuse_presents_identical_binding_until_reset() {
        let mut n = node();
        n.launch_vm(
            Vid(7),
            Image::Cirros,
            Image::Cirros.pristine_bytes(),
            vec![Box::new(IdleDriver)],
            256,
        );
        n.set_avk_reuse(true);
        let a = n
            .attest(Vid(7), MeasurementSpec::BootIntegrity, [1u8; 32])
            .unwrap();
        let b = n
            .attest(Vid(7), MeasurementSpec::BootIntegrity, [2u8; 32])
            .unwrap();
        // Same AVK, same identity signature: byte-identical binding.
        assert_eq!(
            a.cert_request.attestation_key,
            b.cert_request.attestation_key
        );
        assert_eq!(
            a.cert_request.identity_signature,
            b.cert_request.identity_signature
        );
        // A re-key/crash reset forces a fresh session key.
        n.reset_avk_session();
        let c = n
            .attest(Vid(7), MeasurementSpec::BootIntegrity, [3u8; 32])
            .unwrap();
        assert_ne!(
            a.cert_request.attestation_key,
            c.cert_request.attestation_key
        );
    }

    #[test]
    fn attest_unknown_vm_is_none() {
        let mut n = node();
        assert!(n
            .attest(Vid(99), MeasurementSpec::BootIntegrity, [0u8; 32])
            .is_none());
    }

    #[test]
    fn supports_check() {
        let n = node();
        assert!(n.supports(SecurityProperty::RuntimeIntegrity));
        assert!(n.supports(SecurityProperty::CpuAvailability { min_share_pct: 50 }));
        let bare = CloudServerNode::boot(
            ServerId(9),
            1,
            SchedParams::default(),
            Drbg::from_seed(3),
            &[],
            &[],
        );
        assert!(!bare.supports(SecurityProperty::StartupIntegrity));
    }
}
