//! Decode-robustness tests: protocol message and measurement decoders
//! must reject (never panic on) arbitrary bytes — the attacker controls
//! the network, so every byte of input is adversarial.

use monatt_core::measurements::{Measurement, MeasurementSpec};
use monatt_core::messages::{
    AttestationReportMsg, ControllerForward, CustomerReportMsg, CustomerRequest, MeasureRequest,
    MeasureResponse,
};
use monatt_core::types::{HealthStatus, SecurityProperty};
use monatt_net::wire::Wire;
use proptest::prelude::*;

fn arb_bytes() -> impl Strategy<Value = Vec<u8>> {
    proptest::collection::vec(any::<u8>(), 0..256)
}

proptest! {
    /// No decoder panics on arbitrary input; they return errors.
    #[test]
    fn decoders_never_panic(bytes in arb_bytes()) {
        let _ = CustomerRequest::from_wire(&bytes);
        let _ = ControllerForward::from_wire(&bytes);
        let _ = MeasureRequest::from_wire(&bytes);
        let _ = MeasureResponse::from_wire(&bytes);
        let _ = AttestationReportMsg::from_wire(&bytes);
        let _ = CustomerReportMsg::from_wire(&bytes);
        let _ = Measurement::from_wire(&bytes);
        let _ = MeasurementSpec::from_wire(&bytes);
        let _ = SecurityProperty::from_wire(&bytes);
        let _ = HealthStatus::from_wire(&bytes);
    }

    /// Bit-flipping a valid encoding either still decodes (to a different
    /// value at worst — signatures catch that) or errors; never panics.
    #[test]
    fn bitflipped_messages_never_panic(
        vid in any::<u64>(),
        nonce in any::<[u8; 32]>(),
        flip_at in any::<proptest::sample::Index>(),
        flip_bit in 0u8..8,
    ) {
        let msg = CustomerRequest {
            vid: monatt_core::Vid(vid),
            property: SecurityProperty::RuntimeIntegrity,
            nonce1: nonce,
        };
        let mut bytes = msg.to_wire();
        let idx = flip_at.index(bytes.len());
        bytes[idx] ^= 1 << flip_bit;
        let _ = CustomerRequest::from_wire(&bytes);
    }

    /// Valid property/status values always roundtrip.
    #[test]
    fn property_roundtrip(pct in any::<u8>()) {
        let p = SecurityProperty::CpuAvailability { min_share_pct: pct };
        prop_assert_eq!(SecurityProperty::from_wire(&p.to_wire()).unwrap(), p);
    }

    /// Health statuses with arbitrary reason strings roundtrip.
    #[test]
    fn status_roundtrip(reason in ".*") {
        let s = HealthStatus::Compromised { reason: reason.clone() };
        prop_assert_eq!(HealthStatus::from_wire(&s.to_wire()).unwrap(), s);
    }
}
