//! Property-based tests of the covert-channel detector: total functions
//! over arbitrary histograms, and invariance guarantees.

use monatt_core::analyze_intervals;
use proptest::prelude::*;

proptest! {
    /// The detector is total: any histogram analyzes without panicking,
    /// and the low-cluster mass is a probability.
    #[test]
    fn analysis_is_total(
        bins in proptest::collection::vec(0u64..10_000, 1..64),
        width in 1u64..100_000,
    ) {
        let a = analyze_intervals(&bins, width);
        prop_assert!((0.0..=1.0).contains(&a.low_mass));
        prop_assert_eq!(a.samples, bins.iter().sum::<u64>());
    }

    /// Degenerate inputs are never flagged.
    #[test]
    fn degenerate_inputs_are_benign(width in 1u64..10_000) {
        prop_assert!(!analyze_intervals(&[], width).covert);
        prop_assert!(!analyze_intervals(&[0; 30], width).covert);
        // All mass in one bin can never be bimodal.
        for bin in 0..30 {
            let mut bins = vec![0u64; 30];
            bins[bin] = 1_000;
            prop_assert!(!analyze_intervals(&bins, width).covert);
        }
    }

    /// Scaling all counts by a constant does not change the verdict
    /// (the detector looks at the distribution, not the volume).
    #[test]
    fn verdict_is_scale_invariant(
        bins in proptest::collection::vec(0u64..100, 30),
        scale in 1u64..50,
    ) {
        let scaled: Vec<u64> = bins.iter().map(|&b| b * scale).collect();
        let a = analyze_intervals(&bins, 1_000);
        let b = analyze_intervals(&scaled, 1_000);
        // Only comparable when both have enough samples to analyze.
        if a.samples >= 50 && b.samples >= 50 {
            prop_assert_eq!(a.covert, b.covert);
        }
    }

    /// Sub-threshold sample counts never alarm (insufficient evidence).
    #[test]
    fn sparse_histograms_never_alarm(
        bins in proptest::collection::vec(0u64..2, 30),
    ) {
        let a = analyze_intervals(&bins, 1_000);
        if a.samples < 50 {
            prop_assert!(!a.covert);
        }
    }
}
