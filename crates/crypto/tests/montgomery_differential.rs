//! Differential tests for the crypto fast paths.
//!
//! The seed implementation reduced everything through bit-by-bit binary
//! long division; that path is retained as `mod_mul_ref` / `mod_exp_ref`
//! / `U512::rem_binary` precisely so these tests can check the Montgomery
//! pipeline and the word-level (Knuth Algorithm D) division against a
//! simple oracle, bit for bit, on random 256-bit inputs and on the edge
//! moduli where the fast paths have special cases (even moduli, 2^256-1,
//! small primes).

use monatt_crypto::bigint::U256;
use monatt_crypto::group::Group;
use monatt_crypto::modmath::{mod_exp, mod_exp_ref, mod_mul, mod_mul_ref};
use monatt_crypto::montgomery::MontgomeryCtx;
use proptest::prelude::*;

fn arb_u256() -> impl Strategy<Value = U256> {
    any::<[u64; 4]>().prop_map(U256::from_limbs)
}

/// An odd modulus > 1 — the Montgomery-eligible domain.
fn arb_odd_modulus() -> impl Strategy<Value = U256> {
    any::<[u64; 4]>().prop_map(|mut limbs| {
        limbs[0] |= 1;
        U256::from_limbs(limbs)
    })
}

proptest! {
    #[test]
    fn montgomery_mul_matches_reference(
        a in arb_u256(),
        b in arb_u256(),
        m in arb_odd_modulus(),
    ) {
        prop_assume!(m > U256::ONE);
        let ctx = MontgomeryCtx::new(&m).expect("odd modulus > 1");
        prop_assert_eq!(ctx.mul(&a, &b), mod_mul_ref(&a, &b, &m));
    }

    #[test]
    fn montgomery_form_roundtrip(a in arb_u256(), m in arb_odd_modulus()) {
        prop_assume!(m > U256::ONE);
        let ctx = MontgomeryCtx::new(&m).expect("odd modulus > 1");
        prop_assert_eq!(ctx.from_mont(&ctx.to_mont(&a)), a.rem(&m));
    }

    #[test]
    fn mod_mul_dispatch_matches_reference(
        a in arb_u256(),
        b in arb_u256(),
        m in arb_u256(),
    ) {
        // Covers both dispatch arms: odd m (Montgomery) and even m
        // (word-level division).
        prop_assume!(!m.is_zero());
        prop_assert_eq!(mod_mul(&a, &b, &m), mod_mul_ref(&a, &b, &m));
    }

    #[test]
    fn knuth_division_matches_binary(a in arb_u256(), b in arb_u256(), m in arb_u256()) {
        prop_assume!(!m.is_zero());
        let wide = a.full_mul(&b);
        prop_assert_eq!(wide.rem(&m), wide.rem_binary(&m));
    }

    #[test]
    fn pow_g_table_matches_generic_pow(exp in arb_u256()) {
        let grp = Group::default_group();
        prop_assert_eq!(grp.pow_g(&exp), grp.pow(&grp.g, &exp));
    }
}

proptest! {
    // The reference exponentiation runs a full binary-division ladder per
    // case, so keep the case count moderate.
    #![proptest_config(ProptestConfig::with_cases(24))]
    #[test]
    fn mod_exp_matches_reference(base in arb_u256(), exp in arb_u256(), m in arb_u256()) {
        prop_assume!(!m.is_zero());
        prop_assert_eq!(mod_exp(&base, &exp, &m), mod_exp_ref(&base, &exp, &m));
    }

    #[test]
    fn shamir_double_exp_matches_reference(x in arb_u256(), y in arb_u256()) {
        let grp = Group::default_group();
        let a = grp.pow_g(&U256::from_u64(5));
        let b = grp.pow_g(&U256::from_u64(11));
        let expect = mod_mul_ref(
            &mod_exp_ref(&a, &x, &grp.p),
            &mod_exp_ref(&b, &y, &grp.p),
            &grp.p,
        );
        prop_assert_eq!(grp.pow_double(&a, &x, &b, &y), expect);
    }
}

/// Moduli where the fast paths have corner cases: the largest odd value
/// (forces the 513-bit REDC intermediate), small primes (single-limb
/// divisor path), the default group primes, and a power of two plus the
/// all-even-limb pattern (division fallback).
const EDGE_MODULI_HEX: &[&str] = &[
    "ffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffff", // 2^256 - 1
    "3",
    "5",
    "61", // 97
    "fffffffb",
    "b7e9f735f74bf461eb409d67747a627534f17ded4ba95a60790f978549c8c24f", // default p
    "5bf4fb9afba5fa30f5a04eb3ba3d313a9a78bef6a5d4ad303c87cbc2a4e46127", // default q
    "8000000000000000000000000000000000000000000000000000000000000000", // 2^255
    "fffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffe", // 2^256 - 2
];

#[test]
fn edge_moduli_differential() {
    let values = [
        U256::ZERO,
        U256::ONE,
        U256::from_u64(2),
        U256::from_u64(0xdead_beef),
        U256::from_hex("123456789abcdef0fedcba9876543210").unwrap(),
        U256::MAX.wrapping_sub(&U256::ONE),
        U256::MAX,
    ];
    for hex in EDGE_MODULI_HEX {
        let m = U256::from_hex(hex).unwrap();
        for a in &values {
            for b in &values {
                assert_eq!(
                    mod_mul(a, b, &m),
                    mod_mul_ref(a, b, &m),
                    "mod_mul m={m:?} a={a:?} b={b:?}"
                );
            }
            // One exponentiation per (modulus, value) keeps the reference
            // ladder affordable.
            let e = U256::from_u64(0xf0f1_f2f3);
            assert_eq!(
                mod_exp(a, &e, &m),
                mod_exp_ref(a, &e, &m),
                "mod_exp m={m:?} a={a:?}"
            );
        }
    }
}

#[test]
fn montgomery_eligibility() {
    // Even or trivial moduli are rejected; odd moduli > 1 are accepted.
    assert!(MontgomeryCtx::new(&U256::ZERO).is_none());
    assert!(MontgomeryCtx::new(&U256::ONE).is_none());
    assert!(MontgomeryCtx::new(&U256::from_u64(2)).is_none());
    assert!(MontgomeryCtx::new(&U256::MAX.wrapping_sub(&U256::ONE)).is_none());
    assert!(MontgomeryCtx::new(&U256::from_u64(3)).is_some());
    assert!(MontgomeryCtx::new(&U256::MAX).is_some());
    // The dispatching entry points still serve even moduli correctly.
    let m = U256::from_u64(2);
    assert_eq!(
        mod_exp(&U256::from_u64(3), &U256::from_u64(8), &m),
        U256::ONE
    );
}
