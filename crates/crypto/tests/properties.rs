//! Property-based tests for the cryptographic substrate.

use monatt_crypto::bigint::U256;
use monatt_crypto::drbg::Drbg;
use monatt_crypto::group::Group;
use monatt_crypto::hmac::{hkdf, hmac_sha256};
use monatt_crypto::modmath::{mod_add, mod_exp, mod_inv_prime, mod_mul, mod_sub};
use monatt_crypto::schnorr::SigningKey;
use monatt_crypto::sha256::sha256;
use monatt_crypto::SealKey;
use proptest::prelude::*;

fn arb_u256() -> impl Strategy<Value = U256> {
    any::<[u64; 4]>().prop_map(U256::from_limbs)
}

/// A u128 lifted into U256 — small enough to cross-check against native
/// arithmetic.
fn arb_small() -> impl Strategy<Value = (u64, u64)> {
    (any::<u64>(), any::<u64>())
}

proptest! {
    #[test]
    fn add_sub_roundtrip(a in arb_u256(), b in arb_u256()) {
        let (sum, _) = a.overflowing_add(&b);
        prop_assert_eq!(sum.wrapping_sub(&b), a);
    }

    #[test]
    fn add_commutes(a in arb_u256(), b in arb_u256()) {
        prop_assert_eq!(a.wrapping_add(&b), b.wrapping_add(&a));
    }

    #[test]
    fn mul_matches_u128(pair in arb_small()) {
        let (a, b) = pair;
        let prod = U256::from_u64(a).full_mul(&U256::from_u64(b));
        let expected = (a as u128) * (b as u128);
        prop_assert_eq!(prod.rem(&U256::MAX), {
            let mut limbs = [0u64; 4];
            limbs[0] = expected as u64;
            limbs[1] = (expected >> 64) as u64;
            U256::from_limbs(limbs)
        });
    }

    #[test]
    fn be_bytes_roundtrip(a in arb_u256()) {
        prop_assert_eq!(U256::from_be_bytes(&a.to_be_bytes()), a);
    }

    #[test]
    fn hex_roundtrip(a in arb_u256()) {
        let hex = format!("{:x}", a);
        prop_assert_eq!(U256::from_hex(&hex).unwrap(), a);
    }

    #[test]
    fn div_rem_reconstructs(a in arb_u256(), m in arb_u256()) {
        prop_assume!(!m.is_zero());
        let (q, r) = a.div_rem(&m);
        prop_assert!(r < m);
        // a - r is exactly q*m: dividing it by m must give (q, 0).
        let diff = a.checked_sub(&r).unwrap();
        let (q2, r2) = diff.div_rem(&m);
        prop_assert_eq!(q2, q);
        prop_assert_eq!(r2, U256::ZERO);
    }

    #[test]
    fn mod_ops_match_u128(pair in arb_small(), m in 2u64..=u64::MAX) {
        let (a, b) = pair;
        let m256 = U256::from_u64(m);
        prop_assert_eq!(
            mod_add(&U256::from_u64(a), &U256::from_u64(b), &m256),
            U256::from_u64(((a as u128 + b as u128) % m as u128) as u64)
        );
        prop_assert_eq!(
            mod_mul(&U256::from_u64(a), &U256::from_u64(b), &m256),
            U256::from_u64(((a as u128 * b as u128) % m as u128) as u64)
        );
        let expected_sub = ((a as i128 - b as i128).rem_euclid(m as i128)) as u64;
        prop_assert_eq!(
            mod_sub(&U256::from_u64(a), &U256::from_u64(b), &m256),
            U256::from_u64(expected_sub)
        );
    }

    #[test]
    fn mod_exp_addition_law(a in any::<u64>(), b in any::<u64>()) {
        // g^a * g^b == g^(a+b) in the default group.
        let grp = Group::default_group();
        let ga = grp.pow_g(&U256::from_u64(a));
        let gb = grp.pow_g(&U256::from_u64(b));
        let (sum, _) = U256::from_u64(a).overflowing_add(&U256::from_u64(b));
        prop_assert_eq!(grp.mul(&ga, &gb), grp.pow_g(&sum));
    }

    #[test]
    fn mod_inv_is_inverse(a in 1u64..u64::MAX) {
        // q is prime; every nonzero element has an inverse.
        let grp = Group::default_group();
        let a = U256::from_u64(a);
        let inv = mod_inv_prime(&a, &grp.q).unwrap();
        prop_assert_eq!(mod_mul(&a, &inv, &grp.q), U256::ONE);
    }

    #[test]
    fn fermat_in_group(x in 2u64..u64::MAX) {
        // x^(p-1) == 1 mod p for prime p.
        let grp = Group::default_group();
        let exp = grp.p.wrapping_sub(&U256::ONE);
        prop_assert_eq!(mod_exp(&U256::from_u64(x), &exp, &grp.p), U256::ONE);
    }

    #[test]
    fn sha256_deterministic(data in proptest::collection::vec(any::<u8>(), 0..512)) {
        prop_assert_eq!(sha256(&data), sha256(&data));
    }

    #[test]
    fn hmac_key_sensitivity(
        k1 in proptest::collection::vec(any::<u8>(), 1..64),
        msg in proptest::collection::vec(any::<u8>(), 0..128),
    ) {
        let mut k2 = k1.clone();
        k2[0] ^= 1;
        prop_assert_ne!(hmac_sha256(&k1, &msg), hmac_sha256(&k2, &msg));
    }

    #[test]
    fn hkdf_output_len(len in 0usize..=255 * 32) {
        prop_assert_eq!(hkdf(b"salt", b"ikm", b"info", len).len(), len);
    }

    #[test]
    fn schnorr_roundtrip(seed in any::<u64>(), msg in proptest::collection::vec(any::<u8>(), 0..256)) {
        let sk = SigningKey::generate(&mut Drbg::from_seed(seed));
        let sig = sk.sign(&msg);
        prop_assert!(sk.verifying_key().verify(&msg, &sig).is_ok());
    }

    #[test]
    fn schnorr_rejects_bitflip(seed in any::<u64>(), mut msg in proptest::collection::vec(any::<u8>(), 1..128), idx in any::<proptest::sample::Index>()) {
        let sk = SigningKey::generate(&mut Drbg::from_seed(seed));
        let sig = sk.sign(&msg);
        let i = idx.index(msg.len());
        msg[i] ^= 1;
        prop_assert!(sk.verifying_key().verify(&msg, &sig).is_err());
    }

    #[test]
    fn seal_open_roundtrip(
        secret in any::<[u8; 32]>(),
        nonce in any::<[u8; 12]>(),
        aad in proptest::collection::vec(any::<u8>(), 0..64),
        pt in proptest::collection::vec(any::<u8>(), 0..256),
    ) {
        let key = SealKey::derive(&secret, b"test");
        let sealed = key.seal(&nonce, &aad, &pt);
        prop_assert_eq!(key.open(&nonce, &aad, &sealed).unwrap(), pt);
    }

    #[test]
    fn seal_tamper_detected(
        secret in any::<[u8; 32]>(),
        pt in proptest::collection::vec(any::<u8>(), 1..64),
        idx in any::<proptest::sample::Index>(),
    ) {
        let key = SealKey::derive(&secret, b"test");
        let nonce = [0u8; 12];
        let mut sealed = key.seal(&nonce, b"", &pt);
        let i = idx.index(sealed.len());
        sealed[i] ^= 1;
        prop_assert!(key.open(&nonce, b"", &sealed).is_err());
    }

    #[test]
    fn drbg_bounded(seed in any::<u64>(), bound in 1u64..=u64::MAX) {
        let mut rng = Drbg::from_seed(seed);
        prop_assert!(rng.next_u64_below(bound) < bound);
    }
}
