//! Differential property test: `batch_verify_each` must agree with the
//! serial `VerifyingKey::verify` loop item for item — over every batch
//! size the AS hot path uses, with zero, one or many forged signatures,
//! and with duplicate signers in the batch (the same cloud server's AVK
//! can appear twice when two sessions coalesce into one flush).

use monatt_crypto::batch::{batch_verify, batch_verify_each, BatchItem};
use monatt_crypto::bigint::U256;
use monatt_crypto::drbg::Drbg;
use monatt_crypto::group::Group;
use monatt_crypto::modmath::mod_add;
use monatt_crypto::schnorr::SigningKey;
use proptest::prelude::*;

/// Builds a batch of `n` signed messages, forging the signatures whose
/// index bit is set in `forged_mask`, and returns the owned parts plus
/// the expected per-item validity.
fn build_case(
    n: usize,
    seed: u64,
    forged_mask: u64,
    dup_keys: bool,
) -> (Vec<SigningKey>, Vec<Vec<u8>>, Vec<bool>) {
    let mut rng = Drbg::from_seed(seed);
    // With duplicate keys, two signers cover the whole batch — the
    // weight derivation and the batch algebra must not assume distinct
    // bases.
    let distinct = if dup_keys { 2.min(n.max(1)) } else { n.max(1) };
    let pool: Vec<SigningKey> = (0..distinct)
        .map(|_| SigningKey::generate(&mut rng))
        .collect();
    let keys: Vec<SigningKey> = (0..n).map(|i| pool[i % distinct].clone()).collect();
    let msgs: Vec<Vec<u8>> = (0..n)
        .map(|i| format!("quote {i} under seed {seed}").into_bytes())
        .collect();
    let valid: Vec<bool> = (0..n).map(|i| forged_mask & (1 << (i % 64)) == 0).collect();
    (keys, msgs, valid)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn batch_matches_serial_for_all_sizes_and_forgery_counts(
        n in prop_oneof![Just(1usize), Just(2), Just(8), Just(64)],
        seed in any::<u64>(),
        forged_mask in any::<u64>(),
        dup_keys in any::<bool>(),
    ) {
        let (keys, msgs, valid) = build_case(n, seed, forged_mask, dup_keys);
        let q = &Group::default_group().q;
        let items: Vec<BatchItem<'_>> = keys
            .iter()
            .zip(&msgs)
            .zip(&valid)
            .map(|((k, m), ok)| {
                let mut sig = k.sign(m);
                if !ok {
                    // A response nudged off by one fails the Schnorr
                    // relation with overwhelming probability.
                    sig.s = mod_add(&sig.s, &U256::ONE, q);
                }
                (k.verifying_key(), m.as_slice(), sig)
            })
            .collect();
        let serial: Vec<bool> = items
            .iter()
            .map(|(k, m, sig)| k.verify(m, sig).is_ok())
            .collect();
        // The forgery model really produced the intended verdicts.
        prop_assert_eq!(&serial, &valid);
        // Whole-batch accept/reject agrees with "any forgery present".
        let all_valid = valid.iter().all(|v| *v);
        prop_assert_eq!(batch_verify(&items).is_ok(), all_valid);
        // Per-item verdicts agree with the serial loop exactly: the
        // fallback pins failures on the forged items and never poisons
        // their batch-mates.
        let each: Vec<bool> = batch_verify_each(&items)
            .iter()
            .map(|v| v.is_ok())
            .collect();
        prop_assert_eq!(&each, &serial);
    }
}
