//! Montgomery-form modular multiplication for odd 256-bit moduli.
//!
//! A [`MontgomeryCtx`] precomputes everything reduction needs for a fixed
//! modulus `m`: the limb inverse `n0 = -m^{-1} mod 2^64` and the conversion
//! constant `R^2 mod m` (with `R = 2^256`). In Montgomery form a value `a`
//! is represented as `a·R mod m`, and the product of two such values can be
//! reduced with shifts and multiplies only — no division — via REDC. That
//! turns the inner loop of modular exponentiation from
//! multiply-then-long-divide into multiply-then-REDC, which is what makes
//! the attestation hot path (Schnorr sign/verify, DH agreement) fast.
//!
//! Montgomery reduction requires `gcd(m, R) = 1`, i.e. an odd modulus.
//! [`MontgomeryCtx::new`] returns `None` for even (or trivial) moduli;
//! callers fall back to plain division-based arithmetic there.
//!
//! Like the rest of the crate this is not constant-time: window lookups and
//! conditional subtractions are data-dependent. See DESIGN.md.

use crate::bigint::{U256, U512};

/// Exponentiation window width in bits. Four bits means a 16-entry table
/// and one potential multiply per four squarings.
const WINDOW_BITS: usize = 4;
/// Table size for one window: `2^WINDOW_BITS`.
const WINDOW_TABLE: usize = 1 << WINDOW_BITS;

/// Precomputed state for Montgomery arithmetic modulo a fixed odd `m`.
#[derive(Clone, Debug)]
pub struct MontgomeryCtx {
    /// The modulus. Odd and greater than one.
    m: U256,
    /// `-m^{-1} mod 2^64`, the REDC folding constant.
    n0: u64,
    /// `R^2 mod m`, used to convert into Montgomery form.
    r2: U256,
    /// `R mod m`, the Montgomery form of one.
    one: U256,
}

impl MontgomeryCtx {
    /// Builds a context for modulus `m`.
    ///
    /// Returns `None` when `m` is even or `m <= 1`: Montgomery reduction
    /// needs `gcd(m, 2^64) = 1`, and a modulus of one has no useful
    /// residues.
    pub fn new(m: &U256) -> Option<Self> {
        if m.is_even() || *m <= U256::ONE {
            return None;
        }
        // Invert the low limb mod 2^64 by Newton iteration: for odd x,
        // x is its own inverse mod 8, and each step doubles the number of
        // correct low bits (3 -> 6 -> 12 -> 24 -> 48 -> 96 >= 64).
        let m0 = m.limbs()[0];
        let mut inv = m0;
        for _ in 0..5 {
            inv = inv.wrapping_mul(2u64.wrapping_sub(m0.wrapping_mul(inv)));
        }
        debug_assert_eq!(m0.wrapping_mul(inv), 1);
        let n0 = inv.wrapping_neg();
        // one = R mod m, computed by dividing 2^256 (bit 256 of a U512).
        let mut r_limbs = [0u64; 8];
        r_limbs[4] = 1;
        let one = U512(r_limbs).rem(m);
        // r2 = R^2 mod m = (R mod m)^2 mod m.
        let r2 = one.full_mul(&one).rem(m);
        Some(MontgomeryCtx { m: *m, n0, r2, one })
    }

    /// Returns the modulus this context reduces by.
    pub fn modulus(&self) -> &U256 {
        &self.m
    }

    /// Returns the Montgomery form of one (`R mod m`).
    pub fn one_mont(&self) -> U256 {
        self.one
    }

    /// Converts `a` into Montgomery form (`a·R mod m`). `a` need not be
    /// reduced.
    pub fn to_mont(&self, a: &U256) -> U256 {
        self.mont_mul(a, &self.r2)
    }

    /// Converts out of Montgomery form (`a·R^{-1} mod m`).
    pub fn from_mont(&self, a: &U256) -> U256 {
        self.redc(U512::from_u256(a))
    }

    /// Montgomery product: `a · b · R^{-1} mod m`.
    ///
    /// When both inputs are in Montgomery form the result is too; when
    /// exactly one is, the result is the plain modular product.
    pub fn mont_mul(&self, a: &U256, b: &U256) -> U256 {
        self.redc(a.full_mul(b))
    }

    /// Plain modular product `a · b mod m` (inputs in ordinary form).
    pub fn mul(&self, a: &U256, b: &U256) -> U256 {
        // mont_mul(a·R, b) = a·R·b·R^{-1} = a·b mod m: one conversion, two
        // REDCs, no division.
        self.mont_mul(&self.to_mont(a), b)
    }

    /// Montgomery reduction (REDC): folds a 512-bit `t < m·R` down to
    /// `t · R^{-1} mod m`, one limb at a time.
    fn redc(&self, t: U512) -> U256 {
        let m = self.m.limbs();
        let mut t = t.0;
        // The running value can exceed 512 bits by one bit when m is close
        // to 2^256; track that bit separately.
        let mut overflow = 0u64;
        for i in 0..4 {
            // Choose u so that t + u·m·B^i clears limb i, then add it in.
            let u = t[i].wrapping_mul(self.n0) as u128;
            let mut carry = 0u128;
            for j in 0..4 {
                let cur = t[i + j] as u128 + u * m[j] as u128 + carry;
                t[i + j] = cur as u64;
                carry = cur >> 64;
            }
            let mut k = i + 4;
            while carry != 0 && k < 8 {
                let cur = t[k] as u128 + carry;
                t[k] = cur as u64;
                carry = cur >> 64;
                k += 1;
            }
            overflow += carry as u64;
        }
        // The low four limbs are now zero; the result is the high half,
        // reduced once if it (plus the overflow bit) reaches m.
        let res = U256([t[4], t[5], t[6], t[7]]);
        if overflow != 0 || res >= self.m {
            res.wrapping_sub(&self.m)
        } else {
            res
        }
    }

    /// Computes `base^exp mod m` by fixed-window exponentiation in
    /// Montgomery form: a 16-entry table of base powers, then four
    /// squarings and at most one table multiply per exponent nibble.
    pub fn pow(&self, base: &U256, exp: &U256) -> U256 {
        self.from_mont(&self.pow_mont(&self.to_mont(base), exp))
    }

    /// The same fixed-window exponentiation staying entirely in the
    /// Montgomery domain: `base_m` and the result are in Montgomery form.
    /// Useful for composing multi-exponentiations without round-tripping
    /// through ordinary representation.
    pub fn pow_mont(&self, base_m: &U256, exp: &U256) -> U256 {
        let nbits = exp.bits();
        if nbits == 0 {
            return self.one;
        }
        let table = self.window_table(base_m);
        let top = (nbits - 1) / WINDOW_BITS;
        // Secret-indexed window lookup: a documented simulation tradeoff —
        // the crate is explicit that nothing here is constant-time.
        let mut acc = table[Self::window(exp, top)]; // #[allow(monatt::const_time)]
        for w in (0..top).rev() {
            for _ in 0..WINDOW_BITS {
                acc = self.mont_mul(&acc, &acc);
            }
            let d = Self::window(exp, w);
            if d != 0 {
                acc = self.mont_mul(&acc, &table[d]);
            }
        }
        acc
    }

    /// Straus interleaved multi-exponentiation, entirely in the Montgomery
    /// domain: computes `Π bases_m[i]^{exps[i]} mod m` with one shared
    /// squaring chain.
    ///
    /// The squarings — the dominant fixed cost of a lone
    /// [`Self::pow_mont`] — are paid once for the whole product instead of
    /// once per factor. That amortization is what makes
    /// random-linear-combination batch verification cheaper than verifying
    /// signatures one at a time. Each base gets its own 16-entry window
    /// table walked sequentially per window position — an odd-power
    /// sliding-window variant does fewer multiplies on paper but loses in
    /// practice to this layout's prefetch-friendly linear table scans. The
    /// chain length follows the *longest* exponent, so short (e.g. 64-bit)
    /// batch weights only pay their own window multiplies.
    ///
    /// The two slices are walked in lockstep; surplus elements of the
    /// longer slice are ignored.
    pub fn multi_pow_mont(&self, bases_m: &[U256], exps: &[U256]) -> U256 {
        let pairs = bases_m.len().min(exps.len());
        let nbits = exps[..pairs].iter().map(|x| x.bits()).max().unwrap_or(0);
        if nbits == 0 || pairs == 0 {
            return self.one;
        }
        let tables: Vec<[U256; WINDOW_TABLE]> = bases_m[..pairs]
            .iter()
            .map(|b| self.window_table(b))
            .collect();
        let top = (nbits - 1) / WINDOW_BITS;
        let mut acc = self.one;
        for w in (0..=top).rev() {
            if w != top {
                for _ in 0..WINDOW_BITS {
                    acc = self.mont_mul(&acc, &acc);
                }
            }
            for (table, x) in tables.iter().zip(exps[..pairs].iter()) {
                let d = Self::window(x, w);
                if d != 0 {
                    acc = self.mont_mul(&acc, &table[d]);
                }
            }
        }
        acc
    }

    /// Computes `a^x · b^y mod m` with a single shared squaring chain
    /// (Straus/Shamir double-scalar exponentiation). The combined product
    /// `a·b` is precomputed so each bit position costs one squaring plus at
    /// most one multiply, instead of the two full chains separate
    /// exponentiations would pay.
    pub fn pow_double(&self, a: &U256, x: &U256, b: &U256, y: &U256) -> U256 {
        let am = self.to_mont(a);
        let bm = self.to_mont(b);
        let abm = self.mont_mul(&am, &bm);
        let mut acc = self.one;
        for i in (0..x.bits().max(y.bits())).rev() {
            acc = self.mont_mul(&acc, &acc);
            match (x.bit(i), y.bit(i)) {
                (true, true) => acc = self.mont_mul(&acc, &abm),
                (true, false) => acc = self.mont_mul(&acc, &am),
                (false, true) => acc = self.mont_mul(&acc, &bm),
                (false, false) => {}
            }
        }
        self.from_mont(&acc)
    }

    /// Builds the window table `[1, b, b^2, ..., b^15]` (Montgomery form).
    fn window_table(&self, base_m: &U256) -> [U256; WINDOW_TABLE] {
        let mut table = [self.one; WINDOW_TABLE];
        table[1] = *base_m;
        for d in 2..WINDOW_TABLE {
            table[d] = self.mont_mul(&table[d - 1], base_m);
        }
        table
    }

    /// Extracts the `w`-th 4-bit window of `exp` (window 0 is least
    /// significant). Window width divides the limb width, so no window
    /// straddles a limb boundary.
    fn window(exp: &U256, w: usize) -> usize {
        let limb = exp.limbs()[w * WINDOW_BITS / 64];
        ((limb >> ((w * WINDOW_BITS) % 64)) & (WINDOW_TABLE as u64 - 1)) as usize
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn u(v: u64) -> U256 {
        U256::from_u64(v)
    }

    #[test]
    fn rejects_even_and_trivial_moduli() {
        assert!(MontgomeryCtx::new(&U256::ZERO).is_none());
        assert!(MontgomeryCtx::new(&U256::ONE).is_none());
        assert!(MontgomeryCtx::new(&u(100)).is_none());
        assert!(MontgomeryCtx::new(&u(97)).is_some());
        assert!(MontgomeryCtx::new(&U256::MAX).is_some());
    }

    #[test]
    fn round_trip_through_montgomery_form() {
        let ctx = MontgomeryCtx::new(&u(1_000_003)).unwrap();
        for v in [0u64, 1, 2, 999_999, 1_000_002] {
            let m = ctx.to_mont(&u(v));
            assert_eq!(ctx.from_mont(&m), u(v), "v = {v}");
        }
    }

    #[test]
    fn mul_matches_u128_arithmetic() {
        let ctx = MontgomeryCtx::new(&u(0xffff_fffb)).unwrap(); // prime
        for a in [3u64, 12_345, 0xffff_fffa] {
            for b in [1u64, 7, 0x8000_0000] {
                let expect = (a as u128 * b as u128 % 0xffff_fffbu128) as u64;
                assert_eq!(ctx.mul(&u(a), &u(b)), u(expect), "{a} * {b}");
            }
        }
    }

    #[test]
    fn unreduced_inputs_are_handled() {
        let ctx = MontgomeryCtx::new(&u(97)).unwrap();
        assert_eq!(ctx.mul(&u(1000), &u(1000)), u(1000 * 1000 % 97));
        assert_eq!(ctx.pow(&u(1000), &u(3)), u(1000u64.pow(3) % 97));
    }

    #[test]
    fn pow_edge_cases() {
        let ctx = MontgomeryCtx::new(&u(13)).unwrap();
        assert_eq!(ctx.pow(&u(5), &U256::ZERO), U256::ONE);
        assert_eq!(ctx.pow(&u(5), &U256::ONE), u(5));
        assert_eq!(ctx.pow(&u(5), &u(12)), U256::ONE); // Fermat
        assert_eq!(ctx.pow(&U256::ZERO, &u(4)), U256::ZERO);
        assert_eq!(ctx.pow(&U256::ZERO, &U256::ZERO), U256::ONE);
    }

    #[test]
    fn maximal_modulus_overflow_path() {
        // m = 2^256 - 1 forces the 513-bit intermediate inside REDC.
        let ctx = MontgomeryCtx::new(&U256::MAX).unwrap();
        let a = U256::MAX.wrapping_sub(&u(2));
        let b = U256::MAX.wrapping_sub(&u(5));
        let expect = a.full_mul(&b).rem_binary(&U256::MAX);
        assert_eq!(ctx.mul(&a, &b), expect);
    }

    #[test]
    fn multi_pow_matches_separate_exponentiations() {
        let p = U256::from_hex(crate::group::DEFAULT_P_HEX).unwrap();
        let ctx = MontgomeryCtx::new(&p).unwrap();
        let bases = [u(3), u(7), u(11), u(101)];
        let exps = [
            U256::from_hex("deadbeefcafef00d").unwrap(),
            U256::from_hex("0123456789abcdef0123456789abcdef").unwrap(),
            U256::ONE,
            U256::ZERO,
        ];
        let bases_m: Vec<U256> = bases.iter().map(|b| ctx.to_mont(b)).collect();
        let mut expect = U256::ONE;
        for (b, x) in bases.iter().zip(exps.iter()) {
            expect = ctx.mul(&expect, &ctx.pow(b, x));
        }
        let got = ctx.from_mont(&ctx.multi_pow_mont(&bases_m, &exps));
        assert_eq!(got, expect);
        // Degenerate shapes.
        assert_eq!(ctx.multi_pow_mont(&[], &[]), ctx.one_mont());
        assert_eq!(
            ctx.multi_pow_mont(&bases_m, &[U256::ZERO; 4]),
            ctx.one_mont()
        );
        // Lockstep walk ignores surplus elements of the longer slice.
        assert_eq!(
            ctx.multi_pow_mont(&bases_m[..2], &exps),
            ctx.multi_pow_mont(&bases_m[..2], &exps[..2])
        );
    }

    #[test]
    fn pow_double_matches_separate_exponentiations() {
        let p = U256::from_hex(crate::group::DEFAULT_P_HEX).unwrap();
        let ctx = MontgomeryCtx::new(&p).unwrap();
        let a = u(7);
        let b = u(11);
        let x = U256::from_hex("deadbeefcafef00d1234").unwrap();
        let y = U256::from_hex("0123456789abcdef").unwrap();
        let separate = ctx.mul(&ctx.pow(&a, &x), &ctx.pow(&b, &y));
        assert_eq!(ctx.pow_double(&a, &x, &b, &y), separate);
        // Degenerate exponents.
        assert_eq!(ctx.pow_double(&a, &U256::ZERO, &b, &U256::ZERO), U256::ONE);
        assert_eq!(ctx.pow_double(&a, &U256::ONE, &b, &U256::ZERO), a);
    }
}
