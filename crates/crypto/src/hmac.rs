//! HMAC-SHA256 (RFC 2104) and HKDF (RFC 5869), implemented from scratch on
//! top of [`crate::sha256`].

use crate::sha256::{sha256, Sha256, DIGEST_LEN};

const BLOCK_LEN: usize = 64;

/// Computes `HMAC-SHA256(key, message)`.
///
/// Keys longer than the 64-byte block size are first hashed, per RFC 2104.
///
/// # Examples
///
/// ```
/// use monatt_crypto::hmac::hmac_sha256;
///
/// let tag = hmac_sha256(b"key", b"The quick brown fox jumps over the lazy dog");
/// assert_eq!(tag[0], 0xf7);
/// ```
pub fn hmac_sha256(key: &[u8], message: &[u8]) -> [u8; DIGEST_LEN] {
    let mut hmac = HmacSha256::new(key);
    hmac.update(message);
    hmac.finalize()
}

/// A streaming HMAC-SHA256 computation.
#[derive(Clone)]
pub struct HmacSha256 {
    inner: Sha256,
    opad_key: [u8; BLOCK_LEN],
}

impl std::fmt::Debug for HmacSha256 {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        // The opad key is the MAC key XOR a fixed pad: never print it.
        f.debug_struct("HmacSha256").finish_non_exhaustive()
    }
}

impl Drop for HmacSha256 {
    fn drop(&mut self) {
        crate::zeroize::zeroize_bytes(&mut self.opad_key);
    }
}

impl HmacSha256 {
    /// Creates an HMAC instance keyed with `key`.
    pub fn new(key: &[u8]) -> Self {
        let mut key_block = [0u8; BLOCK_LEN];
        if key.len() > BLOCK_LEN {
            key_block[..DIGEST_LEN].copy_from_slice(&sha256(key));
        } else {
            key_block[..key.len()].copy_from_slice(key);
        }
        let mut ipad = [0u8; BLOCK_LEN];
        let mut opad = [0u8; BLOCK_LEN];
        for i in 0..BLOCK_LEN {
            ipad[i] = key_block[i] ^ 0x36;
            opad[i] = key_block[i] ^ 0x5c;
        }
        let mut inner = Sha256::new();
        inner.update(&ipad);
        HmacSha256 {
            inner,
            opad_key: opad,
        }
    }

    /// Absorbs message bytes.
    pub fn update(&mut self, data: &[u8]) {
        self.inner.update(data);
    }

    /// Finishes and returns the 32-byte tag.
    pub fn finalize(mut self) -> [u8; DIGEST_LEN] {
        // `Drop` forbids moving `inner` out of `self`; swap it instead
        // (the replacement hasher is scrubbed along with `self`).
        let inner = std::mem::take(&mut self.inner);
        let inner_digest = inner.finalize();
        let mut outer = Sha256::new();
        outer.update(&self.opad_key);
        outer.update(&inner_digest);
        outer.finalize()
    }
}

/// Constant-time tag comparison; delegates to [`crate::zeroize::ct_eq`],
/// the single comparison primitive the `monatt-lint` `const_time` rule
/// permits on MAC material.
pub fn verify_tag(expected: &[u8], actual: &[u8]) -> bool {
    crate::zeroize::ct_eq(expected, actual)
}

/// HKDF-Extract: `PRK = HMAC(salt, ikm)`.
pub fn hkdf_extract(salt: &[u8], ikm: &[u8]) -> [u8; DIGEST_LEN] {
    hmac_sha256(salt, ikm)
}

/// HKDF-Expand: derives `len` bytes of output keying material from `prk`
/// bound to `info`.
///
/// # Panics
///
/// Panics if `len > 255 * 32` (the RFC 5869 limit).
pub fn hkdf_expand(prk: &[u8; DIGEST_LEN], info: &[u8], len: usize) -> Vec<u8> {
    assert!(len <= 255 * DIGEST_LEN, "hkdf output too long");
    let mut okm = Vec::with_capacity(len);
    let mut prev: Vec<u8> = Vec::new();
    let mut counter = 1u8;
    while okm.len() < len {
        let mut mac = HmacSha256::new(prk);
        mac.update(&prev);
        mac.update(info);
        mac.update(&[counter]);
        let block = mac.finalize();
        let take = (len - okm.len()).min(DIGEST_LEN);
        okm.extend_from_slice(&block[..take]);
        prev = block.to_vec();
        counter = counter.wrapping_add(1);
    }
    okm
}

/// One-call HKDF: extract with `salt` then expand to `len` bytes bound to
/// `info`.
pub fn hkdf(salt: &[u8], ikm: &[u8], info: &[u8], len: usize) -> Vec<u8> {
    let prk = hkdf_extract(salt, ikm);
    hkdf_expand(&prk, info, len)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hex(bytes: &[u8]) -> String {
        bytes.iter().map(|b| format!("{:02x}", b)).collect()
    }

    #[test]
    fn rfc4231_case_1() {
        let key = [0x0b; 20];
        let tag = hmac_sha256(&key, b"Hi There");
        assert_eq!(
            hex(&tag),
            "b0344c61d8db38535ca8afceaf0bf12b881dc200c9833da726e9376c2e32cff7"
        );
    }

    #[test]
    fn rfc4231_case_2() {
        let tag = hmac_sha256(b"Jefe", b"what do ya want for nothing?");
        assert_eq!(
            hex(&tag),
            "5bdcc146bf60754e6a042426089575c75a003f089d2739839dec58b964ec3843"
        );
    }

    #[test]
    fn rfc4231_long_key() {
        // Case 6: 131-byte key (hashed first).
        let key = [0xaa; 131];
        let tag = hmac_sha256(
            &key,
            b"Test Using Larger Than Block-Size Key - Hash Key First",
        );
        assert_eq!(
            hex(&tag),
            "60e431591ee0b67f0d8a26aacbf5b77f8e0bc6213728c5140546040f0ee37f54"
        );
    }

    #[test]
    fn streaming_matches_oneshot() {
        let mut mac = HmacSha256::new(b"key");
        mac.update(b"hello ");
        mac.update(b"world");
        assert_eq!(mac.finalize(), hmac_sha256(b"key", b"hello world"));
    }

    #[test]
    fn verify_tag_behaviour() {
        let t = hmac_sha256(b"k", b"m");
        assert!(verify_tag(&t, &t));
        let mut bad = t;
        bad[0] ^= 1;
        assert!(!verify_tag(&t, &bad));
        assert!(!verify_tag(&t, &t[..31]));
    }

    #[test]
    fn rfc5869_case_1() {
        let ikm = [0x0b; 22];
        let salt: Vec<u8> = (0..=0x0c).collect();
        let info: Vec<u8> = (0xf0..=0xf9).collect();
        let okm = hkdf(&salt, &ikm, &info, 42);
        assert_eq!(
            hex(&okm),
            "3cb25f25faacd57a90434f64d0362f2a2d2d0a90cf1a5a4c5db02d56ecc4c5bf34007208d5b887185865"
        );
    }

    #[test]
    fn hkdf_lengths() {
        let okm = hkdf(b"s", b"ikm", b"info", 0);
        assert!(okm.is_empty());
        let okm = hkdf(b"s", b"ikm", b"info", 33);
        assert_eq!(okm.len(), 33);
        let a = hkdf(b"s", b"ikm", b"info-a", 32);
        let b = hkdf(b"s", b"ikm", b"info-b", 32);
        assert_ne!(a, b, "different info must give different keys");
    }

    #[test]
    #[should_panic(expected = "hkdf output too long")]
    fn hkdf_rejects_oversize() {
        let _ = hkdf(b"s", b"ikm", b"info", 255 * 32 + 1);
    }
}
