//! # monatt-crypto
//!
//! From-scratch cryptographic substrate for the CloudMonatt reproduction.
//!
//! The CloudMonatt attestation protocol (Figure 3 of the paper) needs
//! identity signatures, per-session attestation keys, hash quotes,
//! SSL-style session-key establishment and symmetric record protection.
//! This crate provides all of those primitives without external
//! cryptography dependencies:
//!
//! * [`bigint`] — fixed-width 256/512-bit unsigned integers.
//! * [`modmath`] — modular add/sub/mul/exp/inverse.
//! * [`montgomery`] — Montgomery-form multiplication and windowed
//!   exponentiation for odd moduli (the hot-path kernels).
//! * [`group`] — a 256-bit safe-prime Schnorr group.
//! * [`sha256`] — SHA-256 (FIPS 180-4).
//! * [`hmac`] — HMAC-SHA256 and HKDF (RFCs 2104/5869).
//! * [`drbg`] — a ChaCha20-based deterministic random bit generator.
//! * [`aes`] — AES-128 with CTR mode (FIPS 197).
//! * [`schnorr`] — Schnorr signatures with deterministic nonces.
//! * [`batch`] — random-linear-combination batch verification.
//! * [`dh`] — Diffie-Hellman key agreement.
//! * [`authenc`] — encrypt-then-MAC authenticated encryption.
//! * [`zeroize`] — best-effort key zeroization and constant-time
//!   comparison (the runtime half of the `monatt-lint` secret-hygiene and
//!   constant-time rules).
//!
//! **This is a simulation substrate, not a production cryptography
//! library**: nothing is constant-time and the 256-bit mod-p group trades
//! security margin for simulation speed.
//!
//! ## Example: sign and verify an attestation report
//!
//! ```
//! use monatt_crypto::drbg::Drbg;
//! use monatt_crypto::schnorr::SigningKey;
//!
//! # fn main() -> Result<(), monatt_crypto::error::CryptoError> {
//! let mut rng = Drbg::from_seed(7);
//! let identity = SigningKey::generate(&mut rng);
//! let sig = identity.sign(b"report: VM 12 healthy");
//! identity.verifying_key().verify(b"report: VM 12 healthy", &sig)?;
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]

pub mod aes;
pub mod authenc;
pub mod batch;
pub mod bigint;
pub mod dh;
pub mod drbg;
pub mod error;
pub mod group;
pub mod hmac;
pub mod modmath;
pub mod montgomery;
pub mod schnorr;
pub mod sha256;
pub mod zeroize;

pub use authenc::SealKey;
pub use batch::{batch_verify, batch_verify_each, BatchItem};
pub use bigint::U256;
pub use dh::{EphemeralSecret, PublicShare};
pub use drbg::Drbg;
pub use error::CryptoError;
pub use schnorr::{Signature, SigningKey, VerifyingKey};
pub use sha256::{sha256, sha256_concat, Sha256};
pub use zeroize::{ct_eq, zeroize_bytes, Zeroizing};
