//! Modular arithmetic over 256-bit moduli: addition, subtraction,
//! multiplication, exponentiation and inversion (via Fermat's little
//! theorem, so inversion requires a prime modulus).

use crate::bigint::U256;

/// Computes `(a + b) mod m`.
///
/// Inputs need not be reduced; the result always is.
///
/// # Panics
///
/// Panics if `m` is zero.
///
/// # Examples
///
/// ```
/// use monatt_crypto::bigint::U256;
/// use monatt_crypto::modmath::mod_add;
///
/// let m = U256::from_u64(97);
/// assert_eq!(mod_add(&U256::from_u64(90), &U256::from_u64(10), &m), U256::from_u64(3));
/// ```
pub fn mod_add(a: &U256, b: &U256, m: &U256) -> U256 {
    let a = a.rem(m);
    let b = b.rem(m);
    let (sum, carry) = a.overflowing_add(&b);
    if carry || sum >= *m {
        sum.wrapping_sub(m)
    } else {
        sum
    }
}

/// Computes `(a - b) mod m`.
///
/// Inputs need not be reduced; the result always is.
///
/// # Panics
///
/// Panics if `m` is zero.
pub fn mod_sub(a: &U256, b: &U256, m: &U256) -> U256 {
    let a = a.rem(m);
    let b = b.rem(m);
    match a.checked_sub(&b) {
        Some(v) => v,
        None => a.wrapping_add(m).wrapping_sub(&b),
    }
}

/// Computes `(a * b) mod m` via a full 512-bit product.
///
/// # Panics
///
/// Panics if `m` is zero.
pub fn mod_mul(a: &U256, b: &U256, m: &U256) -> U256 {
    a.full_mul(b).rem(m)
}

/// Computes `base^exp mod m` by left-to-right square-and-multiply.
///
/// # Panics
///
/// Panics if `m` is zero. `mod_exp(_, _, 1)` is zero for all inputs.
///
/// # Examples
///
/// ```
/// use monatt_crypto::bigint::U256;
/// use monatt_crypto::modmath::mod_exp;
///
/// let m = U256::from_u64(1_000_000_007);
/// assert_eq!(
///     mod_exp(&U256::from_u64(2), &U256::from_u64(10), &m),
///     U256::from_u64(1024)
/// );
/// ```
pub fn mod_exp(base: &U256, exp: &U256, m: &U256) -> U256 {
    assert!(!m.is_zero(), "modulus must be nonzero");
    if *m == U256::ONE {
        return U256::ZERO;
    }
    let mut result = U256::ONE;
    let base = base.rem(m);
    let nbits = exp.bits();
    for i in (0..nbits).rev() {
        result = mod_mul(&result, &result, m);
        if exp.bit(i) {
            result = mod_mul(&result, &base, m);
        }
    }
    result
}

/// Computes the modular inverse `a^(-1) mod p` for a **prime** `p` using
/// Fermat's little theorem (`a^(p-2) mod p`).
///
/// Returns `None` if `a ≡ 0 (mod p)`, which has no inverse.
///
/// # Panics
///
/// Panics if `p < 2`. The primality of `p` is the caller's responsibility;
/// for composite `p` the result is meaningless.
pub fn mod_inv_prime(a: &U256, p: &U256) -> Option<U256> {
    assert!(*p >= U256::from_u64(2), "modulus must be at least 2");
    let a = a.rem(p);
    if a.is_zero() {
        return None;
    }
    let exp = p.wrapping_sub(&U256::from_u64(2));
    Some(mod_exp(&a, &exp, p))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn u(v: u64) -> U256 {
        U256::from_u64(v)
    }

    #[test]
    fn add_wraps() {
        let m = u(97);
        assert_eq!(mod_add(&u(96), &u(1), &m), U256::ZERO);
        assert_eq!(mod_add(&u(50), &u(50), &m), u(3));
    }

    #[test]
    fn add_handles_unreduced_inputs() {
        let m = u(7);
        assert_eq!(mod_add(&u(100), &u(100), &m), u(200 % 7));
    }

    #[test]
    fn add_near_max_modulus() {
        // Exercise the carry-out path: m close to 2^256.
        let m = U256::MAX;
        let a = U256::MAX.wrapping_sub(&u(1)); // m - 1
        let s = mod_add(&a, &a, &m);
        assert_eq!(s, U256::MAX.wrapping_sub(&u(2)));
    }

    #[test]
    fn sub_wraps() {
        let m = u(97);
        assert_eq!(mod_sub(&u(3), &u(5), &m), u(95));
        assert_eq!(mod_sub(&u(5), &u(3), &m), u(2));
    }

    #[test]
    fn mul_matches_u64() {
        let m = u(1_000_003);
        assert_eq!(
            mod_mul(&u(999_999), &u(999_998), &m),
            u((999_999u64 * 999_998) % 1_000_003)
        );
    }

    #[test]
    fn exp_edge_cases() {
        let m = u(13);
        assert_eq!(mod_exp(&u(5), &U256::ZERO, &m), U256::ONE);
        assert_eq!(mod_exp(&u(5), &U256::ONE, &m), u(5));
        assert_eq!(mod_exp(&u(5), &u(12), &m), U256::ONE); // Fermat
        assert_eq!(mod_exp(&u(5), &u(3), &U256::ONE), U256::ZERO);
    }

    #[test]
    fn inv_prime() {
        let p = u(97);
        for a in 1..97u64 {
            let inv = mod_inv_prime(&u(a), &p).unwrap();
            assert_eq!(mod_mul(&u(a), &inv, &p), U256::ONE, "a = {a}");
        }
        assert_eq!(mod_inv_prime(&U256::ZERO, &p), None);
        assert_eq!(mod_inv_prime(&u(97), &p), None);
    }
}
