//! Modular arithmetic over 256-bit moduli: addition, subtraction,
//! multiplication, exponentiation and inversion (via Fermat's little
//! theorem, so inversion requires a prime modulus).
//!
//! Multiplication and exponentiation dispatch on the modulus: odd moduli
//! (every prime the protocol uses) go through a thread-locally cached
//! [`MontgomeryCtx`], which replaces per-step long division with REDC and
//! windowed exponentiation; even moduli fall back to the word-level
//! division in [`bigint`](crate::bigint). The original bit-by-bit paths
//! are kept as [`mod_mul_ref`] / [`mod_exp_ref`] so differential tests and
//! benchmarks can check the fast paths against a simple oracle.

use crate::bigint::U256;
use crate::montgomery::MontgomeryCtx;
use std::cell::RefCell;
use std::rc::Rc;

/// How many Montgomery contexts each thread keeps warm. The protocol only
/// alternates between `p` and `q` (plus the occasional test modulus), so a
/// handful suffices.
const CTX_CACHE_CAP: usize = 4;

thread_local! {
    /// MRU-ordered cache of Montgomery contexts, keyed by modulus.
    static CTX_CACHE: RefCell<Vec<Rc<MontgomeryCtx>>> = const { RefCell::new(Vec::new()) };
}

/// Returns a (cached) Montgomery context for `m`, or `None` when `m` is
/// not Montgomery-friendly (even or `<= 1`).
fn ctx_for(m: &U256) -> Option<Rc<MontgomeryCtx>> {
    CTX_CACHE.with(|cache| {
        let mut cache = cache.borrow_mut();
        if let Some(pos) = cache.iter().position(|c| c.modulus() == m) {
            let ctx = cache.remove(pos);
            cache.insert(0, Rc::clone(&ctx));
            return Some(ctx);
        }
        let ctx = Rc::new(MontgomeryCtx::new(m)?);
        cache.insert(0, Rc::clone(&ctx));
        cache.truncate(CTX_CACHE_CAP);
        Some(ctx)
    })
}

/// Computes `(a + b) mod m`.
///
/// Inputs need not be reduced; the result always is.
///
/// # Panics
///
/// Panics if `m` is zero.
///
/// # Examples
///
/// ```
/// use monatt_crypto::bigint::U256;
/// use monatt_crypto::modmath::mod_add;
///
/// let m = U256::from_u64(97);
/// assert_eq!(mod_add(&U256::from_u64(90), &U256::from_u64(10), &m), U256::from_u64(3));
/// ```
pub fn mod_add(a: &U256, b: &U256, m: &U256) -> U256 {
    let a = a.rem(m);
    let b = b.rem(m);
    let (sum, carry) = a.overflowing_add(&b);
    if carry || sum >= *m {
        sum.wrapping_sub(m)
    } else {
        sum
    }
}

/// Computes `(a - b) mod m`.
///
/// Inputs need not be reduced; the result always is.
///
/// # Panics
///
/// Panics if `m` is zero.
pub fn mod_sub(a: &U256, b: &U256, m: &U256) -> U256 {
    let a = a.rem(m);
    let b = b.rem(m);
    match a.checked_sub(&b) {
        Some(v) => v,
        None => a.wrapping_add(m).wrapping_sub(&b),
    }
}

/// Computes `(a * b) mod m`.
///
/// Odd moduli use a cached Montgomery context (convert one factor, two
/// REDC passes, no division); even moduli take the full 512-bit product
/// and divide.
///
/// # Panics
///
/// Panics if `m` is zero.
pub fn mod_mul(a: &U256, b: &U256, m: &U256) -> U256 {
    match ctx_for(m) {
        Some(ctx) => ctx.mul(a, b),
        None => a.full_mul(b).rem(m),
    }
}

/// Computes `(a * b) mod m` by the original binary long-division path.
///
/// This is the reference oracle the Montgomery and word-division paths are
/// differentially tested against; it is not used by the protocol.
///
/// # Panics
///
/// Panics if `m` is zero.
pub fn mod_mul_ref(a: &U256, b: &U256, m: &U256) -> U256 {
    a.full_mul(b).rem_binary(m)
}

/// Computes `base^exp mod m` by left-to-right square-and-multiply.
///
/// # Panics
///
/// Panics if `m` is zero. `mod_exp(_, _, 1)` is zero for all inputs.
///
/// # Examples
///
/// ```
/// use monatt_crypto::bigint::U256;
/// use monatt_crypto::modmath::mod_exp;
///
/// let m = U256::from_u64(1_000_000_007);
/// assert_eq!(
///     mod_exp(&U256::from_u64(2), &U256::from_u64(10), &m),
///     U256::from_u64(1024)
/// );
/// ```
pub fn mod_exp(base: &U256, exp: &U256, m: &U256) -> U256 {
    assert!(!m.is_zero(), "modulus must be nonzero");
    if *m == U256::ONE {
        return U256::ZERO;
    }
    if let Some(ctx) = ctx_for(m) {
        return ctx.pow(base, exp);
    }
    // Even modulus: square-and-multiply over word-level division.
    let mut result = U256::ONE;
    let base = base.rem(m);
    for i in (0..exp.bits()).rev() {
        result = result.full_mul(&result).rem(m);
        // Variable-time by design: the simulation substrate documents that
        // nothing here is constant-time (see crate docs).
        // #[allow(monatt::const_time)]
        if exp.bit(i) {
            result = result.full_mul(&base).rem(m);
        }
    }
    result
}

/// Computes `base^exp mod m` by the original square-and-multiply over
/// binary long division.
///
/// Kept as the reference oracle for differential tests and as the
/// "before" kernel in benchmarks; it is not used by the protocol.
///
/// # Panics
///
/// Panics if `m` is zero. `mod_exp_ref(_, _, 1)` is zero for all inputs.
pub fn mod_exp_ref(base: &U256, exp: &U256, m: &U256) -> U256 {
    assert!(!m.is_zero(), "modulus must be nonzero");
    if *m == U256::ONE {
        return U256::ZERO;
    }
    let mut result = U256::ONE;
    let base = base.rem_binary(m);
    for i in (0..exp.bits()).rev() {
        result = mod_mul_ref(&result, &result, m);
        // Reference oracle, not protocol code; variable-time by design.
        // #[allow(monatt::const_time)]
        if exp.bit(i) {
            result = mod_mul_ref(&result, &base, m);
        }
    }
    result
}

/// Computes the modular inverse `a^(-1) mod p` for a **prime** `p` using
/// Fermat's little theorem (`a^(p-2) mod p`).
///
/// Returns `None` if `a ≡ 0 (mod p)`, which has no inverse.
///
/// # Panics
///
/// Panics if `p < 2`. The primality of `p` is the caller's responsibility;
/// for composite `p` the result is meaningless.
pub fn mod_inv_prime(a: &U256, p: &U256) -> Option<U256> {
    assert!(*p >= U256::from_u64(2), "modulus must be at least 2");
    let a = a.rem(p);
    if a.is_zero() {
        return None;
    }
    let exp = p.wrapping_sub(&U256::from_u64(2));
    Some(mod_exp(&a, &exp, p))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn u(v: u64) -> U256 {
        U256::from_u64(v)
    }

    #[test]
    fn add_wraps() {
        let m = u(97);
        assert_eq!(mod_add(&u(96), &u(1), &m), U256::ZERO);
        assert_eq!(mod_add(&u(50), &u(50), &m), u(3));
    }

    #[test]
    fn add_handles_unreduced_inputs() {
        let m = u(7);
        assert_eq!(mod_add(&u(100), &u(100), &m), u(200 % 7));
    }

    #[test]
    fn add_near_max_modulus() {
        // Exercise the carry-out path: m close to 2^256.
        let m = U256::MAX;
        let a = U256::MAX.wrapping_sub(&u(1)); // m - 1
        let s = mod_add(&a, &a, &m);
        assert_eq!(s, U256::MAX.wrapping_sub(&u(2)));
    }

    #[test]
    fn sub_wraps() {
        let m = u(97);
        assert_eq!(mod_sub(&u(3), &u(5), &m), u(95));
        assert_eq!(mod_sub(&u(5), &u(3), &m), u(2));
    }

    #[test]
    fn mul_matches_u64() {
        let m = u(1_000_003);
        assert_eq!(
            mod_mul(&u(999_999), &u(999_998), &m),
            u((999_999u64 * 999_998) % 1_000_003)
        );
    }

    #[test]
    fn exp_edge_cases() {
        let m = u(13);
        assert_eq!(mod_exp(&u(5), &U256::ZERO, &m), U256::ONE);
        assert_eq!(mod_exp(&u(5), &U256::ONE, &m), u(5));
        assert_eq!(mod_exp(&u(5), &u(12), &m), U256::ONE); // Fermat
        assert_eq!(mod_exp(&u(5), &u(3), &U256::ONE), U256::ZERO);
    }

    #[test]
    fn even_modulus_falls_back_to_division() {
        // 2^255 is about as Montgomery-hostile as a modulus gets.
        let m = U256::from_limbs([0, 0, 0, 1 << 63]);
        assert_eq!(mod_mul(&u(3), &u(5), &m), u(15));
        assert_eq!(mod_exp(&u(2), &u(255), &m), U256::ZERO);
        assert_eq!(mod_exp(&u(3), &u(4), &u(6)), u(81 % 6));
        assert_eq!(mod_mul(&u(7), &u(8), &u(10)), u(6));
    }

    #[test]
    fn fast_paths_match_reference() {
        let odd = u(0xffff_fffb);
        let even = u(0xffff_fffa);
        for m in [odd, even, U256::MAX] {
            for a in [u(0), u(1), u(12_345), U256::MAX.wrapping_sub(&u(9))] {
                for b in [u(1), u(3), u(0xdead_beef)] {
                    assert_eq!(mod_mul(&a, &b, &m), mod_mul_ref(&a, &b, &m));
                    assert_eq!(mod_exp(&a, &b, &m), mod_exp_ref(&a, &b, &m));
                }
            }
        }
    }

    #[test]
    fn inv_prime() {
        let p = u(97);
        for a in 1..97u64 {
            let inv = mod_inv_prime(&u(a), &p).unwrap();
            assert_eq!(mod_mul(&u(a), &inv, &p), U256::ONE, "a = {a}");
        }
        assert_eq!(mod_inv_prime(&U256::ZERO, &p), None);
        assert_eq!(mod_inv_prime(&u(97), &p), None);
    }
}
