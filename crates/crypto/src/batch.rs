//! Random-linear-combination batch verification of Schnorr signatures.
//!
//! A batch of `(pk_i, m_i, (r_i, s_i))` triples is accepted when
//!
//! ```text
//! g^(Σ z_i·s_i) · Π pk_i^(−z_i·e_i)  ==  Π r_i^(z_i)
//! ```
//!
//! holds for random nonzero weights `z_i`, where `e_i = H(r_i || m_i) mod
//! q`. Each genuine signature satisfies `g^(s_i) = r_i · pk_i^(e_i)`, so
//! the product of the weighted relations collapses to an identity; a
//! forged signature survives only if its error term happens to cancel
//! against the random weights, which for 64-bit weights happens with
//! probability `2^-64` per attempt.
//!
//! The win is arithmetic amortization: the two `Π`-products run as Straus
//! interleaved multi-exponentiations ([`MontgomeryCtx::multi_pow_mont`])
//! that pay the ~256-squaring chain **once per batch** instead of once per
//! signature, and the `g` factor comes from the fixed-base comb. At batch
//! 64 this verifies quotes several times faster than a serial loop.
//!
//! ## Weight determinism
//!
//! The weights come from a dedicated [`Drbg`] seeded by hashing the entire
//! batch (domain tag, each key, each commitment, each response, each
//! message digest, all length-framed by position). Re-verifying the same
//! batch therefore draws the same weights — a requirement for the
//! simulator's reproducible traces — while a forger must commit to every
//! signature before the weights exist, which is exactly the Fiat–Shamir
//! argument that makes fixed-width random weights sound.
//!
//! A failed batch says only "at least one signature is bad". Callers that
//! need per-item verdicts use [`batch_verify_each`], which falls back to
//! serial verification to identify the culprits — a forged quote must
//! never poison its batch-mates.

use crate::bigint::U256;
use crate::drbg::Drbg;
use crate::error::CryptoError;
use crate::group::Group;
use crate::modmath::{mod_add, mod_mul, mod_sub};
use crate::montgomery::MontgomeryCtx;
use crate::schnorr::{challenge, Signature, VerifyingKey};
use crate::sha256::Sha256;

/// Domain-separation tag for the weight-DRBG seed.
const WEIGHT_DST: &[u8] = b"monatt/batch-weights/v1";

/// One entry of a verification batch: signer, message, signature.
pub type BatchItem<'a> = (VerifyingKey, &'a [u8], Signature);

/// Verifies a whole batch of Schnorr signatures at once.
///
/// Empty batches are vacuously valid; singleton batches delegate to the
/// plain serial [`VerifyingKey::verify`] (the batch equation only pays for
/// itself from two items up).
///
/// # Errors
///
/// Returns [`CryptoError::InvalidSignature`] if *any* signature in the
/// batch fails — without identifying which. Use [`batch_verify_each`]
/// when per-item verdicts are needed.
pub fn batch_verify(items: &[BatchItem<'_>]) -> Result<(), CryptoError> {
    let grp = Group::default_group();
    match items {
        [] => return Ok(()),
        [(key, msg, sig)] => return key.verify(msg, sig),
        _ => {}
    }
    // Range checks up front: an out-of-range component is an outright
    // reject, and admitting it to the algebra below would let e.g. s >= q
    // alias a valid response.
    for (_, _, sig) in items {
        if sig.s >= grp.q || sig.r.is_zero() || sig.r >= grp.p {
            return Err(CryptoError::InvalidSignature);
        }
    }
    let weights = batch_weights(items);
    // Scalar arithmetic mod q runs through its own Montgomery context: the
    // per-item products z_i·s_i and z_i·e_i would otherwise pay a slow
    // division-based reduction each. q is an odd prime, so the context
    // always exists; the modmath fallback keeps this panic-free anyway.
    let qctx = MontgomeryCtx::new(&grp.q);
    let mul_q = |a: &U256, b: &U256| match &qctx {
        Some(ctx) => ctx.mul(a, b),
        None => mod_mul(a, b, &grp.q),
    };
    let mctx = grp.mont_ctx();
    let mut zs_sum = U256::ZERO;
    let mut pk_bases = Vec::with_capacity(items.len());
    let mut pk_exps = Vec::with_capacity(items.len());
    let mut r_bases = Vec::with_capacity(items.len());
    // Distinct keys seen so far, each mapped to its slot in `pk_bases`.
    // Real batches repeat keys heavily — one identity key signs every
    // AVK binding from a server, and a reused AVK signs many quotes —
    // and `pk^a · pk^b = pk^(a+b mod q)` (the key has order q), so each
    // repeat folds into an existing exponent instead of adding another
    // 256-bit base to the multi-exponentiation.
    let mut seen: Vec<(U256, usize)> = Vec::with_capacity(items.len());
    for ((key, msg, sig), z) in items.iter().zip(weights.iter()) {
        let e = challenge(&sig.r, msg, &grp.q);
        zs_sum = mod_add(&zs_sum, &mul_q(z, &sig.s), &grp.q);
        // pk_i^(−z_i·e_i) = pk_i^(q − z_i·e_i): the key has order q.
        let exp = mod_sub(&grp.q, &mul_q(z, &e), &grp.q);
        let element = key.element();
        match seen.iter().find(|(el, _)| *el == element) {
            Some((_, slot)) => {
                pk_exps[*slot] = mod_add(&pk_exps[*slot], &exp, &grp.q);
            }
            None => {
                seen.push((element, pk_bases.len()));
                pk_bases.push(mctx.to_mont(&element));
                pk_exps.push(exp);
            }
        }
        r_bases.push(mctx.to_mont(&sig.r));
    }
    let lhs = mctx.mont_mul(
        &grp.pow_g_mont(&zs_sum),
        &mctx.multi_pow_mont(&pk_bases, &pk_exps),
    );
    let rhs = mctx.multi_pow_mont(&r_bases, &weights);
    if lhs == rhs {
        Ok(())
    } else {
        Err(CryptoError::InvalidSignature)
    }
}

/// Verifies a batch and returns a per-item verdict.
///
/// Runs [`batch_verify`] first; when the batch equation holds every item
/// is accepted in one shot. When it fails, each signature is re-verified
/// serially so exactly the forged items are rejected and their batch-mates
/// still pass.
pub fn batch_verify_each(items: &[BatchItem<'_>]) -> Vec<Result<(), CryptoError>> {
    if batch_verify(items).is_ok() {
        vec![Ok(()); items.len()]
    } else {
        items
            .iter()
            .map(|(key, msg, sig)| key.verify(msg, sig))
            .collect()
    }
}

/// Draws the 64-bit nonzero batch weights from a DRBG seeded over the
/// batch contents (see the module docs for the determinism argument).
fn batch_weights(items: &[BatchItem<'_>]) -> Vec<U256> {
    let mut h = Sha256::new();
    h.update(WEIGHT_DST);
    h.update(&(items.len() as u64).to_be_bytes());
    for (key, msg, sig) in items {
        // Keys and signatures are fixed-width; messages are framed by
        // hashing so no two batches collide across item boundaries.
        h.update(&key.to_bytes());
        h.update(&sig.to_bytes());
        let mut mh = Sha256::new();
        mh.update(msg);
        h.update(&mh.finalize());
    }
    let mut drbg = Drbg::from_seed_bytes(h.finalize());
    items
        .iter()
        .map(|_| U256::from_u64(drbg.next_u64().max(1)))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schnorr::SigningKey;

    fn keypair(seed: u64) -> SigningKey {
        SigningKey::generate(&mut Drbg::from_seed(seed))
    }

    fn batch_of(n: usize) -> (Vec<SigningKey>, Vec<Vec<u8>>) {
        let keys: Vec<SigningKey> = (0..n).map(|i| keypair(100 + i as u64)).collect();
        let msgs: Vec<Vec<u8>> = (0..n)
            .map(|i| format!("quote over measurement {i}").into_bytes())
            .collect();
        (keys, msgs)
    }

    fn items<'a>(keys: &[SigningKey], msgs: &'a [Vec<u8>]) -> Vec<BatchItem<'a>> {
        keys.iter()
            .zip(msgs.iter())
            .map(|(k, m)| (k.verifying_key(), m.as_slice(), k.sign(m)))
            .collect()
    }

    #[test]
    fn accepts_valid_batches_of_all_sizes() {
        for n in [0usize, 1, 2, 3, 8, 64] {
            let (keys, msgs) = batch_of(n);
            assert!(batch_verify(&items(&keys, &msgs)).is_ok(), "n = {n}");
        }
    }

    #[test]
    fn rejects_batch_with_one_forgery() {
        let (keys, msgs) = batch_of(8);
        let mut batch = items(&keys, &msgs);
        batch[3].2.s = mod_add(&batch[3].2.s, &U256::ONE, &Group::default_group().q);
        assert_eq!(batch_verify(&batch), Err(CryptoError::InvalidSignature));
    }

    #[test]
    fn rejects_swapped_signatures() {
        // Both signatures are individually valid but attached to the wrong
        // message; the batch relation must still catch the swap.
        let (keys, msgs) = batch_of(2);
        let mut batch = items(&keys, &msgs);
        let tmp = batch[0].2;
        batch[0].2 = batch[1].2;
        batch[1].2 = tmp;
        assert!(batch_verify(&batch).is_err());
    }

    #[test]
    fn rejects_out_of_range_member() {
        let (keys, msgs) = batch_of(4);
        let mut batch = items(&keys, &msgs);
        batch[2].2.r = U256::ZERO;
        assert!(batch_verify(&batch).is_err());
    }

    #[test]
    fn duplicate_keys_and_messages_are_fine() {
        let sk = keypair(42);
        let msg = b"same quote twice".to_vec();
        let sig = sk.sign(&msg);
        let batch = vec![
            (sk.verifying_key(), msg.as_slice(), sig),
            (sk.verifying_key(), msg.as_slice(), sig),
        ];
        assert!(batch_verify(&batch).is_ok());
    }

    #[test]
    fn fallback_identifies_exact_culprits() {
        let (keys, msgs) = batch_of(8);
        let mut batch = items(&keys, &msgs);
        batch[1].2.s = mod_add(&batch[1].2.s, &U256::ONE, &Group::default_group().q);
        batch[6].2.s = mod_add(&batch[6].2.s, &U256::ONE, &Group::default_group().q);
        let verdicts = batch_verify_each(&batch);
        for (i, v) in verdicts.iter().enumerate() {
            if i == 1 || i == 6 {
                assert!(v.is_err(), "forged item {i} must be rejected");
            } else {
                assert!(v.is_ok(), "honest item {i} must survive");
            }
        }
    }

    #[test]
    fn weights_are_deterministic() {
        let (keys, msgs) = batch_of(4);
        let batch = items(&keys, &msgs);
        assert_eq!(batch_weights(&batch), batch_weights(&batch));
        let (keys2, msgs2) = batch_of(5);
        let batch2 = items(&keys2, &msgs2);
        assert_ne!(batch_weights(&batch)[0], batch_weights(&batch2)[0]);
    }
}
