//! Fixed-width unsigned big integers: [`U256`] and the crate-internal
//! [`U512`] used as an intermediate for 256-bit modular multiplication.
//!
//! Limbs are stored little-endian (`limbs[0]` is least significant).
//! Modular reduction uses word-level long division (Knuth's Algorithm D),
//! which processes 64 bits per step instead of one; the original bit-by-bit
//! binary division is retained as [`U512::rem_binary`] so differential tests
//! can cross-check the fast path against the easy-to-audit one. None of this
//! code is constant-time; the crate is a simulation substrate, not a
//! production cryptography library.

use std::cmp::Ordering;
use std::fmt;

/// A 256-bit unsigned integer (four little-endian `u64` limbs).
///
/// # Examples
///
/// ```
/// use monatt_crypto::bigint::U256;
///
/// let a = U256::from_u64(7);
/// let b = U256::from_u64(5);
/// let (sum, carry) = a.overflowing_add(&b);
/// assert_eq!(sum, U256::from_u64(12));
/// assert!(!carry);
/// ```
#[derive(Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct U256(pub(crate) [u64; 4]);

/// A 512-bit unsigned integer, produced by [`U256::full_mul`].
#[derive(Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct U512(pub(crate) [u64; 8]);

impl U256 {
    /// The value zero.
    pub const ZERO: U256 = U256([0; 4]);
    /// The value one.
    pub const ONE: U256 = U256([1, 0, 0, 0]);
    /// The largest representable value, `2^256 - 1`.
    pub const MAX: U256 = U256([u64::MAX; 4]);

    /// Creates a `U256` from a `u64`.
    pub const fn from_u64(v: u64) -> Self {
        U256([v, 0, 0, 0])
    }

    /// Creates a `U256` from little-endian limbs.
    pub const fn from_limbs(limbs: [u64; 4]) -> Self {
        U256(limbs)
    }

    /// Returns the little-endian limbs.
    pub const fn limbs(&self) -> [u64; 4] {
        self.0
    }

    /// Overwrites the limbs with zeros (see [`crate::zeroize`]). Secret
    /// scalars call this from their owners' `Drop` impls.
    pub fn zeroize(&mut self) {
        crate::zeroize::zeroize_u64s(&mut self.0);
    }

    /// Parses a big-endian hexadecimal string (with or without a `0x`
    /// prefix).
    ///
    /// # Errors
    ///
    /// Returns `None` if the string is empty, contains a non-hexadecimal
    /// character, or encodes a value wider than 256 bits. Leading zeros are
    /// allowed, so the digit count itself is not limited.
    pub fn from_hex(s: &str) -> Option<Self> {
        let s = s.strip_prefix("0x").unwrap_or(s);
        if s.is_empty() {
            return None;
        }
        let mut out = U256::ZERO;
        for c in s.chars() {
            let d = c.to_digit(16)? as u64;
            // shl_small silently discards shifted-out bits, so detect
            // overflow before shifting in the next digit.
            if out.0[3] >> 60 != 0 {
                return None;
            }
            out = out.shl_small(4);
            out.0[0] |= d;
        }
        Some(out)
    }

    /// Encodes as 32 big-endian bytes.
    pub fn to_be_bytes(&self) -> [u8; 32] {
        let mut out = [0u8; 32];
        for (i, limb) in self.0.iter().rev().enumerate() {
            out[i * 8..(i + 1) * 8].copy_from_slice(&limb.to_be_bytes());
        }
        out
    }

    /// Decodes from 32 big-endian bytes.
    pub fn from_be_bytes(bytes: &[u8; 32]) -> Self {
        let mut limbs = [0u64; 4];
        for i in 0..4 {
            let mut chunk = [0u8; 8];
            chunk.copy_from_slice(&bytes[i * 8..(i + 1) * 8]);
            limbs[3 - i] = u64::from_be_bytes(chunk);
        }
        U256(limbs)
    }

    /// Returns true if the value is zero.
    pub fn is_zero(&self) -> bool {
        self.0 == [0; 4]
    }

    /// Returns true if the value is even.
    pub fn is_even(&self) -> bool {
        self.0[0] & 1 == 0
    }

    /// Returns bit `i` (0 = least significant).
    ///
    /// # Panics
    ///
    /// Panics if `i >= 256`.
    pub fn bit(&self, i: usize) -> bool {
        assert!(i < 256, "bit index out of range");
        (self.0[i / 64] >> (i % 64)) & 1 == 1
    }

    /// Returns the number of significant bits (0 for zero).
    pub fn bits(&self) -> usize {
        for (i, limb) in self.0.iter().enumerate().rev() {
            if *limb != 0 {
                return i * 64 + (64 - limb.leading_zeros() as usize);
            }
        }
        0
    }

    /// Adds, returning the wrapped sum and whether a carry out occurred.
    #[allow(clippy::needless_range_loop)] // parallel limb indexing is clearer
    pub fn overflowing_add(&self, rhs: &U256) -> (U256, bool) {
        let mut out = [0u64; 4];
        let mut carry = false;
        for i in 0..4 {
            let (s1, c1) = self.0[i].overflowing_add(rhs.0[i]);
            let (s2, c2) = s1.overflowing_add(carry as u64);
            out[i] = s2;
            carry = c1 || c2;
        }
        (U256(out), carry)
    }

    /// Subtracts, returning the wrapped difference and whether a borrow
    /// occurred (i.e. `rhs > self`).
    #[allow(clippy::needless_range_loop)] // parallel limb indexing is clearer
    pub fn overflowing_sub(&self, rhs: &U256) -> (U256, bool) {
        let mut out = [0u64; 4];
        let mut borrow = false;
        for i in 0..4 {
            let (d1, b1) = self.0[i].overflowing_sub(rhs.0[i]);
            let (d2, b2) = d1.overflowing_sub(borrow as u64);
            out[i] = d2;
            borrow = b1 || b2;
        }
        (U256(out), borrow)
    }

    /// Wrapping addition (discards the carry).
    pub fn wrapping_add(&self, rhs: &U256) -> U256 {
        self.overflowing_add(rhs).0
    }

    /// Wrapping subtraction (discards the borrow).
    pub fn wrapping_sub(&self, rhs: &U256) -> U256 {
        self.overflowing_sub(rhs).0
    }

    /// Checked addition: `None` on overflow.
    pub fn checked_add(&self, rhs: &U256) -> Option<U256> {
        match self.overflowing_add(rhs) {
            (v, false) => Some(v),
            _ => None,
        }
    }

    /// Checked subtraction: `None` if `rhs > self`.
    pub fn checked_sub(&self, rhs: &U256) -> Option<U256> {
        match self.overflowing_sub(rhs) {
            (v, false) => Some(v),
            _ => None,
        }
    }

    /// Shifts left by `n < 64` bits, discarding bits shifted out.
    #[allow(clippy::needless_range_loop)] // parallel limb indexing is clearer
    fn shl_small(&self, n: u32) -> U256 {
        debug_assert!(n < 64);
        if n == 0 {
            return *self;
        }
        let mut out = [0u64; 4];
        let mut carry = 0u64;
        for i in 0..4 {
            out[i] = (self.0[i] << n) | carry;
            carry = self.0[i] >> (64 - n);
        }
        U256(out)
    }

    /// Multiplies two `U256` values into a full 512-bit product.
    pub fn full_mul(&self, rhs: &U256) -> U512 {
        let mut out = [0u64; 8];
        for i in 0..4 {
            let mut carry = 0u128;
            for j in 0..4 {
                let cur = out[i + j] as u128 + (self.0[i] as u128) * (rhs.0[j] as u128) + carry;
                out[i + j] = cur as u64;
                carry = cur >> 64;
            }
            out[i + 4] = carry as u64;
        }
        U512(out)
    }

    /// Computes `self mod m`.
    ///
    /// # Panics
    ///
    /// Panics if `m` is zero.
    pub fn rem(&self, m: &U256) -> U256 {
        U512::from_u256(self).rem(m)
    }

    /// Computes `self mod m` by the bit-by-bit reference path (see
    /// [`U512::rem_binary`]).
    ///
    /// # Panics
    ///
    /// Panics if `m` is zero.
    pub fn rem_binary(&self, m: &U256) -> U256 {
        U512::from_u256(self).rem_binary(m)
    }

    /// Divides by `m`, returning `(quotient, remainder)`.
    ///
    /// # Panics
    ///
    /// Panics if `m` is zero.
    pub fn div_rem(&self, m: &U256) -> (U256, U256) {
        let (q, r) = U512::from_u256(self).div_rem(m);
        // self < 2^256, so the quotient fits in the low four limbs.
        debug_assert_eq!(q.0[4..], [0u64; 4]);
        (q.low_u256(), r)
    }
}

impl U512 {
    /// The value zero.
    pub const ZERO: U512 = U512([0; 8]);

    /// Widens a `U256` into the low half of a `U512`.
    pub fn from_u256(v: &U256) -> Self {
        let mut limbs = [0u64; 8];
        limbs[..4].copy_from_slice(&v.0);
        U512(limbs)
    }

    /// Truncates to the low 256 bits.
    pub const fn low_u256(&self) -> U256 {
        U256([self.0[0], self.0[1], self.0[2], self.0[3]])
    }

    /// Returns bit `i` (0 = least significant).
    ///
    /// # Panics
    ///
    /// Panics if `i >= 512`.
    pub fn bit(&self, i: usize) -> bool {
        assert!(i < 512, "bit index out of range");
        (self.0[i / 64] >> (i % 64)) & 1 == 1
    }

    /// Returns the number of significant bits (0 for zero).
    pub fn bits(&self) -> usize {
        for (i, limb) in self.0.iter().enumerate().rev() {
            if *limb != 0 {
                return i * 64 + (64 - limb.leading_zeros() as usize);
            }
        }
        0
    }

    /// Computes `self mod m`.
    ///
    /// # Panics
    ///
    /// Panics if `m` is zero.
    pub fn rem(&self, m: &U256) -> U256 {
        self.div_rem(m).1
    }

    /// Divides by `m`, returning `(quotient, remainder)`, using word-level
    /// long division (Knuth, TAOCP vol. 2, 4.3.1, Algorithm D). Each step
    /// consumes one 64-bit limb of the dividend, so a full 512/256 division
    /// takes at most five quotient digits instead of 512 bit iterations.
    ///
    /// # Panics
    ///
    /// Panics if `m` is zero.
    pub fn div_rem(&self, m: &U256) -> (U512, U256) {
        assert!(!m.is_zero(), "division by zero");
        let n = m.bits().div_ceil(64);
        // Single-limb divisors reduce to schoolbook short division.
        if n == 1 {
            let d = m.0[0] as u128;
            let mut q = [0u64; 8];
            let mut rem = 0u64;
            for i in (0..8).rev() {
                let cur = ((rem as u128) << 64) | self.0[i] as u128;
                q[i] = (cur / d) as u64;
                rem = (cur % d) as u64;
            }
            return (U512(q), U256::from_u64(rem));
        }
        let ulen = self.bits().div_ceil(64);
        if ulen < n {
            // Fewer dividend limbs than divisor limbs: self < m.
            return (U512::ZERO, self.low_u256());
        }
        // Normalize so the divisor's top limb has its high bit set; this
        // bounds the per-digit quotient estimate to within 2 of the truth.
        let s = m.0[n - 1].leading_zeros();
        let mut v = [0u64; 4];
        for (i, vi) in v.iter_mut().enumerate().take(n) {
            *vi = m.0[i] << s;
            if s > 0 && i > 0 {
                *vi |= m.0[i - 1] >> (64 - s);
            }
        }
        let mut un = [0u64; 9];
        for (i, ui) in un.iter_mut().enumerate().take(ulen) {
            *ui = self.0[i] << s;
            if s > 0 && i > 0 {
                *ui |= self.0[i - 1] >> (64 - s);
            }
        }
        if s > 0 {
            un[ulen] = self.0[ulen - 1] >> (64 - s);
        }
        let mut q = [0u64; 8];
        let vtop = v[n - 1] as u128;
        let vnext = v[n - 2] as u128; // n >= 2 here
        for j in (0..=ulen - n).rev() {
            // Estimate the quotient digit from the top two remainder limbs,
            // then correct it (at most twice) against the third limb.
            let numer = ((un[j + n] as u128) << 64) | un[j + n - 1] as u128;
            let mut qhat = numer / vtop;
            let mut rhat = numer % vtop;
            while qhat >> 64 != 0 || qhat * vnext > (rhat << 64) | un[j + n - 2] as u128 {
                qhat -= 1;
                rhat += vtop;
                if rhat >> 64 != 0 {
                    break;
                }
            }
            // Multiply-and-subtract qhat * v from un[j..=j+n].
            let mut borrow = 0u64;
            let mut carry = 0u128;
            for i in 0..n {
                let p = qhat * v[i] as u128 + carry;
                carry = p >> 64;
                let (d1, b1) = un[j + i].overflowing_sub(p as u64);
                let (d2, b2) = d1.overflowing_sub(borrow);
                un[j + i] = d2;
                borrow = (b1 || b2) as u64;
            }
            let (d1, b1) = un[j + n].overflowing_sub(carry as u64);
            let (d2, b2) = d1.overflowing_sub(borrow);
            un[j + n] = d2;
            if b1 || b2 {
                // Rare (~2/2^64): qhat was one too large; add the divisor
                // back and decrement.
                qhat -= 1;
                let mut c = false;
                for i in 0..n {
                    let (s1, c1) = un[j + i].overflowing_add(v[i]);
                    let (s2, c2) = s1.overflowing_add(c as u64);
                    un[j + i] = s2;
                    c = c1 || c2;
                }
                un[j + n] = un[j + n].wrapping_add(c as u64);
            }
            q[j] = qhat as u64;
        }
        // Denormalize the remainder.
        let mut r = [0u64; 4];
        for i in 0..n {
            r[i] = un[i] >> s;
            if s > 0 {
                r[i] |= un[i + 1] << (64 - s);
            }
        }
        (U512(q), U256(r))
    }

    /// Computes `self mod m` by bit-by-bit binary long division.
    ///
    /// This is the original, easy-to-audit reduction path. It is kept as a
    /// reference oracle: differential tests and benchmarks compare the
    /// word-level [`U512::rem`] and the Montgomery pipeline against it.
    ///
    /// # Panics
    ///
    /// Panics if `m` is zero.
    pub fn rem_binary(&self, m: &U256) -> U256 {
        assert!(!m.is_zero(), "division by zero");
        // The running remainder fits in 257 bits before each conditional
        // subtraction, so track a single extra carry bit alongside a U256.
        let mut rem = U256::ZERO;
        for i in (0..self.bits()).rev() {
            let carry = rem.bit(255);
            rem = rem.shl_small(1);
            if self.bit(i) {
                rem.0[0] |= 1;
            }
            if carry || rem >= *m {
                rem = rem.wrapping_sub(m);
            }
        }
        rem
    }
}

impl PartialOrd for U256 {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for U256 {
    fn cmp(&self, other: &Self) -> Ordering {
        for i in (0..4).rev() {
            match self.0[i].cmp(&other.0[i]) {
                Ordering::Equal => continue,
                ord => return ord,
            }
        }
        Ordering::Equal
    }
}

impl From<u64> for U256 {
    fn from(v: u64) -> Self {
        U256::from_u64(v)
    }
}

impl fmt::Debug for U256 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "U256(0x{:x})", self)
    }
}

impl fmt::Display for U256 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "0x{:x}", self)
    }
}

impl fmt::LowerHex for U256 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut started = false;
        for limb in self.0.iter().rev() {
            if started {
                write!(f, "{:016x}", limb)?;
            } else if *limb != 0 {
                write!(f, "{:x}", limb)?;
                started = true;
            }
        }
        if !started {
            write!(f, "0")?;
        }
        Ok(())
    }
}

impl fmt::Debug for U512 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "U512(")?;
        for limb in self.0.iter().rev() {
            write!(f, "{:016x}", limb)?;
        }
        write!(f, ")")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_u64_roundtrip() {
        assert_eq!(U256::from_u64(0).limbs(), [0, 0, 0, 0]);
        assert_eq!(U256::from_u64(42).limbs(), [42, 0, 0, 0]);
    }

    #[test]
    fn hex_roundtrip() {
        let v = U256::from_hex("deadbeef").unwrap();
        assert_eq!(v, U256::from_u64(0xdead_beef));
        assert_eq!(format!("{:x}", v), "deadbeef");
        let big =
            U256::from_hex("b7e9f735f74bf461eb409d67747a627534f17ded4ba95a60790f978549c8c24f")
                .unwrap();
        assert_eq!(
            format!("{:x}", big),
            "b7e9f735f74bf461eb409d67747a627534f17ded4ba95a60790f978549c8c24f"
        );
    }

    #[test]
    fn hex_rejects_bad_input() {
        assert!(U256::from_hex("").is_none());
        assert!(U256::from_hex("xyz").is_none());
        assert!(U256::from_hex(&"f".repeat(65)).is_none());
        // 65 significant digits overflow even when the low ones are zero.
        assert!(U256::from_hex(&format!("1{}", "0".repeat(64))).is_none());
    }

    #[test]
    fn hex_accepts_leading_zeros_and_full_width() {
        // Leading zeros don't count against the width limit.
        let padded = format!("{}ff", "0".repeat(64));
        assert_eq!(U256::from_hex(&padded), Some(U256::from_u64(0xff)));
        // A 0x-prefixed maximal value parses to MAX.
        let max = format!("0x{}", "f".repeat(64));
        assert_eq!(U256::from_hex(&max), Some(U256::MAX));
        assert_eq!(U256::from_hex(&"0".repeat(100)), Some(U256::ZERO));
    }

    #[test]
    fn be_bytes_roundtrip() {
        let v = U256::from_hex("0102030405060708090a0b0c0d0e0f10").unwrap();
        let bytes = v.to_be_bytes();
        assert_eq!(U256::from_be_bytes(&bytes), v);
        assert_eq!(bytes[31], 0x10);
        assert_eq!(bytes[16], 0x01);
    }

    #[test]
    fn add_with_carry() {
        let (v, carry) = U256::MAX.overflowing_add(&U256::ONE);
        assert!(carry);
        assert_eq!(v, U256::ZERO);
        let (v, carry) = U256::from_u64(u64::MAX).overflowing_add(&U256::ONE);
        assert!(!carry);
        assert_eq!(v.limbs(), [0, 1, 0, 0]);
    }

    #[test]
    fn sub_with_borrow() {
        let (v, borrow) = U256::ZERO.overflowing_sub(&U256::ONE);
        assert!(borrow);
        assert_eq!(v, U256::MAX);
        let a = U256::from_limbs([0, 1, 0, 0]);
        let (v, borrow) = a.overflowing_sub(&U256::ONE);
        assert!(!borrow);
        assert_eq!(v, U256::from_u64(u64::MAX));
    }

    #[test]
    fn checked_ops() {
        assert_eq!(U256::MAX.checked_add(&U256::ONE), None);
        assert_eq!(U256::ZERO.checked_sub(&U256::ONE), None);
        assert_eq!(
            U256::from_u64(5).checked_sub(&U256::from_u64(3)),
            Some(U256::from_u64(2))
        );
    }

    #[test]
    fn ordering() {
        assert!(U256::from_u64(1) < U256::from_u64(2));
        assert!(
            U256::from_limbs([0, 0, 0, 1]) > U256::from_limbs([u64::MAX, u64::MAX, u64::MAX, 0])
        );
    }

    #[test]
    fn bits_and_bit() {
        assert_eq!(U256::ZERO.bits(), 0);
        assert_eq!(U256::ONE.bits(), 1);
        assert_eq!(U256::from_u64(0x80).bits(), 8);
        assert_eq!(U256::MAX.bits(), 256);
        assert!(U256::from_u64(4).bit(2));
        assert!(!U256::from_u64(4).bit(1));
    }

    #[test]
    fn full_mul_small() {
        let p = U256::from_u64(1 << 32).full_mul(&U256::from_u64(1 << 32));
        assert_eq!(p.0[1], 1);
        assert_eq!(p.0[0], 0);
        let p = U256::MAX.full_mul(&U256::MAX);
        // (2^256-1)^2 = 2^512 - 2^257 + 1
        assert_eq!(p.0[0], 1);
        assert_eq!(p.0[4], u64::MAX - 1);
        assert_eq!(p.0[7], u64::MAX);
    }

    #[test]
    fn rem_512() {
        let m = U256::from_u64(97);
        let big = U256::from_u64(12345).full_mul(&U256::from_u64(67890));
        assert_eq!(big.rem(&m), U256::from_u64((12345u64 * 67890) % 97));
    }

    #[test]
    fn div_rem_basic() {
        let (q, r) = U256::from_u64(100).div_rem(&U256::from_u64(7));
        assert_eq!(q, U256::from_u64(14));
        assert_eq!(r, U256::from_u64(2));
        let (q, r) = U256::from_u64(3).div_rem(&U256::from_u64(7));
        assert_eq!(q, U256::ZERO);
        assert_eq!(r, U256::from_u64(3));
    }

    #[test]
    #[should_panic(expected = "division by zero")]
    fn div_rem_by_zero_panics() {
        let _ = U256::ONE.div_rem(&U256::ZERO);
    }

    /// A deterministic value mixer for exercising the division paths on
    /// varied limb patterns without pulling in an RNG.
    fn mix(seed: u64) -> u64 {
        let mut z = seed.wrapping_add(0x9e37_79b9_7f4a_7c15);
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    #[test]
    fn knuth_division_matches_binary_reference() {
        for t in 0..200u64 {
            let a = U256::from_limbs([mix(t), mix(t + 1), mix(t + 2), mix(t + 3)]);
            let b = U256::from_limbs([mix(t + 4), mix(t + 5), mix(t + 6), mix(t + 7)]);
            let prod = a.full_mul(&b);
            // Vary the divisor width from one limb up to four.
            let w = (t % 4) as usize + 1;
            let mut limbs = [0u64; 4];
            for (i, l) in limbs.iter_mut().enumerate().take(w) {
                *l = mix(t + 8 + i as u64);
            }
            if limbs == [0u64; 4] {
                limbs[0] = 1;
            }
            let m = U256::from_limbs(limbs);
            assert_eq!(prod.rem(&m), prod.rem_binary(&m), "t={t} m={m:?}");
        }
    }

    #[test]
    fn knuth_division_reconstructs_dividend() {
        for t in 0..100u64 {
            let a = U256::from_limbs([mix(t), mix(t + 10), mix(t + 20), mix(t + 30)]);
            let b = U256::from_limbs([mix(t + 40), mix(t + 50), 0, 0]);
            let m = U256::from_limbs([mix(t + 60), mix(t + 70), mix(t + 80) % 3, 0]);
            if m.is_zero() {
                continue;
            }
            let prod = a.full_mul(&b);
            let (q, r) = prod.div_rem(&m);
            assert!(r < m);
            // q * m + r == prod, limb by limb (q can be wider than 256 bits,
            // so multiply back in 64x256 chunks).
            let mut acc = [0u64; 8];
            for i in 0..8 {
                let part = U256::from_u64(q.0[i]).full_mul(&m);
                let mut carry = 0u128;
                for j in 0..8 - i {
                    let cur = acc[i + j] as u128 + part.0[j] as u128 + carry;
                    acc[i + j] = cur as u64;
                    carry = cur >> 64;
                }
            }
            let mut carry = 0u128;
            for (j, limb) in acc.iter_mut().enumerate() {
                let cur = *limb as u128 + if j < 4 { r.0[j] as u128 } else { 0 } + carry;
                *limb = cur as u64;
                carry = cur >> 64;
            }
            assert_eq!(U512(acc), prod, "t={t}");
        }
    }

    #[test]
    fn division_edge_cases() {
        // Dividend smaller than divisor.
        let small = U512::from_u256(&U256::from_u64(5));
        let (q, r) = small.div_rem(&U256::MAX);
        assert_eq!(q, U512::ZERO);
        assert_eq!(r, U256::from_u64(5));
        // Divisor of exactly one limb with the high bit set.
        let d = U256::from_u64(1 << 63);
        let prod = U256::MAX.full_mul(&U256::MAX);
        assert_eq!(prod.rem(&d), prod.rem_binary(&d));
        // Maximal divisor.
        assert_eq!(prod.rem(&U256::MAX), prod.rem_binary(&U256::MAX));
        // Divisor with trailing zero limbs (stress the normalization shift).
        let m = U256::from_limbs([0, 0, 0, 1]);
        assert_eq!(prod.rem(&m), prod.rem_binary(&m));
        let m = U256::from_limbs([0, 0, 1 << 63, 0]);
        assert_eq!(prod.rem(&m), prod.rem_binary(&m));
        // Self-division.
        let (q, r) = U256::MAX.div_rem(&U256::MAX);
        assert_eq!(q, U256::ONE);
        assert_eq!(r, U256::ZERO);
    }

    #[test]
    fn debug_is_nonempty() {
        assert!(!format!("{:?}", U256::ZERO).is_empty());
        assert!(!format!("{:?}", U512::ZERO).is_empty());
    }
}
