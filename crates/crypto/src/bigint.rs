//! Fixed-width unsigned big integers: [`U256`] and the crate-internal
//! [`U512`] used as an intermediate for 256-bit modular multiplication.
//!
//! Limbs are stored little-endian (`limbs[0]` is least significant). The
//! implementation favours clarity over speed: modular reduction uses binary
//! long division, which is plenty fast for a protocol simulator and easy to
//! audit. None of this code is constant-time; the crate is a simulation
//! substrate, not a production cryptography library.

use std::cmp::Ordering;
use std::fmt;

/// A 256-bit unsigned integer (four little-endian `u64` limbs).
///
/// # Examples
///
/// ```
/// use monatt_crypto::bigint::U256;
///
/// let a = U256::from_u64(7);
/// let b = U256::from_u64(5);
/// let (sum, carry) = a.overflowing_add(&b);
/// assert_eq!(sum, U256::from_u64(12));
/// assert!(!carry);
/// ```
#[derive(Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct U256(pub(crate) [u64; 4]);

/// A 512-bit unsigned integer, produced by [`U256::full_mul`].
#[derive(Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct U512(pub(crate) [u64; 8]);

impl U256 {
    /// The value zero.
    pub const ZERO: U256 = U256([0; 4]);
    /// The value one.
    pub const ONE: U256 = U256([1, 0, 0, 0]);
    /// The largest representable value, `2^256 - 1`.
    pub const MAX: U256 = U256([u64::MAX; 4]);

    /// Creates a `U256` from a `u64`.
    pub const fn from_u64(v: u64) -> Self {
        U256([v, 0, 0, 0])
    }

    /// Creates a `U256` from little-endian limbs.
    pub const fn from_limbs(limbs: [u64; 4]) -> Self {
        U256(limbs)
    }

    /// Returns the little-endian limbs.
    pub const fn limbs(&self) -> [u64; 4] {
        self.0
    }

    /// Parses a big-endian hexadecimal string (with or without a `0x`
    /// prefix).
    ///
    /// # Errors
    ///
    /// Returns `None` if the string is empty, longer than 64 hex digits, or
    /// contains a non-hexadecimal character.
    pub fn from_hex(s: &str) -> Option<Self> {
        let s = s.strip_prefix("0x").unwrap_or(s);
        if s.is_empty() || s.len() > 64 {
            return None;
        }
        let mut out = U256::ZERO;
        for c in s.chars() {
            let d = c.to_digit(16)? as u64;
            out = out.shl_small(4);
            out.0[0] |= d;
        }
        Some(out)
    }

    /// Encodes as 32 big-endian bytes.
    pub fn to_be_bytes(&self) -> [u8; 32] {
        let mut out = [0u8; 32];
        for (i, limb) in self.0.iter().rev().enumerate() {
            out[i * 8..(i + 1) * 8].copy_from_slice(&limb.to_be_bytes());
        }
        out
    }

    /// Decodes from 32 big-endian bytes.
    pub fn from_be_bytes(bytes: &[u8; 32]) -> Self {
        let mut limbs = [0u64; 4];
        for i in 0..4 {
            let mut chunk = [0u8; 8];
            chunk.copy_from_slice(&bytes[i * 8..(i + 1) * 8]);
            limbs[3 - i] = u64::from_be_bytes(chunk);
        }
        U256(limbs)
    }

    /// Returns true if the value is zero.
    pub fn is_zero(&self) -> bool {
        self.0 == [0; 4]
    }

    /// Returns true if the value is even.
    pub fn is_even(&self) -> bool {
        self.0[0] & 1 == 0
    }

    /// Returns bit `i` (0 = least significant).
    ///
    /// # Panics
    ///
    /// Panics if `i >= 256`.
    pub fn bit(&self, i: usize) -> bool {
        assert!(i < 256, "bit index out of range");
        (self.0[i / 64] >> (i % 64)) & 1 == 1
    }

    /// Returns the number of significant bits (0 for zero).
    pub fn bits(&self) -> usize {
        for (i, limb) in self.0.iter().enumerate().rev() {
            if *limb != 0 {
                return i * 64 + (64 - limb.leading_zeros() as usize);
            }
        }
        0
    }

    /// Adds, returning the wrapped sum and whether a carry out occurred.
    #[allow(clippy::needless_range_loop)] // parallel limb indexing is clearer
    pub fn overflowing_add(&self, rhs: &U256) -> (U256, bool) {
        let mut out = [0u64; 4];
        let mut carry = false;
        for i in 0..4 {
            let (s1, c1) = self.0[i].overflowing_add(rhs.0[i]);
            let (s2, c2) = s1.overflowing_add(carry as u64);
            out[i] = s2;
            carry = c1 || c2;
        }
        (U256(out), carry)
    }

    /// Subtracts, returning the wrapped difference and whether a borrow
    /// occurred (i.e. `rhs > self`).
    #[allow(clippy::needless_range_loop)] // parallel limb indexing is clearer
    pub fn overflowing_sub(&self, rhs: &U256) -> (U256, bool) {
        let mut out = [0u64; 4];
        let mut borrow = false;
        for i in 0..4 {
            let (d1, b1) = self.0[i].overflowing_sub(rhs.0[i]);
            let (d2, b2) = d1.overflowing_sub(borrow as u64);
            out[i] = d2;
            borrow = b1 || b2;
        }
        (U256(out), borrow)
    }

    /// Wrapping addition (discards the carry).
    pub fn wrapping_add(&self, rhs: &U256) -> U256 {
        self.overflowing_add(rhs).0
    }

    /// Wrapping subtraction (discards the borrow).
    pub fn wrapping_sub(&self, rhs: &U256) -> U256 {
        self.overflowing_sub(rhs).0
    }

    /// Checked addition: `None` on overflow.
    pub fn checked_add(&self, rhs: &U256) -> Option<U256> {
        match self.overflowing_add(rhs) {
            (v, false) => Some(v),
            _ => None,
        }
    }

    /// Checked subtraction: `None` if `rhs > self`.
    pub fn checked_sub(&self, rhs: &U256) -> Option<U256> {
        match self.overflowing_sub(rhs) {
            (v, false) => Some(v),
            _ => None,
        }
    }

    /// Shifts left by `n < 64` bits, discarding bits shifted out.
    #[allow(clippy::needless_range_loop)] // parallel limb indexing is clearer
    fn shl_small(&self, n: u32) -> U256 {
        debug_assert!(n < 64);
        if n == 0 {
            return *self;
        }
        let mut out = [0u64; 4];
        let mut carry = 0u64;
        for i in 0..4 {
            out[i] = (self.0[i] << n) | carry;
            carry = self.0[i] >> (64 - n);
        }
        U256(out)
    }

    /// Multiplies two `U256` values into a full 512-bit product.
    pub fn full_mul(&self, rhs: &U256) -> U512 {
        let mut out = [0u64; 8];
        for i in 0..4 {
            let mut carry = 0u128;
            for j in 0..4 {
                let cur = out[i + j] as u128
                    + (self.0[i] as u128) * (rhs.0[j] as u128)
                    + carry;
                out[i + j] = cur as u64;
                carry = cur >> 64;
            }
            out[i + 4] = carry as u64;
        }
        U512(out)
    }

    /// Computes `self mod m`.
    ///
    /// # Panics
    ///
    /// Panics if `m` is zero.
    pub fn rem(&self, m: &U256) -> U256 {
        U512::from_u256(self).rem(m)
    }

    /// Divides by `m`, returning `(quotient, remainder)`.
    ///
    /// # Panics
    ///
    /// Panics if `m` is zero.
    pub fn div_rem(&self, m: &U256) -> (U256, U256) {
        assert!(!m.is_zero(), "division by zero");
        if self < m {
            return (U256::ZERO, *self);
        }
        let mut quotient = U256::ZERO;
        let mut rem = U256::ZERO;
        for i in (0..self.bits()).rev() {
            // rem < m before the shift, so rem << 1 | bit fits in 257 bits:
            // track the shifted-out bit explicitly.
            let carry = rem.bit(255);
            rem = rem.shl_small(1);
            if self.bit(i) {
                rem.0[0] |= 1;
            }
            if carry || rem >= *m {
                rem = rem.wrapping_sub(m);
                quotient.0[i / 64] |= 1 << (i % 64);
            }
        }
        (quotient, rem)
    }
}

impl U512 {
    /// The value zero.
    pub const ZERO: U512 = U512([0; 8]);

    /// Widens a `U256` into the low half of a `U512`.
    pub fn from_u256(v: &U256) -> Self {
        let mut limbs = [0u64; 8];
        limbs[..4].copy_from_slice(&v.0);
        U512(limbs)
    }

    /// Returns bit `i` (0 = least significant).
    ///
    /// # Panics
    ///
    /// Panics if `i >= 512`.
    pub fn bit(&self, i: usize) -> bool {
        assert!(i < 512, "bit index out of range");
        (self.0[i / 64] >> (i % 64)) & 1 == 1
    }

    /// Returns the number of significant bits (0 for zero).
    pub fn bits(&self) -> usize {
        for (i, limb) in self.0.iter().enumerate().rev() {
            if *limb != 0 {
                return i * 64 + (64 - limb.leading_zeros() as usize);
            }
        }
        0
    }

    /// Computes `self mod m` by binary long division.
    ///
    /// # Panics
    ///
    /// Panics if `m` is zero.
    pub fn rem(&self, m: &U256) -> U256 {
        assert!(!m.is_zero(), "division by zero");
        // The running remainder fits in 257 bits before each conditional
        // subtraction, so track a single extra carry bit alongside a U256.
        let mut rem = U256::ZERO;
        for i in (0..self.bits()).rev() {
            let carry = rem.bit(255);
            rem = rem.shl_small(1);
            if self.bit(i) {
                rem.0[0] |= 1;
            }
            if carry || rem >= *m {
                rem = rem.wrapping_sub(m);
            }
        }
        rem
    }
}

impl PartialOrd for U256 {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for U256 {
    fn cmp(&self, other: &Self) -> Ordering {
        for i in (0..4).rev() {
            match self.0[i].cmp(&other.0[i]) {
                Ordering::Equal => continue,
                ord => return ord,
            }
        }
        Ordering::Equal
    }
}

impl From<u64> for U256 {
    fn from(v: u64) -> Self {
        U256::from_u64(v)
    }
}

impl fmt::Debug for U256 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "U256(0x{:x})", self)
    }
}

impl fmt::Display for U256 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "0x{:x}", self)
    }
}

impl fmt::LowerHex for U256 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut started = false;
        for limb in self.0.iter().rev() {
            if started {
                write!(f, "{:016x}", limb)?;
            } else if *limb != 0 {
                write!(f, "{:x}", limb)?;
                started = true;
            }
        }
        if !started {
            write!(f, "0")?;
        }
        Ok(())
    }
}

impl fmt::Debug for U512 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "U512(")?;
        for limb in self.0.iter().rev() {
            write!(f, "{:016x}", limb)?;
        }
        write!(f, ")")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_u64_roundtrip() {
        assert_eq!(U256::from_u64(0).limbs(), [0, 0, 0, 0]);
        assert_eq!(U256::from_u64(42).limbs(), [42, 0, 0, 0]);
    }

    #[test]
    fn hex_roundtrip() {
        let v = U256::from_hex("deadbeef").unwrap();
        assert_eq!(v, U256::from_u64(0xdead_beef));
        assert_eq!(format!("{:x}", v), "deadbeef");
        let big = U256::from_hex(
            "b7e9f735f74bf461eb409d67747a627534f17ded4ba95a60790f978549c8c24f",
        )
        .unwrap();
        assert_eq!(
            format!("{:x}", big),
            "b7e9f735f74bf461eb409d67747a627534f17ded4ba95a60790f978549c8c24f"
        );
    }

    #[test]
    fn hex_rejects_bad_input() {
        assert!(U256::from_hex("").is_none());
        assert!(U256::from_hex("xyz").is_none());
        assert!(U256::from_hex(&"f".repeat(65)).is_none());
    }

    #[test]
    fn be_bytes_roundtrip() {
        let v = U256::from_hex("0102030405060708090a0b0c0d0e0f10").unwrap();
        let bytes = v.to_be_bytes();
        assert_eq!(U256::from_be_bytes(&bytes), v);
        assert_eq!(bytes[31], 0x10);
        assert_eq!(bytes[16], 0x01);
    }

    #[test]
    fn add_with_carry() {
        let (v, carry) = U256::MAX.overflowing_add(&U256::ONE);
        assert!(carry);
        assert_eq!(v, U256::ZERO);
        let (v, carry) = U256::from_u64(u64::MAX).overflowing_add(&U256::ONE);
        assert!(!carry);
        assert_eq!(v.limbs(), [0, 1, 0, 0]);
    }

    #[test]
    fn sub_with_borrow() {
        let (v, borrow) = U256::ZERO.overflowing_sub(&U256::ONE);
        assert!(borrow);
        assert_eq!(v, U256::MAX);
        let a = U256::from_limbs([0, 1, 0, 0]);
        let (v, borrow) = a.overflowing_sub(&U256::ONE);
        assert!(!borrow);
        assert_eq!(v, U256::from_u64(u64::MAX));
    }

    #[test]
    fn checked_ops() {
        assert_eq!(U256::MAX.checked_add(&U256::ONE), None);
        assert_eq!(U256::ZERO.checked_sub(&U256::ONE), None);
        assert_eq!(
            U256::from_u64(5).checked_sub(&U256::from_u64(3)),
            Some(U256::from_u64(2))
        );
    }

    #[test]
    fn ordering() {
        assert!(U256::from_u64(1) < U256::from_u64(2));
        assert!(U256::from_limbs([0, 0, 0, 1]) > U256::from_limbs([u64::MAX, u64::MAX, u64::MAX, 0]));
    }

    #[test]
    fn bits_and_bit() {
        assert_eq!(U256::ZERO.bits(), 0);
        assert_eq!(U256::ONE.bits(), 1);
        assert_eq!(U256::from_u64(0x80).bits(), 8);
        assert_eq!(U256::MAX.bits(), 256);
        assert!(U256::from_u64(4).bit(2));
        assert!(!U256::from_u64(4).bit(1));
    }

    #[test]
    fn full_mul_small() {
        let p = U256::from_u64(1 << 32).full_mul(&U256::from_u64(1 << 32));
        assert_eq!(p.0[1], 1);
        assert_eq!(p.0[0], 0);
        let p = U256::MAX.full_mul(&U256::MAX);
        // (2^256-1)^2 = 2^512 - 2^257 + 1
        assert_eq!(p.0[0], 1);
        assert_eq!(p.0[4], u64::MAX - 1);
        assert_eq!(p.0[7], u64::MAX);
    }

    #[test]
    fn rem_512() {
        let m = U256::from_u64(97);
        let big = U256::from_u64(12345).full_mul(&U256::from_u64(67890));
        assert_eq!(big.rem(&m), U256::from_u64((12345u64 * 67890) % 97));
    }

    #[test]
    fn div_rem_basic() {
        let (q, r) = U256::from_u64(100).div_rem(&U256::from_u64(7));
        assert_eq!(q, U256::from_u64(14));
        assert_eq!(r, U256::from_u64(2));
        let (q, r) = U256::from_u64(3).div_rem(&U256::from_u64(7));
        assert_eq!(q, U256::ZERO);
        assert_eq!(r, U256::from_u64(3));
    }

    #[test]
    #[should_panic(expected = "division by zero")]
    fn div_rem_by_zero_panics() {
        let _ = U256::ONE.div_rem(&U256::ZERO);
    }

    #[test]
    fn debug_is_nonempty() {
        assert!(!format!("{:?}", U256::ZERO).is_empty());
        assert!(!format!("{:?}", U512::ZERO).is_empty());
    }
}
