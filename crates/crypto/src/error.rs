//! Error types for the cryptographic substrate.

use std::error::Error;
use std::fmt;

/// Errors returned by cryptographic operations.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
#[non_exhaustive]
pub enum CryptoError {
    /// A signature failed verification.
    InvalidSignature,
    /// An authenticated-encryption tag failed verification (or the message
    /// was too short to contain one).
    InvalidTag,
    /// A public key or Diffie-Hellman share was not a valid group element.
    InvalidKey,
    /// Input had an unexpected length.
    InvalidLength {
        /// The expected byte length.
        expected: usize,
        /// The actual byte length.
        actual: usize,
    },
}

impl fmt::Display for CryptoError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CryptoError::InvalidSignature => write!(f, "signature verification failed"),
            CryptoError::InvalidTag => write!(f, "authentication tag verification failed"),
            CryptoError::InvalidKey => write!(f, "key is not a valid group element"),
            CryptoError::InvalidLength { expected, actual } => {
                write!(f, "invalid input length: expected {expected}, got {actual}")
            }
        }
    }
}

impl Error for CryptoError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages() {
        assert_eq!(
            CryptoError::InvalidSignature.to_string(),
            "signature verification failed"
        );
        assert_eq!(
            CryptoError::InvalidLength {
                expected: 32,
                actual: 16
            }
            .to_string(),
            "invalid input length: expected 32, got 16"
        );
    }

    #[test]
    fn is_std_error_send_sync() {
        fn assert_err<E: Error + Send + Sync + 'static>() {}
        assert_err::<CryptoError>();
    }
}
