//! Diffie-Hellman key agreement over the crate's safe-prime [`Group`],
//! with HKDF-based session-key derivation.

use crate::bigint::U256;
use crate::drbg::Drbg;
use crate::error::CryptoError;
use crate::group::Group;
use crate::hmac::hkdf;

/// An ephemeral Diffie-Hellman secret.
///
/// # Examples
///
/// ```
/// use monatt_crypto::dh::EphemeralSecret;
/// use monatt_crypto::drbg::Drbg;
///
/// # fn main() -> Result<(), monatt_crypto::error::CryptoError> {
/// let mut rng = Drbg::from_seed(1);
/// let alice = EphemeralSecret::generate(&mut rng);
/// let bob = EphemeralSecret::generate(&mut rng);
/// let k1 = alice.agree(&bob.public_share(), b"demo")?;
/// let k2 = bob.agree(&alice.public_share(), b"demo")?;
/// assert_eq!(k1, k2);
/// # Ok(())
/// # }
/// ```
#[derive(Clone)]
pub struct EphemeralSecret {
    exponent: U256,
    share: PublicShare,
}

impl std::fmt::Debug for EphemeralSecret {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("EphemeralSecret")
            .field("share", &self.share)
            .finish_non_exhaustive()
    }
}

impl Drop for EphemeralSecret {
    fn drop(&mut self) {
        self.exponent.zeroize();
    }
}

/// The public half of a Diffie-Hellman exchange: `g^x mod p`.
#[derive(Clone, Copy, PartialEq, Eq, Hash)]
pub struct PublicShare(U256);

impl std::fmt::Debug for PublicShare {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "PublicShare({:x})", self.0)
    }
}

/// A derived 32-byte symmetric session secret.
pub type SessionSecret = [u8; 32];

impl EphemeralSecret {
    /// Generates a fresh ephemeral secret.
    pub fn generate(rng: &mut Drbg) -> Self {
        let grp = Group::default_group();
        let exponent = rng.next_u256_in_group(&grp.q);
        let share = PublicShare(grp.pow_g(&exponent));
        EphemeralSecret { exponent, share }
    }

    /// Returns the public share to send to the peer.
    pub fn public_share(&self) -> PublicShare {
        self.share
    }

    /// Combines with the peer's share and derives a session secret bound to
    /// `context` (e.g. a protocol label plus the transcript hash).
    ///
    /// # Errors
    ///
    /// Returns [`CryptoError::InvalidKey`] if the peer's share is not a
    /// valid element of the prime-order subgroup (small-subgroup attack
    /// defence).
    pub fn agree(&self, peer: &PublicShare, context: &[u8]) -> Result<SessionSecret, CryptoError> {
        let grp = Group::default_group();
        if !grp.is_element(&peer.0) {
            return Err(CryptoError::InvalidKey);
        }
        let shared = grp.pow(&peer.0, &self.exponent);
        let okm = hkdf(b"monatt-dh-v1", &shared.to_be_bytes(), context, 32);
        let mut out = [0u8; 32];
        out.copy_from_slice(&okm);
        Ok(out)
    }
}

impl PublicShare {
    /// Encodes as 32 big-endian bytes.
    pub fn to_bytes(&self) -> [u8; 32] {
        self.0.to_be_bytes()
    }

    /// Decodes and validates a share.
    ///
    /// # Errors
    ///
    /// Returns [`CryptoError::InvalidKey`] for elements outside the
    /// prime-order subgroup.
    pub fn from_bytes(bytes: &[u8; 32]) -> Result<Self, CryptoError> {
        let elem = U256::from_be_bytes(bytes);
        if Group::default_group().is_element(&elem) {
            Ok(PublicShare(elem))
        } else {
            Err(CryptoError::InvalidKey)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn agreement_is_symmetric() {
        let mut rng = Drbg::from_seed(20);
        let a = EphemeralSecret::generate(&mut rng);
        let b = EphemeralSecret::generate(&mut rng);
        let k_ab = a.agree(&b.public_share(), b"ctx").unwrap();
        let k_ba = b.agree(&a.public_share(), b"ctx").unwrap();
        assert_eq!(k_ab, k_ba);
    }

    #[test]
    fn context_separates_keys() {
        let mut rng = Drbg::from_seed(21);
        let a = EphemeralSecret::generate(&mut rng);
        let b = EphemeralSecret::generate(&mut rng);
        let k1 = a.agree(&b.public_share(), b"ctx-1").unwrap();
        let k2 = a.agree(&b.public_share(), b"ctx-2").unwrap();
        assert_ne!(k1, k2);
    }

    #[test]
    fn different_peers_different_keys() {
        let mut rng = Drbg::from_seed(22);
        let a = EphemeralSecret::generate(&mut rng);
        let b = EphemeralSecret::generate(&mut rng);
        let c = EphemeralSecret::generate(&mut rng);
        let k_ab = a.agree(&b.public_share(), b"ctx").unwrap();
        let k_ac = a.agree(&c.public_share(), b"ctx").unwrap();
        assert_ne!(k_ab, k_ac);
    }

    #[test]
    fn rejects_invalid_share() {
        let mut rng = Drbg::from_seed(23);
        let a = EphemeralSecret::generate(&mut rng);
        let zero = [0u8; 32];
        assert!(PublicShare::from_bytes(&zero).is_err());
        // Small-subgroup element p-1 (order 2) must be rejected by agree.
        let grp = Group::default_group();
        let small = PublicShare(grp.p.wrapping_sub(&U256::ONE));
        assert_eq!(a.agree(&small, b"ctx"), Err(CryptoError::InvalidKey));
    }

    #[test]
    fn share_serialization_roundtrip() {
        let mut rng = Drbg::from_seed(24);
        let a = EphemeralSecret::generate(&mut rng);
        let share = a.public_share();
        assert_eq!(PublicShare::from_bytes(&share.to_bytes()).unwrap(), share);
    }
}
