//! Authenticated encryption: AES-128-CTR with an HMAC-SHA256 tag in
//! encrypt-then-MAC composition, keyed from a 32-byte session secret.

use crate::aes::Aes128;
use crate::error::CryptoError;
use crate::hmac::{hkdf, hmac_sha256, verify_tag, HmacSha256};

/// Length of the authentication tag appended to every ciphertext.
pub const TAG_LEN: usize = 32;
/// Length of the per-message nonce.
pub const NONCE_LEN: usize = 12;

/// A directional authenticated-encryption key, derived from a session
/// secret. Each direction of a channel should use its own `SealKey`
/// (distinguished by the `label` passed to [`SealKey::derive`]).
#[derive(Clone)]
pub struct SealKey {
    cipher: Aes128,
    mac_key: [u8; 32],
}

impl std::fmt::Debug for SealKey {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SealKey").finish_non_exhaustive()
    }
}

impl Drop for SealKey {
    fn drop(&mut self) {
        // `cipher` scrubs its own round keys in its `Drop`.
        crate::zeroize::zeroize_bytes(&mut self.mac_key);
    }
}

impl SealKey {
    /// Derives encryption and MAC keys from `secret`, bound to `label`.
    pub fn derive(secret: &[u8; 32], label: &[u8]) -> Self {
        let okm = hkdf(b"monatt-seal-v1", secret, label, 16 + 32);
        let mut enc_key = [0u8; 16];
        enc_key.copy_from_slice(&okm[..16]);
        let mut mac_key = [0u8; 32];
        mac_key.copy_from_slice(&okm[16..]);
        SealKey {
            cipher: Aes128::new(&enc_key),
            mac_key,
        }
    }

    /// Encrypts `plaintext` and appends a tag binding `nonce` and `aad`.
    /// The output is `ciphertext || tag`.
    pub fn seal(&self, nonce: &[u8; NONCE_LEN], aad: &[u8], plaintext: &[u8]) -> Vec<u8> {
        let mut out = Vec::with_capacity(plaintext.len() + TAG_LEN);
        self.seal_into(nonce, aad, plaintext, &mut out);
        out
    }

    /// [`Self::seal`] appending `ciphertext || tag` to `out` — the
    /// steady-state form for hot paths that own the record buffer
    /// (existing contents before the append are untouched).
    pub fn seal_into(
        &self,
        nonce: &[u8; NONCE_LEN],
        aad: &[u8],
        plaintext: &[u8],
        out: &mut Vec<u8>,
    ) {
        let start = out.len();
        out.extend_from_slice(plaintext);
        if let Some(ct) = out.get_mut(start..) {
            self.cipher.ctr_xor(nonce, ct);
        }
        let mut mac = HmacSha256::new(&self.mac_key);
        mac.update(nonce);
        mac.update(&(aad.len() as u64).to_be_bytes());
        mac.update(aad);
        if let Some(ct) = out.get(start..) {
            mac.update(ct);
        }
        let tag = mac.finalize();
        out.extend_from_slice(&tag);
    }

    /// Verifies and decrypts a message produced by [`Self::seal`].
    ///
    /// # Errors
    ///
    /// Returns [`CryptoError::InvalidTag`] if the message is too short or
    /// the tag does not verify (wrong key, nonce, aad, or tampering).
    pub fn open(
        &self,
        nonce: &[u8; NONCE_LEN],
        aad: &[u8],
        sealed: &[u8],
    ) -> Result<Vec<u8>, CryptoError> {
        let mut pt = Vec::with_capacity(sealed.len().saturating_sub(TAG_LEN));
        self.open_into(nonce, aad, sealed, &mut pt)?;
        Ok(pt)
    }

    /// [`Self::open`] appending the plaintext to `out` (untouched on
    /// error) — the steady-state form for hot paths that own the
    /// receive buffer.
    ///
    /// # Errors
    ///
    /// Returns [`CryptoError::InvalidTag`] if the message is too short or
    /// the tag does not verify (wrong key, nonce, aad, or tampering).
    pub fn open_into(
        &self,
        nonce: &[u8; NONCE_LEN],
        aad: &[u8],
        sealed: &[u8],
        out: &mut Vec<u8>,
    ) -> Result<(), CryptoError> {
        if sealed.len() < TAG_LEN {
            return Err(CryptoError::InvalidTag);
        }
        let (ct, tag) = sealed.split_at(sealed.len() - TAG_LEN);
        let mut mac = HmacSha256::new(&self.mac_key);
        mac.update(nonce);
        mac.update(&(aad.len() as u64).to_be_bytes());
        mac.update(aad);
        mac.update(ct);
        if !verify_tag(&mac.finalize(), tag) {
            return Err(CryptoError::InvalidTag);
        }
        let start = out.len();
        out.extend_from_slice(ct);
        if let Some(pt) = out.get_mut(start..) {
            self.cipher.ctr_xor(nonce, pt);
        }
        Ok(())
    }

    /// Computes a raw MAC over `data` with this key's MAC half. Used for
    /// integrity-only records.
    pub fn mac(&self, data: &[u8]) -> [u8; 32] {
        hmac_sha256(&self.mac_key, data)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn key(label: &[u8]) -> SealKey {
        SealKey::derive(&[42u8; 32], label)
    }

    #[test]
    fn seal_open_roundtrip() {
        let k = key(b"c2s");
        let nonce = [1u8; NONCE_LEN];
        let sealed = k.seal(&nonce, b"header", b"secret payload");
        assert_eq!(
            k.open(&nonce, b"header", &sealed).unwrap(),
            b"secret payload"
        );
    }

    #[test]
    fn rejects_tampered_ciphertext() {
        let k = key(b"c2s");
        let nonce = [1u8; NONCE_LEN];
        let mut sealed = k.seal(&nonce, b"", b"payload");
        sealed[0] ^= 1;
        assert_eq!(k.open(&nonce, b"", &sealed), Err(CryptoError::InvalidTag));
    }

    #[test]
    fn rejects_tampered_tag() {
        let k = key(b"c2s");
        let nonce = [1u8; NONCE_LEN];
        let mut sealed = k.seal(&nonce, b"", b"payload");
        let last = sealed.len() - 1;
        sealed[last] ^= 1;
        assert!(k.open(&nonce, b"", &sealed).is_err());
    }

    #[test]
    fn rejects_wrong_nonce_or_aad() {
        let k = key(b"c2s");
        let sealed = k.seal(&[1u8; NONCE_LEN], b"aad", b"payload");
        assert!(k.open(&[2u8; NONCE_LEN], b"aad", &sealed).is_err());
        assert!(k.open(&[1u8; NONCE_LEN], b"other", &sealed).is_err());
    }

    #[test]
    fn rejects_wrong_direction_key() {
        let sealed = key(b"c2s").seal(&[1u8; NONCE_LEN], b"", b"payload");
        assert!(key(b"s2c").open(&[1u8; NONCE_LEN], b"", &sealed).is_err());
    }

    #[test]
    fn rejects_truncated() {
        let k = key(b"c2s");
        assert_eq!(
            k.open(&[0u8; NONCE_LEN], b"", &[0u8; 5]),
            Err(CryptoError::InvalidTag)
        );
        assert!(k.open(&[0u8; NONCE_LEN], b"", &[]).is_err());
    }

    #[test]
    fn empty_plaintext_ok() {
        let k = key(b"c2s");
        let sealed = k.seal(&[0u8; NONCE_LEN], b"aad", b"");
        assert_eq!(sealed.len(), TAG_LEN);
        assert_eq!(k.open(&[0u8; NONCE_LEN], b"aad", &sealed).unwrap(), b"");
    }

    #[test]
    fn label_separates_keys() {
        let a = key(b"a").seal(&[0u8; NONCE_LEN], b"", b"msg");
        let b = key(b"b").seal(&[0u8; NONCE_LEN], b"", b"msg");
        assert_ne!(a, b);
    }
}
