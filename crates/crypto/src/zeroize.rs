//! Best-effort secret zeroization and constant-time comparison.
//!
//! These are the runtime counterparts of the `monatt-lint` rules: the
//! `secret_hygiene` rule requires every key-material type to route its
//! `Drop` through [`zeroize_bytes`]/[`zeroize_u64s`], and the
//! `const_time` rule requires tag/digest comparisons to go through
//! [`ct_eq`].
//!
//! Zeroization is *best effort*: the buffer is overwritten with zeros and
//! the write is pinned with [`std::hint::black_box`] plus a compiler
//! fence so the optimizer cannot prove the store dead and elide it. This
//! does not scrub copies the compiler may have spilled elsewhere — the
//! same caveat applies to every zeroization crate without OS support —
//! but it removes key bytes from the place they verifiably lived.

use std::sync::atomic::{compiler_fence, Ordering};

/// Overwrites `bytes` with zeros in a way the optimizer must not elide.
pub fn zeroize_bytes(bytes: &mut [u8]) {
    bytes.fill(0);
    std::hint::black_box(&*bytes);
    compiler_fence(Ordering::SeqCst);
}

/// Overwrites `words` with zeros in a way the optimizer must not elide.
pub fn zeroize_u64s(words: &mut [u64]) {
    words.fill(0);
    std::hint::black_box(&*words);
    compiler_fence(Ordering::SeqCst);
}

/// Compares two byte slices in time independent of where they differ.
///
/// Differing lengths return `false` immediately — the length of a tag or
/// digest is public. This is the only comparison the `const_time` lint
/// rule permits on tag/MAC/digest material.
///
/// # Examples
///
/// ```
/// use monatt_crypto::zeroize::ct_eq;
///
/// assert!(ct_eq(b"abc", b"abc"));
/// assert!(!ct_eq(b"abc", b"abd"));
/// assert!(!ct_eq(b"abc", b"abcd"));
/// ```
pub fn ct_eq(a: &[u8], b: &[u8]) -> bool {
    if a.len() != b.len() {
        return false;
    }
    let mut diff = 0u8;
    for (x, y) in a.iter().zip(b) {
        diff |= x ^ y;
    }
    diff == 0
}

/// A fixed-size byte buffer that zeroizes itself on drop.
///
/// Use it for transient key material (session secrets, derived key
/// blocks) that lives on the stack between derivation and installation
/// into a keyed type.
pub struct Zeroizing<const N: usize>(pub [u8; N]);

impl<const N: usize> Zeroizing<N> {
    /// Wraps `bytes`, taking responsibility for scrubbing them.
    pub fn new(bytes: [u8; N]) -> Self {
        Zeroizing(bytes)
    }
}

impl<const N: usize> std::ops::Deref for Zeroizing<N> {
    type Target = [u8; N];
    fn deref(&self) -> &[u8; N] {
        &self.0
    }
}

impl<const N: usize> std::ops::DerefMut for Zeroizing<N> {
    fn deref_mut(&mut self) -> &mut [u8; N] {
        &mut self.0
    }
}

impl<const N: usize> Drop for Zeroizing<N> {
    fn drop(&mut self) {
        zeroize_bytes(&mut self.0);
    }
}

impl<const N: usize> std::fmt::Debug for Zeroizing<N> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Zeroizing<{N}>(REDACTED)")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zeroize_clears_bytes() {
        let mut buf = [0xAAu8; 64];
        zeroize_bytes(&mut buf);
        assert_eq!(buf, [0u8; 64]);
        let mut words = [u64::MAX; 8];
        zeroize_u64s(&mut words);
        assert_eq!(words, [0u64; 8]);
    }

    #[test]
    fn ct_eq_matches_semantics_of_eq() {
        assert!(ct_eq(&[], &[]));
        assert!(ct_eq(&[1, 2, 3], &[1, 2, 3]));
        assert!(!ct_eq(&[1, 2, 3], &[1, 2, 4]));
        assert!(!ct_eq(&[1, 2, 3], &[1, 2]));
    }

    #[test]
    fn zeroizing_redacts_debug() {
        let z = Zeroizing::new([7u8; 16]);
        let s = format!("{z:?}");
        assert!(!s.contains('7'));
        assert!(s.contains("REDACTED"));
    }

    #[test]
    fn zeroizing_derefs() {
        let mut z = Zeroizing::new([1u8; 4]);
        z[0] = 9;
        assert_eq!(*z, [9, 1, 1, 1]);
    }
}
