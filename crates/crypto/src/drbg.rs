//! A deterministic random bit generator built on the ChaCha20 block
//! function (RFC 8439), with convenience constructors for OS-entropy and
//! fixed-seed (reproducible simulation) instantiation.

use crate::bigint::U256;
use crate::sha256::sha256;

/// The ChaCha20 block function: 20 rounds over a 16-word state built from a
/// 32-byte key, 12-byte nonce and 32-bit block counter. Returns 64 bytes of
/// keystream.
fn chacha20_block(key: &[u8; 32], counter: u32, nonce: &[u8; 12]) -> [u8; 64] {
    let mut state = [0u32; 16];
    state[0] = 0x6170_7865;
    state[1] = 0x3320_646e;
    state[2] = 0x7962_2d32;
    state[3] = 0x6b20_6574;
    for i in 0..8 {
        state[4 + i] =
            u32::from_le_bytes([key[i * 4], key[i * 4 + 1], key[i * 4 + 2], key[i * 4 + 3]]);
    }
    state[12] = counter;
    for i in 0..3 {
        state[13 + i] = u32::from_le_bytes([
            nonce[i * 4],
            nonce[i * 4 + 1],
            nonce[i * 4 + 2],
            nonce[i * 4 + 3],
        ]);
    }
    let mut working = state;
    for _ in 0..10 {
        // Column rounds.
        quarter_round(&mut working, 0, 4, 8, 12);
        quarter_round(&mut working, 1, 5, 9, 13);
        quarter_round(&mut working, 2, 6, 10, 14);
        quarter_round(&mut working, 3, 7, 11, 15);
        // Diagonal rounds.
        quarter_round(&mut working, 0, 5, 10, 15);
        quarter_round(&mut working, 1, 6, 11, 12);
        quarter_round(&mut working, 2, 7, 8, 13);
        quarter_round(&mut working, 3, 4, 9, 14);
    }
    let mut out = [0u8; 64];
    for i in 0..16 {
        let word = working[i].wrapping_add(state[i]);
        out[i * 4..(i + 1) * 4].copy_from_slice(&word.to_le_bytes());
    }
    out
}

#[inline]
fn quarter_round(s: &mut [u32; 16], a: usize, b: usize, c: usize, d: usize) {
    s[a] = s[a].wrapping_add(s[b]);
    s[d] = (s[d] ^ s[a]).rotate_left(16);
    s[c] = s[c].wrapping_add(s[d]);
    s[b] = (s[b] ^ s[c]).rotate_left(12);
    s[a] = s[a].wrapping_add(s[b]);
    s[d] = (s[d] ^ s[a]).rotate_left(8);
    s[c] = s[c].wrapping_add(s[d]);
    s[b] = (s[b] ^ s[c]).rotate_left(7);
}

/// A ChaCha20-based DRBG.
///
/// Two construction paths exist: [`Drbg::from_entropy`] pulls a seed from
/// the operating system for live use, while [`Drbg::from_seed`] gives the
/// reproducible streams that simulations and tests need.
///
/// # Examples
///
/// ```
/// use monatt_crypto::drbg::Drbg;
///
/// let mut a = Drbg::from_seed(7);
/// let mut b = Drbg::from_seed(7);
/// assert_eq!(a.next_u64(), b.next_u64());
/// ```
#[derive(Clone)]
pub struct Drbg {
    key: [u8; 32],
    counter: u32,
    block_high: u64,
    buffer: [u8; 64],
    buffer_pos: usize,
}

impl std::fmt::Debug for Drbg {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        // Never print key material.
        f.debug_struct("Drbg")
            .field("counter", &self.counter)
            .field("block_high", &self.block_high)
            .finish_non_exhaustive()
    }
}

impl Drop for Drbg {
    fn drop(&mut self) {
        // Both the key and the buffered output (which an attacker could
        // replay into future key derivations) are scrubbed.
        crate::zeroize::zeroize_bytes(&mut self.key);
        crate::zeroize::zeroize_bytes(&mut self.buffer);
    }
}

impl Drbg {
    /// Creates a DRBG from a full 32-byte seed.
    pub fn from_seed_bytes(seed: [u8; 32]) -> Self {
        Drbg {
            key: seed,
            counter: 0,
            block_high: 0,
            buffer: [0; 64],
            buffer_pos: 64,
        }
    }

    /// Creates a DRBG from a small integer seed, expanded by hashing.
    pub fn from_seed(seed: u64) -> Self {
        let mut material = [0u8; 16];
        material[..8].copy_from_slice(&seed.to_le_bytes());
        material[8..].copy_from_slice(b"monattdb");
        Self::from_seed_bytes(sha256(&material))
    }

    /// Creates a DRBG seeded from operating-system entropy.
    pub fn from_entropy() -> Self {
        let mut seed = [0u8; 32];
        rand::RngCore::fill_bytes(&mut rand::rngs::OsRng, &mut seed);
        Self::from_seed_bytes(seed)
    }

    fn refill(&mut self) {
        // Use block_high as part of the nonce so the stream does not repeat
        // even after 2^32 blocks.
        let mut nonce = [0u8; 12];
        nonce[..8].copy_from_slice(&self.block_high.to_le_bytes());
        self.buffer = chacha20_block(&self.key, self.counter, &nonce);
        let (next, wrapped) = self.counter.overflowing_add(1);
        self.counter = next;
        if wrapped {
            self.block_high = self.block_high.wrapping_add(1);
        }
        self.buffer_pos = 0;
    }

    /// Fills `out` with pseudorandom bytes.
    pub fn fill_bytes(&mut self, out: &mut [u8]) {
        for byte in out {
            if self.buffer_pos == 64 {
                self.refill();
            }
            *byte = self.buffer[self.buffer_pos];
            self.buffer_pos += 1;
        }
    }

    /// Returns 32 pseudorandom bytes.
    pub fn next_bytes32(&mut self) -> [u8; 32] {
        let mut out = [0u8; 32];
        self.fill_bytes(&mut out);
        out
    }

    /// Returns a pseudorandom `u64`.
    pub fn next_u64(&mut self) -> u64 {
        let mut b = [0u8; 8];
        self.fill_bytes(&mut b);
        u64::from_le_bytes(b)
    }

    /// Returns a pseudorandom `u64` uniform in `[0, bound)` via rejection
    /// sampling.
    ///
    /// # Panics
    ///
    /// Panics if `bound` is zero.
    pub fn next_u64_below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "bound must be positive");
        let zone = u64::MAX - (u64::MAX % bound);
        loop {
            let v = self.next_u64();
            if v < zone {
                return v % bound;
            }
        }
    }

    /// Returns a uniformly random `U256` in `[1, bound)` — the range used
    /// for private keys and nonces in a prime-order group.
    ///
    /// # Panics
    ///
    /// Panics if `bound <= 1`.
    pub fn next_u256_in_group(&mut self, bound: &U256) -> U256 {
        assert!(*bound > U256::ONE, "bound must exceed one");
        loop {
            let candidate = U256::from_be_bytes(&self.next_bytes32());
            let reduced = candidate.rem(bound);
            if !reduced.is_zero() {
                return reduced;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rfc8439_block_vector() {
        // RFC 8439 section 2.3.2 test vector.
        let mut key = [0u8; 32];
        for (i, b) in key.iter_mut().enumerate() {
            *b = i as u8;
        }
        let nonce = [0, 0, 0, 9, 0, 0, 0, 0x4a, 0, 0, 0, 0];
        let out = chacha20_block(&key, 1, &nonce);
        assert_eq!(
            &out[..16],
            &[
                0x10, 0xf1, 0xe7, 0xe4, 0xd1, 0x3b, 0x59, 0x15, 0x50, 0x0f, 0xdd, 0x1f, 0xa3, 0x20,
                0x71, 0xc4
            ]
        );
    }

    #[test]
    fn deterministic_from_seed() {
        let mut a = Drbg::from_seed(99);
        let mut b = Drbg::from_seed(99);
        let mut c = Drbg::from_seed(100);
        let (x, y, z) = (a.next_u64(), b.next_u64(), c.next_u64());
        assert_eq!(x, y);
        assert_ne!(x, z);
    }

    #[test]
    fn fill_bytes_spans_blocks() {
        let mut d = Drbg::from_seed(1);
        let mut big = vec![0u8; 200];
        d.fill_bytes(&mut big);
        // Compare against byte-at-a-time extraction.
        let mut d2 = Drbg::from_seed(1);
        let mut single = vec![0u8; 200];
        for b in &mut single {
            let mut one = [0u8];
            d2.fill_bytes(&mut one);
            *b = one[0];
        }
        assert_eq!(big, single);
    }

    #[test]
    fn bounded_sampling_in_range() {
        let mut d = Drbg::from_seed(3);
        for _ in 0..1000 {
            assert!(d.next_u64_below(7) < 7);
        }
    }

    #[test]
    fn group_sampling_in_range() {
        let q = U256::from_u64(1000);
        let mut d = Drbg::from_seed(4);
        for _ in 0..100 {
            let v = d.next_u256_in_group(&q);
            assert!(!v.is_zero());
            assert!(v < q);
        }
    }

    #[test]
    fn entropy_streams_differ() {
        let mut a = Drbg::from_entropy();
        let mut b = Drbg::from_entropy();
        // 2^-64 false-failure probability.
        assert_ne!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn debug_hides_key() {
        let d = Drbg::from_seed(5);
        let repr = format!("{:?}", d);
        assert!(repr.contains("Drbg"));
        assert!(!repr.contains("key"));
    }
}
