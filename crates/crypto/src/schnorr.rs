//! Schnorr signatures over the crate's safe-prime [`Group`].
//!
//! Signing uses deterministic nonces (an HMAC of the secret key and the
//! message, in the spirit of RFC 6979) so a broken RNG can never leak the
//! key through nonce reuse.

use crate::bigint::U256;
use crate::drbg::Drbg;
use crate::error::CryptoError;
use crate::group::Group;
use crate::hmac::HmacSha256;
use crate::modmath::{mod_add, mod_mul, mod_sub};
use crate::sha256::Sha256;

/// A Schnorr signing (private) key.
#[derive(Clone, PartialEq, Eq)]
pub struct SigningKey {
    secret: U256,
    public: VerifyingKey,
}

impl std::fmt::Debug for SigningKey {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        // Never print the secret scalar.
        f.debug_struct("SigningKey")
            .field("public", &self.public)
            .finish_non_exhaustive()
    }
}

impl Drop for SigningKey {
    fn drop(&mut self) {
        self.secret.zeroize();
    }
}

/// A Schnorr verifying (public) key.
#[derive(Clone, Copy, PartialEq, Eq, Hash)]
pub struct VerifyingKey(pub(crate) U256);

impl std::fmt::Debug for VerifyingKey {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "VerifyingKey({:x})", self.0)
    }
}

/// A Schnorr signature `(r, s)`: the nonce commitment `r = g^k mod p` and
/// the response `s = k + e·sk mod q`, where `e = H(r || m) mod q`.
///
/// The commitment form (rather than the compact `(e, s)` form) is what
/// makes verification *batchable*: each signature contributes the linear
/// relation `g^s = r · pk^e`, and [`crate::batch::batch_verify`] can fold
/// many such relations into one multi-exponentiation with random weights.
/// In the `(e, s)` form every `r` is locked inside its own challenge hash
/// and no combination is possible.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct Signature {
    /// Nonce commitment `g^k mod p`.
    pub r: U256,
    /// Response scalar `k + e·sk mod q`.
    pub s: U256,
}

impl Signature {
    /// Serializes to 64 bytes (`r || s`, each 32 bytes big-endian).
    pub fn to_bytes(&self) -> [u8; 64] {
        let mut out = [0u8; 64];
        out[..32].copy_from_slice(&self.r.to_be_bytes());
        out[32..].copy_from_slice(&self.s.to_be_bytes());
        out
    }

    /// Deserializes from the 64-byte form produced by [`Self::to_bytes`].
    pub fn from_bytes(bytes: &[u8; 64]) -> Self {
        let mut r = [0u8; 32];
        let mut s = [0u8; 32];
        r.copy_from_slice(&bytes[..32]);
        s.copy_from_slice(&bytes[32..]);
        Signature {
            r: U256::from_be_bytes(&r),
            s: U256::from_be_bytes(&s),
        }
    }
}

impl SigningKey {
    /// Generates a fresh key pair using randomness from `rng`.
    pub fn generate(rng: &mut Drbg) -> Self {
        let grp = Group::default_group();
        let secret = rng.next_u256_in_group(&grp.q);
        Self::from_secret(secret)
    }

    /// Builds a key pair from an existing secret scalar (reduced mod `q`;
    /// must not reduce to zero).
    ///
    /// # Panics
    ///
    /// Panics if the secret reduces to zero modulo the group order.
    pub fn from_secret(secret: U256) -> Self {
        let grp = Group::default_group();
        let secret = secret.rem(&grp.q);
        assert!(!secret.is_zero(), "secret key must be nonzero mod q");
        let public = VerifyingKey(grp.pow_g(&secret));
        SigningKey { secret, public }
    }

    /// Returns the corresponding verifying key.
    pub fn verifying_key(&self) -> VerifyingKey {
        self.public
    }

    /// Signs `message`.
    pub fn sign(&self, message: &[u8]) -> Signature {
        let grp = Group::default_group();
        // Deterministic nonce: k = HMAC(sk, message) mod q, retried with a
        // counter in the (cryptographically negligible) zero case.
        let sk_bytes = self.secret.to_be_bytes();
        let mut counter = 0u8;
        let k = loop {
            // Streamed as HMAC(sk, message || counter): same tag as the
            // concatenated form, no per-signature buffer.
            let mut mac = HmacSha256::new(&sk_bytes);
            mac.update(message);
            mac.update(&[counter]);
            let k = U256::from_be_bytes(&mac.finalize()).rem(&grp.q);
            if !k.is_zero() {
                break k;
            }
            counter = counter.wrapping_add(1);
        };
        let r = grp.pow_g(&k);
        let e = challenge(&r, message, &grp.q);
        // s = k + e * sk mod q
        let s = mod_add(&k, &mod_mul(&e, &self.secret, &grp.q), &grp.q);
        Signature { r, s }
    }
}

impl VerifyingKey {
    /// Returns the key's group element.
    pub fn element(&self) -> U256 {
        self.0
    }

    /// Encodes as 32 big-endian bytes.
    pub fn to_bytes(&self) -> [u8; 32] {
        self.0.to_be_bytes()
    }

    /// Decodes a key and validates group membership.
    ///
    /// # Errors
    ///
    /// Returns [`CryptoError::InvalidKey`] if the element is not in the
    /// prime-order subgroup.
    pub fn from_bytes(bytes: &[u8; 32]) -> Result<Self, CryptoError> {
        let elem = U256::from_be_bytes(bytes);
        if Group::default_group().is_element(&elem) {
            Ok(VerifyingKey(elem))
        } else {
            Err(CryptoError::InvalidKey)
        }
    }

    /// Verifies `signature` over `message`.
    ///
    /// # Errors
    ///
    /// Returns [`CryptoError::InvalidSignature`] if verification fails.
    pub fn verify(&self, message: &[u8], signature: &Signature) -> Result<(), CryptoError> {
        let grp = Group::default_group();
        if signature.s >= grp.q || signature.r.is_zero() || signature.r >= grp.p {
            return Err(CryptoError::InvalidSignature);
        }
        // r' = g^s * pk^(q - e)  (pk has order q, so pk^(q-e) = pk^(-e)),
        // computed as one Shamir double exponentiation: both scalars share
        // a single squaring chain instead of running two full ladders.
        let e = challenge(&signature.r, message, &grp.q);
        let neg_e = mod_sub(&grp.q, &e, &grp.q);
        let r_prime = grp.pow_double(&grp.g, &signature.s, &self.0, &neg_e);
        if r_prime == signature.r {
            Ok(())
        } else {
            Err(CryptoError::InvalidSignature)
        }
    }
}

/// The Fiat-Shamir challenge: `H(r || m) mod q`.
pub(crate) fn challenge(r: &U256, message: &[u8], q: &U256) -> U256 {
    let mut h = Sha256::new();
    h.update(&r.to_be_bytes());
    h.update(message);
    U256::from_be_bytes(&h.finalize()).rem(q)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn keypair(seed: u64) -> SigningKey {
        SigningKey::generate(&mut Drbg::from_seed(seed))
    }

    #[test]
    fn sign_verify_roundtrip() {
        let sk = keypair(1);
        let sig = sk.sign(b"attestation report");
        assert!(sk
            .verifying_key()
            .verify(b"attestation report", &sig)
            .is_ok());
    }

    #[test]
    fn rejects_wrong_message() {
        let sk = keypair(2);
        let sig = sk.sign(b"original");
        assert_eq!(
            sk.verifying_key().verify(b"tampered", &sig),
            Err(CryptoError::InvalidSignature)
        );
    }

    #[test]
    fn rejects_wrong_key() {
        let sk1 = keypair(3);
        let sk2 = keypair(4);
        let sig = sk1.sign(b"msg");
        assert!(sk2.verifying_key().verify(b"msg", &sig).is_err());
    }

    #[test]
    fn rejects_tampered_signature() {
        let sk = keypair(5);
        let mut sig = sk.sign(b"msg");
        sig.s = mod_add(&sig.s, &U256::ONE, &Group::default_group().q);
        assert!(sk.verifying_key().verify(b"msg", &sig).is_err());
    }

    #[test]
    fn rejects_out_of_range_scalars() {
        let sk = keypair(6);
        let mut sig = sk.sign(b"msg");
        sig.s = Group::default_group().q; // == q is invalid
        assert!(sk.verifying_key().verify(b"msg", &sig).is_err());

        let mut sig = sk.sign(b"msg");
        sig.r = Group::default_group().p; // commitment must be < p
        assert!(sk.verifying_key().verify(b"msg", &sig).is_err());

        let mut sig = sk.sign(b"msg");
        sig.r = U256::ZERO; // and nonzero
        assert!(sk.verifying_key().verify(b"msg", &sig).is_err());
    }

    #[test]
    fn deterministic_signatures() {
        let sk = keypair(7);
        assert_eq!(sk.sign(b"m"), sk.sign(b"m"));
        assert_ne!(sk.sign(b"m"), sk.sign(b"n"));
    }

    #[test]
    fn signature_serialization_roundtrip() {
        let sk = keypair(8);
        let sig = sk.sign(b"serialize me");
        let restored = Signature::from_bytes(&sig.to_bytes());
        assert_eq!(sig, restored);
        assert!(sk
            .verifying_key()
            .verify(b"serialize me", &restored)
            .is_ok());
    }

    #[test]
    fn verifying_key_serialization() {
        let sk = keypair(9);
        let vk = sk.verifying_key();
        let restored = VerifyingKey::from_bytes(&vk.to_bytes()).unwrap();
        assert_eq!(vk, restored);
        // An element outside the subgroup is rejected.
        let bad = Group::default_group().p.wrapping_sub(&U256::ONE);
        assert_eq!(
            VerifyingKey::from_bytes(&bad.to_be_bytes()),
            Err(CryptoError::InvalidKey)
        );
    }

    #[test]
    fn empty_message() {
        let sk = keypair(10);
        let sig = sk.sign(b"");
        assert!(sk.verifying_key().verify(b"", &sig).is_ok());
        assert!(sk.verifying_key().verify(b"x", &sig).is_err());
    }

    #[test]
    fn debug_hides_secret() {
        let sk = keypair(11);
        let repr = format!("{:?}", sk);
        assert!(!repr.contains("secret"));
    }
}
