//! AES-128 (FIPS 197) encryption and CTR-mode keystream generation,
//! implemented from scratch with table-based S-box lookups.
//!
//! Only the encryption direction of the block cipher is implemented because
//! CTR mode uses it for both sealing and opening.

/// AES S-box.
const SBOX: [u8; 256] = [
    0x63, 0x7c, 0x77, 0x7b, 0xf2, 0x6b, 0x6f, 0xc5, 0x30, 0x01, 0x67, 0x2b, 0xfe, 0xd7, 0xab, 0x76,
    0xca, 0x82, 0xc9, 0x7d, 0xfa, 0x59, 0x47, 0xf0, 0xad, 0xd4, 0xa2, 0xaf, 0x9c, 0xa4, 0x72, 0xc0,
    0xb7, 0xfd, 0x93, 0x26, 0x36, 0x3f, 0xf7, 0xcc, 0x34, 0xa5, 0xe5, 0xf1, 0x71, 0xd8, 0x31, 0x15,
    0x04, 0xc7, 0x23, 0xc3, 0x18, 0x96, 0x05, 0x9a, 0x07, 0x12, 0x80, 0xe2, 0xeb, 0x27, 0xb2, 0x75,
    0x09, 0x83, 0x2c, 0x1a, 0x1b, 0x6e, 0x5a, 0xa0, 0x52, 0x3b, 0xd6, 0xb3, 0x29, 0xe3, 0x2f, 0x84,
    0x53, 0xd1, 0x00, 0xed, 0x20, 0xfc, 0xb1, 0x5b, 0x6a, 0xcb, 0xbe, 0x39, 0x4a, 0x4c, 0x58, 0xcf,
    0xd0, 0xef, 0xaa, 0xfb, 0x43, 0x4d, 0x33, 0x85, 0x45, 0xf9, 0x02, 0x7f, 0x50, 0x3c, 0x9f, 0xa8,
    0x51, 0xa3, 0x40, 0x8f, 0x92, 0x9d, 0x38, 0xf5, 0xbc, 0xb6, 0xda, 0x21, 0x10, 0xff, 0xf3, 0xd2,
    0xcd, 0x0c, 0x13, 0xec, 0x5f, 0x97, 0x44, 0x17, 0xc4, 0xa7, 0x7e, 0x3d, 0x64, 0x5d, 0x19, 0x73,
    0x60, 0x81, 0x4f, 0xdc, 0x22, 0x2a, 0x90, 0x88, 0x46, 0xee, 0xb8, 0x14, 0xde, 0x5e, 0x0b, 0xdb,
    0xe0, 0x32, 0x3a, 0x0a, 0x49, 0x06, 0x24, 0x5c, 0xc2, 0xd3, 0xac, 0x62, 0x91, 0x95, 0xe4, 0x79,
    0xe7, 0xc8, 0x37, 0x6d, 0x8d, 0xd5, 0x4e, 0xa9, 0x6c, 0x56, 0xf4, 0xea, 0x65, 0x7a, 0xae, 0x08,
    0xba, 0x78, 0x25, 0x2e, 0x1c, 0xa6, 0xb4, 0xc6, 0xe8, 0xdd, 0x74, 0x1f, 0x4b, 0xbd, 0x8b, 0x8a,
    0x70, 0x3e, 0xb5, 0x66, 0x48, 0x03, 0xf6, 0x0e, 0x61, 0x35, 0x57, 0xb9, 0x86, 0xc1, 0x1d, 0x9e,
    0xe1, 0xf8, 0x98, 0x11, 0x69, 0xd9, 0x8e, 0x94, 0x9b, 0x1e, 0x87, 0xe9, 0xce, 0x55, 0x28, 0xdf,
    0x8c, 0xa1, 0x89, 0x0d, 0xbf, 0xe6, 0x42, 0x68, 0x41, 0x99, 0x2d, 0x0f, 0xb0, 0x54, 0xbb, 0x16,
];

const RCON: [u8; 10] = [0x01, 0x02, 0x04, 0x08, 0x10, 0x20, 0x40, 0x80, 0x1b, 0x36];

/// xtime: multiply by x in GF(2^8) with the AES polynomial.
#[inline]
fn xtime(b: u8) -> u8 {
    (b << 1) ^ (((b >> 7) & 1) * 0x1b)
}

/// An expanded AES-128 key ready for block encryption.
///
/// # Examples
///
/// ```
/// use monatt_crypto::aes::Aes128;
///
/// let key = [0u8; 16];
/// let cipher = Aes128::new(&key);
/// let ct = cipher.encrypt_block(&[0u8; 16]);
/// assert_eq!(ct.len(), 16);
/// ```
#[derive(Clone)]
pub struct Aes128 {
    round_keys: [[u8; 16]; 11],
}

impl std::fmt::Debug for Aes128 {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Aes128").finish_non_exhaustive()
    }
}

impl Drop for Aes128 {
    fn drop(&mut self) {
        for rk in &mut self.round_keys {
            crate::zeroize::zeroize_bytes(rk);
        }
    }
}

impl Aes128 {
    /// Expands `key` into the 11 round keys.
    pub fn new(key: &[u8; 16]) -> Self {
        let mut w = [[0u8; 4]; 44];
        for i in 0..4 {
            w[i].copy_from_slice(&key[i * 4..(i + 1) * 4]);
        }
        for i in 4..44 {
            let mut temp = w[i - 1];
            if i % 4 == 0 {
                temp.rotate_left(1);
                for b in &mut temp {
                    *b = SBOX[*b as usize];
                }
                temp[0] ^= RCON[i / 4 - 1];
            }
            for j in 0..4 {
                w[i][j] = w[i - 4][j] ^ temp[j];
            }
        }
        let mut round_keys = [[0u8; 16]; 11];
        for r in 0..11 {
            for c in 0..4 {
                round_keys[r][c * 4..(c + 1) * 4].copy_from_slice(&w[r * 4 + c]);
            }
        }
        Aes128 { round_keys }
    }

    /// Encrypts a single 16-byte block.
    pub fn encrypt_block(&self, block: &[u8; 16]) -> [u8; 16] {
        let mut state = *block;
        add_round_key(&mut state, &self.round_keys[0]);
        for round in 1..10 {
            sub_bytes(&mut state);
            shift_rows(&mut state);
            mix_columns(&mut state);
            add_round_key(&mut state, &self.round_keys[round]);
        }
        sub_bytes(&mut state);
        shift_rows(&mut state);
        add_round_key(&mut state, &self.round_keys[10]);
        state
    }

    /// XORs the CTR-mode keystream for `nonce` into `data` in place.
    /// Calling it twice with the same nonce round-trips (encrypt/decrypt).
    ///
    /// The 16-byte counter block is `nonce (12 bytes) || counter (4 bytes,
    /// big-endian)`, starting at counter 0.
    pub fn ctr_xor(&self, nonce: &[u8; 12], data: &mut [u8]) {
        let mut counter_block = [0u8; 16];
        counter_block[..12].copy_from_slice(nonce);
        for (block_idx, chunk) in data.chunks_mut(16).enumerate() {
            counter_block[12..].copy_from_slice(&(block_idx as u32).to_be_bytes());
            let keystream = self.encrypt_block(&counter_block);
            for (b, k) in chunk.iter_mut().zip(keystream.iter()) {
                *b ^= k;
            }
        }
    }
}

#[inline]
fn add_round_key(state: &mut [u8; 16], rk: &[u8; 16]) {
    for i in 0..16 {
        state[i] ^= rk[i];
    }
}

#[inline]
fn sub_bytes(state: &mut [u8; 16]) {
    for b in state.iter_mut() {
        *b = SBOX[*b as usize];
    }
}

/// State is column-major: state[4*c + r] is row r, column c.
#[inline]
fn shift_rows(state: &mut [u8; 16]) {
    let s = *state;
    for r in 1..4 {
        for c in 0..4 {
            state[4 * c + r] = s[4 * ((c + r) % 4) + r];
        }
    }
}

#[inline]
fn mix_columns(state: &mut [u8; 16]) {
    for c in 0..4 {
        let col = [
            state[4 * c],
            state[4 * c + 1],
            state[4 * c + 2],
            state[4 * c + 3],
        ];
        let t = col[0] ^ col[1] ^ col[2] ^ col[3];
        state[4 * c] = col[0] ^ t ^ xtime(col[0] ^ col[1]);
        state[4 * c + 1] = col[1] ^ t ^ xtime(col[1] ^ col[2]);
        state[4 * c + 2] = col[2] ^ t ^ xtime(col[2] ^ col[3]);
        state[4 * c + 3] = col[3] ^ t ^ xtime(col[3] ^ col[0]);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hex_to_bytes(s: &str) -> Vec<u8> {
        (0..s.len())
            .step_by(2)
            .map(|i| u8::from_str_radix(&s[i..i + 2], 16).unwrap())
            .collect()
    }

    #[test]
    fn fips197_appendix_b() {
        let key: [u8; 16] = hex_to_bytes("2b7e151628aed2a6abf7158809cf4f3c")
            .try_into()
            .unwrap();
        let pt: [u8; 16] = hex_to_bytes("3243f6a8885a308d313198a2e0370734")
            .try_into()
            .unwrap();
        let cipher = Aes128::new(&key);
        let ct = cipher.encrypt_block(&pt);
        assert_eq!(
            ct.to_vec(),
            hex_to_bytes("3925841d02dc09fbdc118597196a0b32")
        );
    }

    #[test]
    fn fips197_appendix_c1() {
        let key: [u8; 16] = hex_to_bytes("000102030405060708090a0b0c0d0e0f")
            .try_into()
            .unwrap();
        let pt: [u8; 16] = hex_to_bytes("00112233445566778899aabbccddeeff")
            .try_into()
            .unwrap();
        let ct = Aes128::new(&key).encrypt_block(&pt);
        assert_eq!(
            ct.to_vec(),
            hex_to_bytes("69c4e0d86a7b0430d8cdb78070b4c55a")
        );
    }

    #[test]
    fn ctr_roundtrip() {
        let cipher = Aes128::new(&[7u8; 16]);
        let nonce = [9u8; 12];
        let original: Vec<u8> = (0..100).map(|i| i as u8).collect();
        let mut buf = original.clone();
        cipher.ctr_xor(&nonce, &mut buf);
        assert_ne!(buf, original);
        cipher.ctr_xor(&nonce, &mut buf);
        assert_eq!(buf, original);
    }

    #[test]
    fn ctr_nonce_separation() {
        let cipher = Aes128::new(&[7u8; 16]);
        let mut a = vec![0u8; 32];
        let mut b = vec![0u8; 32];
        cipher.ctr_xor(&[1u8; 12], &mut a);
        cipher.ctr_xor(&[2u8; 12], &mut b);
        assert_ne!(a, b);
    }

    #[test]
    fn ctr_empty_and_partial_blocks() {
        let cipher = Aes128::new(&[7u8; 16]);
        let mut empty: Vec<u8> = Vec::new();
        cipher.ctr_xor(&[0u8; 12], &mut empty);
        assert!(empty.is_empty());
        let mut partial = vec![0xaa; 5];
        cipher.ctr_xor(&[0u8; 12], &mut partial);
        cipher.ctr_xor(&[0u8; 12], &mut partial);
        assert_eq!(partial, vec![0xaa; 5]);
    }
}
