//! Offline stand-in for the subset of the `rand` crate this workspace
//! uses. The build environment has no registry access, so the workspace
//! vendors the few APIs it needs: [`RngCore`], [`SeedableRng`],
//! [`Rng::gen_range`], a deterministic [`rngs::StdRng`] and an
//! OS-entropy-backed [`rngs::OsRng`].
//!
//! `StdRng` here is splitmix64 — statistically fine for workload jitter
//! and test-input generation, and deliberately *not* a cryptographic
//! generator (the workspace's `monatt-crypto` DRBG covers that need).

use std::ops::{Range, RangeInclusive};

/// Core random-number-generation methods.
pub trait RngCore {
    /// Returns the next pseudorandom `u64`.
    fn next_u64(&mut self) -> u64;

    /// Returns the next pseudorandom `u32`.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Fills `dest` with pseudorandom bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next_u64().to_le_bytes());
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let bytes = self.next_u64().to_le_bytes();
            rem.copy_from_slice(&bytes[..rem.len()]);
        }
    }
}

/// Construction of a generator from seed material.
pub trait SeedableRng: Sized {
    /// Creates a generator from a `u64` seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// A range that [`Rng::gen_range`] can sample from uniformly.
pub trait SampleRange<T> {
    /// Draws a uniform sample from the range.
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end - self.start) as u64;
                self.start + (rng.next_u64() % span) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi - lo) as u64;
                if span == u64::MAX {
                    return lo + rng.next_u64() as $t;
                }
                lo + (rng.next_u64() % (span + 1)) as $t
            }
        }
    )*};
}

impl_sample_range!(u8, u16, u32, u64, usize);

/// Convenience sampling methods layered over [`RngCore`].
pub trait Rng: RngCore {
    /// Returns a uniform sample from `range`.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample(self)
    }
}

impl<T: RngCore + ?Sized> Rng for T {}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Generator implementations.
pub mod rngs {
    use super::{splitmix64, RngCore, SeedableRng};

    /// A deterministic, seedable generator (splitmix64).
    #[derive(Clone, Debug)]
    pub struct StdRng {
        state: u64,
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // Avoid the all-zero weak state without perturbing other seeds.
            StdRng {
                state: seed ^ 0x5851_f42d_4c95_7f2d,
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            splitmix64(&mut self.state)
        }
    }

    /// An operating-system entropy source (`/dev/urandom`).
    ///
    /// If `/dev/urandom` is unavailable this panics rather than
    /// silently degrading: a clock-derived seed is predictable, and a
    /// quiet fallback was exactly the kind of hidden nondeterminism
    /// the workspace lint exists to catch. Builds for platforms
    /// without `/dev/urandom` can opt back in with the
    /// `clock-fallback` feature, which makes the degradation an
    /// explicit build-time decision.
    #[derive(Clone, Copy, Debug, Default)]
    pub struct OsRng;

    impl RngCore for OsRng {
        fn next_u64(&mut self) -> u64 {
            let mut buf = [0u8; 8];
            self.fill_bytes(&mut buf);
            u64::from_le_bytes(buf)
        }

        fn fill_bytes(&mut self, dest: &mut [u8]) {
            use std::io::Read;
            if let Ok(mut f) = std::fs::File::open("/dev/urandom") {
                if f.read_exact(dest).is_ok() {
                    return;
                }
            }
            fallback_fill(dest);
        }
    }

    /// Explicit, feature-gated degradation path: hash the wall clock
    /// and process id through splitmix64.
    #[cfg(feature = "clock-fallback")]
    pub(crate) fn fallback_fill(dest: &mut [u8]) {
        let mut state = std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .map(|d| d.as_nanos() as u64)
            .unwrap_or(0x1234_5678)
            ^ (std::process::id() as u64).rotate_left(32);
        for byte in dest {
            *byte = splitmix64(&mut state) as u8;
        }
    }

    #[cfg(not(feature = "clock-fallback"))]
    pub(crate) fn fallback_fill(_dest: &mut [u8]) {
        panic!(
            "OsRng: /dev/urandom unavailable; refusing to seed from the clock. \
             Enable the `clock-fallback` feature of the rand shim to opt into \
             predictable clock-based seeding on platforms without /dev/urandom."
        );
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::{OsRng, StdRng};
    use super::{Rng, RngCore, SeedableRng};

    #[test]
    fn std_rng_is_deterministic() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        assert_eq!(a.next_u64(), b.next_u64());
        let mut c = StdRng::seed_from_u64(8);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let v: u64 = rng.gen_range(10u64..20);
            assert!((10..20).contains(&v));
            let w: u64 = rng.gen_range(5u64..=5);
            assert_eq!(w, 5);
        }
    }

    #[test]
    fn fill_bytes_covers_partial_chunks() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut buf = [0u8; 13];
        rng.fill_bytes(&mut buf);
        assert!(buf.iter().any(|&b| b != 0));
    }

    #[test]
    fn os_rng_produces_entropy() {
        let mut a = [0u8; 16];
        let mut b = [0u8; 16];
        OsRng.fill_bytes(&mut a);
        OsRng.fill_bytes(&mut b);
        assert_ne!(a, b);
    }

    #[test]
    #[cfg(not(feature = "clock-fallback"))]
    #[should_panic(expected = "refusing to seed from the clock")]
    fn fallback_panics_without_clock_feature() {
        let mut buf = [0u8; 8];
        super::rngs::fallback_fill(&mut buf);
    }

    #[test]
    #[cfg(feature = "clock-fallback")]
    fn fallback_fills_with_clock_feature() {
        let mut buf = [0u8; 16];
        super::rngs::fallback_fill(&mut buf);
        assert!(buf.iter().any(|&b| b != 0));
    }
}
