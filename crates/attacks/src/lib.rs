//! # monatt-attacks
//!
//! The cloud attacks evaluated in the CloudMonatt paper, implemented
//! against the hypervisor simulator:
//!
//! * [`covert`] — the new CPU-timing cross-VM covert channel of Case Study
//!   III: sender, receiver and the bit codec (Figures 4 and 5, ~200 bps).
//! * [`boost`] — the new CPU availability attack of Case Study IV:
//!   IPI-driven BOOST abuse with tick dodging, starving a co-resident
//!   victim by >10× (Figures 6 and 7).
//! * [`rootkit`] — hidden in-VM malware for the runtime-integrity case
//!   study (Case Study II).
//! * [`image`] — VM-image tampering for the startup-integrity case study
//!   (Case Study I).
//!
//! ## Example: run the covert channel
//!
//! ```
//! use monatt_attacks::covert::{CovertReceiver, CovertSender};
//! use monatt_hypervisor::engine::ServerSim;
//! use monatt_hypervisor::ids::PcpuId;
//! use monatt_hypervisor::scheduler::SchedParams;
//! use monatt_hypervisor::time::SimTime;
//! use monatt_hypervisor::vm::VmConfig;
//!
//! let mut sim = ServerSim::new(1, SchedParams::default());
//! let sender = CovertSender::new(b"secret");
//! let receiver = CovertReceiver::new();
//! let log = receiver.log();
//! sim.create_vm(VmConfig::new("sender", vec![Box::new(sender)]).pin(vec![PcpuId(0)]));
//! sim.create_vm(VmConfig::new("receiver", vec![Box::new(receiver)]).pin(vec![PcpuId(0)]));
//! sim.run_until(SimTime::from_secs(1));
//! assert!(!log.borrow().gaps.is_empty());
//! ```

#![warn(missing_docs)]

pub mod boost;
pub mod covert;
pub mod image;
pub mod rootkit;

pub use boost::{boost_attack_drivers, BoostAttackVcpu};
pub use covert::{
    bits_to_message, message_to_bits, CovertReceiver, CovertSender, GapSample, ReceiverLog,
};
pub use image::{implant_payload, tamper_image};
pub use rootkit::{infect_visible, infect_with_rootkit, remove_malware};
