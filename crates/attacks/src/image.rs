//! Image and platform tampering for the startup-integrity case study
//! (Section 4.2): VM images or platform software corrupted in storage or
//! transit, caught by measured boot.

use monatt_hypervisor::guest::GuestOs;

/// Corrupts a VM image in place by XOR-flipping one byte at `offset`
/// (wrapped to the image length). Models malware insertion during storage
/// or transmission. Returns false if the image is empty.
pub fn tamper_image(guest: &mut GuestOs, offset: usize) -> bool {
    let image = guest.image_mut();
    if image.is_empty() {
        return false;
    }
    let idx = offset % image.len();
    image[idx] ^= 0xff;
    true
}

/// Appends a payload blob to an image — a grosser form of tampering.
pub fn implant_payload(guest: &mut GuestOs, payload: &[u8]) {
    guest.image_mut().extend_from_slice(payload);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tampering_changes_hash() {
        let mut guest = GuestOs::boot(b"pristine-image".to_vec(), &["init"]);
        let clean = guest.image_hash();
        assert!(tamper_image(&mut guest, 3));
        assert_ne!(guest.image_hash(), clean);
    }

    #[test]
    fn tamper_wraps_offset() {
        let mut guest = GuestOs::boot(vec![0u8; 4], &["init"]);
        assert!(tamper_image(&mut guest, 100)); // 100 % 4 == 0
        assert_eq!(guest.image_mut()[0], 0xff);
    }

    #[test]
    fn empty_image_cannot_be_tampered() {
        let mut guest = GuestOs::boot(Vec::new(), &["init"]);
        assert!(!tamper_image(&mut guest, 0));
    }

    #[test]
    fn payload_implant_changes_hash() {
        let mut guest = GuestOs::boot(b"img".to_vec(), &["init"]);
        let clean = guest.image_hash();
        implant_payload(&mut guest, b"evil");
        assert_ne!(guest.image_hash(), clean);
    }
}
