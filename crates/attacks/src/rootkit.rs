//! Inside-VM threats for the runtime-integrity case study (Section 4.3):
//! malware that runs as a hidden background service, concealed from
//! guest-visible process listings by a rootkit — but not from VM
//! introspection.

use monatt_hypervisor::engine::ServerSim;
use monatt_hypervisor::ids::VmId;

/// Infects `vm` with a rootkit-hidden malware service. Returns the
/// malware's pid, or `None` if the VM does not exist.
pub fn infect_with_rootkit(sim: &mut ServerSim, vm: VmId, service_name: &str) -> Option<u32> {
    sim.vm_mut(vm)
        .map(|v| v.guest.spawn_task(service_name, true))
}

/// Plants *visible* (non-hidden) malware — detectable even by in-guest
/// tools, useful as the easy-case control.
pub fn infect_visible(sim: &mut ServerSim, vm: VmId, service_name: &str) -> Option<u32> {
    sim.vm_mut(vm)
        .map(|v| v.guest.spawn_task(service_name, false))
}

/// Disinfects: kills the task with `pid`. Returns whether it existed.
pub fn remove_malware(sim: &mut ServerSim, vm: VmId, pid: u32) -> bool {
    sim.vm_mut(vm)
        .map(|v| v.guest.kill_task(pid))
        .unwrap_or(false)
}

#[cfg(test)]
mod tests {
    use super::*;
    use monatt_hypervisor::driver::IdleDriver;
    use monatt_hypervisor::scheduler::SchedParams;
    use monatt_hypervisor::vm::VmConfig;
    use monatt_hypervisor::vmi::VmiTool;

    fn sim_with_vm() -> (ServerSim, VmId) {
        let mut sim = ServerSim::new(1, SchedParams::default());
        let vm = sim.create_vm(VmConfig::new("target", vec![Box::new(IdleDriver)]));
        (sim, vm)
    }

    #[test]
    fn rootkit_malware_hidden_from_guest_but_not_vmi() {
        let (mut sim, vm) = sim_with_vm();
        let pid = infect_with_rootkit(&mut sim, vm, "botnet-agent").expect("vm exists");
        let vmi = VmiTool::new(&sim);
        let visible = vmi.guest_visible_task_list(vm).unwrap();
        assert!(!visible.iter().any(|t| t.pid == pid));
        let kernel = vmi.kernel_task_list(vm).unwrap();
        assert!(kernel.iter().any(|t| t.pid == pid));
    }

    #[test]
    fn visible_malware_shows_everywhere() {
        let (mut sim, vm) = sim_with_vm();
        let pid = infect_visible(&mut sim, vm, "obvious-miner").expect("vm exists");
        let vmi = VmiTool::new(&sim);
        assert!(vmi
            .guest_visible_task_list(vm)
            .unwrap()
            .iter()
            .any(|t| t.pid == pid));
    }

    #[test]
    fn removal_restores_clean_state() {
        let (mut sim, vm) = sim_with_vm();
        let pid = infect_with_rootkit(&mut sim, vm, "x").unwrap();
        assert!(remove_malware(&mut sim, vm, pid));
        let vmi = VmiTool::new(&sim);
        assert!(vmi.hidden_tasks(vm).unwrap().is_empty());
    }

    #[test]
    fn unknown_vm_is_none() {
        let (mut sim, _) = sim_with_vm();
        assert_eq!(infect_with_rootkit(&mut sim, VmId(99), "x"), None);
        assert!(!remove_malware(&mut sim, VmId(99), 1));
    }
}
