//! The CPU resource availability attack of Case Study IV (Section 4.5).
//!
//! The attacker VM launches multiple vCPUs that keep waking each other
//! with IPIs so one of them always holds the credit scheduler's BOOST
//! priority, starving a co-resident victim. The enabling vulnerability
//! (from Zhou et al., reproduced here) is *tick dodging*: the 10 ms
//! accounting tick only debits the vCPU running *at the tick instant*, so
//! an attacker that sleeps across every tick is never charged — it stays
//! UNDER (boost-eligible) forever while the victim, which runs exactly
//! when the ticks fire, pays for all of it and sinks to OVER.
//!
//! The victim is left only the small guard windows around each tick:
//! with the default parameters its CPU share drops to a few percent —
//! the paper's "degraded by more than ten times" (Figure 6).

use monatt_hypervisor::driver::{VcpuAction, VcpuView, WakeReason, WorkloadDriver};

/// Default guard before each tick during which the attacker sleeps.
pub const DEFAULT_GUARD_US: u64 = 300;
/// Default settle time after each tick before the attacker resumes.
pub const DEFAULT_SETTLE_US: u64 = 300;

/// One vCPU of the tick-dodging boost attacker. Deploy two of these (peer
/// indices pointing at each other) in one VM pinned to the victim's pCPU.
#[derive(Debug)]
pub struct BoostAttackVcpu {
    tick_us: u64,
    guard_us: u64,
    settle_us: u64,
    peer_index: usize,
    pending_handoff: bool,
}

impl BoostAttackVcpu {
    /// Creates an attacker vCPU that hands off to `peer_index` each cycle,
    /// with the default guard/settle windows against a 10 ms tick.
    pub fn new(peer_index: usize) -> Self {
        Self::with_params(peer_index, 10_000, DEFAULT_GUARD_US, DEFAULT_SETTLE_US)
    }

    /// Creates an attacker vCPU with explicit tick period and windows.
    ///
    /// # Panics
    ///
    /// Panics if `guard + settle >= tick` (no room left to compute).
    pub fn with_params(peer_index: usize, tick_us: u64, guard_us: u64, settle_us: u64) -> Self {
        assert!(
            guard_us + settle_us < tick_us,
            "guard and settle must leave compute room in the tick"
        );
        BoostAttackVcpu {
            tick_us,
            guard_us,
            settle_us,
            peer_index,
            pending_handoff: false,
        }
    }
}

impl WorkloadDriver for BoostAttackVcpu {
    fn next_action(&mut self, view: &VcpuView) -> VcpuAction {
        let now = view.now.as_micros();
        let next_tick = (now / self.tick_us + 1) * self.tick_us;
        if self.pending_handoff {
            // Wake the peer so one of us is always boosted, then sleep
            // across the tick so the debit lands on the victim.
            self.pending_handoff = false;
            return VcpuAction::SendIpi {
                target_index: self.peer_index,
            };
        }
        if now + self.guard_us >= next_tick {
            // In the guard zone: sleep until just past the tick. The timer
            // wake re-grants BOOST (we are always in credit).
            return VcpuAction::Block {
                duration_us: Some(next_tick + self.settle_us - now),
            };
        }
        // Safe region: hog the CPU right up to the guard zone.
        self.pending_handoff = true;
        VcpuAction::Compute {
            duration_us: next_tick - self.guard_us - now,
        }
    }

    fn on_wake(&mut self, _view: &VcpuView, _reason: WakeReason) {}
}

/// Builds the two-vCPU driver set for one attacker VM.
pub fn boost_attack_drivers() -> Vec<Box<dyn WorkloadDriver>> {
    vec![
        Box::new(BoostAttackVcpu::new(1)),
        Box::new(BoostAttackVcpu::new(0)),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use monatt_hypervisor::engine::ServerSim;
    use monatt_hypervisor::ids::PcpuId;
    use monatt_hypervisor::scheduler::SchedParams;
    use monatt_hypervisor::time::SimTime;
    use monatt_hypervisor::vm::VmConfig;
    use monatt_workloads::programs::CpuProgram;

    fn run_attack(params: SchedParams) -> (f64, f64) {
        let mut sim = ServerSim::new(1, params);
        let victim_prog = CpuProgram::new(60_000_000, 1_000);
        let victim = sim
            .create_vm(VmConfig::new("victim", vec![Box::new(victim_prog)]).pin(vec![PcpuId(0)]));
        let attacker = sim.create_vm(
            VmConfig::new("attacker", boost_attack_drivers()).pin(vec![PcpuId(0), PcpuId(0)]),
        );
        sim.run_until(SimTime::from_secs(10));
        let vu = sim.profile().relative_cpu_usage(victim, sim.now());
        let au = sim.profile().relative_cpu_usage(attacker, sim.now());
        (vu, au)
    }

    #[test]
    fn attack_starves_the_victim() {
        let (victim_usage, attacker_usage) = run_attack(SchedParams::default());
        assert!(
            victim_usage < 0.10,
            "victim should get <10% CPU (>10x degradation), got {victim_usage}"
        );
        assert!(
            attacker_usage > 0.80,
            "attacker should hog the CPU, got {attacker_usage}"
        );
    }

    #[test]
    fn boost_off_alone_does_not_stop_the_attack() {
        // Root-cause documentation: even with BOOST disabled, tick dodging
        // keeps the attacker UNDER and the victim OVER, so attacker wakes
        // still preempt. The vulnerability is the sampled accounting.
        let (victim_usage, _) = run_attack(SchedParams::without_boost());
        assert!(
            victim_usage < 0.15,
            "tick dodging should still starve the victim, got {victim_usage}"
        );
    }

    #[test]
    fn precise_accounting_defeats_the_attack() {
        // Hardening ablation: charging actual runtime at every deschedule
        // makes the attacker pay for its ~95% usage, dropping it to OVER;
        // its wakes stop outranking the victim and fairness returns.
        let (victim_usage, _) = run_attack(SchedParams::with_precise_accounting());
        assert!(
            victim_usage > 0.30,
            "precise accounting should restore a fair share, got {victim_usage}"
        );
    }

    #[test]
    fn attacker_dodges_tick_debits() {
        let mut sim = ServerSim::new(1, SchedParams::default());
        let victim_prog = CpuProgram::new(60_000_000, 1_000);
        let _victim = sim
            .create_vm(VmConfig::new("victim", vec![Box::new(victim_prog)]).pin(vec![PcpuId(0)]));
        let attacker = sim.create_vm(
            VmConfig::new("attacker", boost_attack_drivers()).pin(vec![PcpuId(0), PcpuId(0)]),
        );
        sim.run_until(SimTime::from_secs(5));
        // The attacker keeps winning boosts throughout the run, proof that
        // its credits never go negative despite ~95% CPU usage.
        let counters = sim.pmu().counters(attacker);
        assert!(counters.boosts > 400, "boosts = {}", counters.boosts);
    }

    #[test]
    #[should_panic(expected = "guard and settle must leave compute room")]
    fn degenerate_windows_rejected() {
        let _ = BoostAttackVcpu::with_params(1, 1_000, 600, 500);
    }
}
