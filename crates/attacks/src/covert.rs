//! The CPU-based cross-VM covert channel of Case Study III (Section 4.4).
//!
//! The sender VM encodes bits in how long it occupies the CPU: a long
//! burst signals "1", a short burst signals "0". It exploits the credit
//! scheduler's wake-up BOOST to seize the CPU at the start of every bit
//! slot (the paper's sender uses idle credit build-up plus IPIs for the
//! same effect). The co-resident receiver measures its own execution
//! gaps — each gap's length is the sender's burst length, i.e. one bit.
//!
//! At the paper's parameters (5 ms slots) the channel reaches 200 bps.

use monatt_hypervisor::driver::{shared, Shared, VcpuAction, VcpuView, WorkloadDriver};

/// Default bit slot: 5 ms, giving the paper's 200 bps.
pub const DEFAULT_SLOT_US: u64 = 5_000;
/// Default CPU burst for a "1": 4 ms.
pub const DEFAULT_ONE_US: u64 = 4_000;
/// Default CPU burst for a "0": 1 ms.
pub const DEFAULT_ZERO_US: u64 = 1_000;

/// Converts a byte message to its bit sequence, MSB first.
pub fn message_to_bits(message: &[u8]) -> Vec<bool> {
    message
        .iter()
        .flat_map(|b| (0..8).rev().map(move |i| (b >> i) & 1 == 1))
        .collect()
}

/// Converts bits (MSB first) back to bytes; trailing bits short of a full
/// byte are dropped.
pub fn bits_to_message(bits: &[bool]) -> Vec<u8> {
    bits.chunks_exact(8)
        .map(|byte| byte.iter().fold(0u8, |acc, &b| (acc << 1) | b as u8))
        .collect()
}

/// The covert-channel sender: one vCPU cycling through the message bits,
/// one CPU burst per bit slot.
#[derive(Debug)]
pub struct CovertSender {
    bits: Vec<bool>,
    pos: usize,
    slot_us: u64,
    one_us: u64,
    zero_us: u64,
    bursting: bool,
    last_burst_us: u64,
    sent: Shared<u64>,
}

impl CovertSender {
    /// Creates a sender transmitting `message` cyclically with the default
    /// (paper) timing parameters.
    pub fn new(message: &[u8]) -> Self {
        Self::with_timing(message, DEFAULT_SLOT_US, DEFAULT_ONE_US, DEFAULT_ZERO_US)
    }

    /// Creates a sender with explicit timing parameters.
    ///
    /// # Panics
    ///
    /// Panics if the message is empty, if either burst is zero, or if a
    /// burst does not fit in the slot.
    pub fn with_timing(message: &[u8], slot_us: u64, one_us: u64, zero_us: u64) -> Self {
        assert!(!message.is_empty(), "message must not be empty");
        assert!(zero_us > 0 && one_us > zero_us, "need 0 < zero < one");
        assert!(one_us < slot_us, "bursts must fit in the slot");
        CovertSender {
            bits: message_to_bits(message),
            pos: 0,
            slot_us,
            one_us,
            zero_us,
            bursting: false,
            last_burst_us: 0,
            sent: shared(0),
        }
    }

    /// Handle to the count of bits transmitted so far.
    pub fn bits_sent(&self) -> Shared<u64> {
        self.sent.clone()
    }

    /// The bit slot length in microseconds.
    pub fn slot_us(&self) -> u64 {
        self.slot_us
    }
}

impl WorkloadDriver for CovertSender {
    fn next_action(&mut self, _view: &VcpuView) -> VcpuAction {
        self.bursting = !self.bursting;
        if self.bursting {
            let bit = self.bits[self.pos];
            self.pos = (self.pos + 1) % self.bits.len();
            *self.sent.borrow_mut() += 1;
            self.last_burst_us = if bit { self.one_us } else { self.zero_us };
            VcpuAction::Compute {
                duration_us: self.last_burst_us,
            }
        } else {
            // Sleep out the remainder of the slot (total period = slot);
            // the timer wake carries BOOST, so the next burst preempts the
            // receiver immediately.
            VcpuAction::Block {
                duration_us: Some(self.slot_us - self.last_burst_us),
            }
        }
    }
}

/// One observed execution gap at the receiver: the sender ran for
/// `gap_us` starting around `at_us`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct GapSample {
    /// When the gap ended (receiver resumed), microseconds.
    pub at_us: u64,
    /// Gap length in microseconds.
    pub gap_us: u64,
}

/// The receiver's observation log.
#[derive(Clone, Debug, Default)]
pub struct ReceiverLog {
    /// All gaps longer than the detection threshold, in time order.
    pub gaps: Vec<GapSample>,
}

impl ReceiverLog {
    /// Decodes the gaps into bits using `threshold_us`: longer gaps are
    /// "1", shorter are "0".
    pub fn decode(&self, threshold_us: u64) -> Vec<bool> {
        self.gaps.iter().map(|g| g.gap_us > threshold_us).collect()
    }

    /// Achieved channel bandwidth in bits per second over `elapsed_us`.
    pub fn bandwidth_bps(&self, elapsed_us: u64) -> f64 {
        if elapsed_us == 0 {
            return 0.0;
        }
        self.gaps.len() as f64 / (elapsed_us as f64 / 1_000_000.0)
    }
}

/// The covert-channel receiver: computes continuously in small probe
/// chunks and records every execution gap — exactly the "measure its own
/// execution time" technique of Section 4.4.1.
#[derive(Debug)]
pub struct CovertReceiver {
    probe_us: u64,
    min_gap_us: u64,
    last_end_us: Option<u64>,
    log: Shared<ReceiverLog>,
}

impl CovertReceiver {
    /// Creates a receiver probing in 250 µs chunks and recording gaps of
    /// at least 500 µs.
    pub fn new() -> Self {
        Self::with_params(250, 500)
    }

    /// Creates a receiver with explicit probe chunk and gap threshold.
    ///
    /// # Panics
    ///
    /// Panics if `probe_us` is zero.
    pub fn with_params(probe_us: u64, min_gap_us: u64) -> Self {
        assert!(probe_us > 0, "probe chunk must be positive");
        CovertReceiver {
            probe_us,
            min_gap_us,
            last_end_us: None,
            log: shared(ReceiverLog::default()),
        }
    }

    /// Handle to the observation log.
    pub fn log(&self) -> Shared<ReceiverLog> {
        self.log.clone()
    }
}

impl Default for CovertReceiver {
    fn default() -> Self {
        Self::new()
    }
}

impl WorkloadDriver for CovertReceiver {
    fn next_action(&mut self, view: &VcpuView) -> VcpuAction {
        let now = view.now.as_micros();
        if let Some(last) = self.last_end_us {
            // Time beyond our own probe chunk is time someone else ran.
            let gap = now.saturating_sub(last).saturating_sub(self.probe_us);
            if gap >= self.min_gap_us {
                self.log.borrow_mut().gaps.push(GapSample {
                    at_us: now,
                    gap_us: gap,
                });
            }
        }
        self.last_end_us = Some(now);
        VcpuAction::Compute {
            duration_us: self.probe_us,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use monatt_hypervisor::engine::ServerSim;
    use monatt_hypervisor::ids::PcpuId;
    use monatt_hypervisor::scheduler::SchedParams;
    use monatt_hypervisor::time::SimTime;
    use monatt_hypervisor::vm::VmConfig;

    #[test]
    fn bit_codec_roundtrip() {
        let msg = b"covert!";
        assert_eq!(bits_to_message(&message_to_bits(msg)), msg);
        assert!(message_to_bits(&[0b1010_0001])[0]);
        assert!(message_to_bits(&[0b1010_0001])[7]);
        assert!(!message_to_bits(&[0b1010_0001])[1]);
    }

    fn run_channel(seconds: u64) -> (ServerSim, Shared<ReceiverLog>, u64) {
        let mut sim = ServerSim::new(1, SchedParams::default());
        let sender = CovertSender::new(b"\xA5"); // 10100101
        let receiver = CovertReceiver::new();
        let log = receiver.log();
        sim.create_vm(VmConfig::new("sender", vec![Box::new(sender)]).pin(vec![PcpuId(0)]));
        sim.create_vm(VmConfig::new("receiver", vec![Box::new(receiver)]).pin(vec![PcpuId(0)]));
        sim.run_until(SimTime::from_secs(seconds));
        let elapsed = sim.now().as_micros();
        (sim, log, elapsed)
    }

    #[test]
    fn receiver_observes_sender_bursts() {
        let (_sim, log, elapsed) = run_channel(2);
        let log = log.borrow();
        assert!(
            log.gaps.len() > 300,
            "expected hundreds of gaps, got {}",
            log.gaps.len()
        );
        let bw = log.bandwidth_bps(elapsed);
        assert!(
            (bw - 200.0).abs() < 40.0,
            "bandwidth should be near the paper's 200 bps, got {bw}"
        );
    }

    #[test]
    fn decoded_bits_match_message_pattern() {
        let (_sim, log, _) = run_channel(2);
        let bits = log.borrow().decode((DEFAULT_ONE_US + DEFAULT_ZERO_US) / 2);
        assert!(bits.len() >= 16);
        // Find the repeating 8-bit pattern 10100101 at some alignment.
        let target = message_to_bits(&[0xA5]);
        let found = (0..8).any(|off| {
            bits[off..]
                .chunks_exact(8)
                .take(10)
                .all(|chunk| chunk == target.as_slice())
        });
        assert!(found, "decoded stream should contain the repeating message");
    }

    #[test]
    fn sender_interval_histogram_is_bimodal() {
        // The Trust Evidence Register view: the sender VM's usage
        // intervals cluster at the two burst lengths (Figure 5, top).
        let (sim, _, _) = run_channel(3);
        let sender_vm = sim.vm_ids()[0];
        let hist = sim.profile().interval_histogram(sender_vm, 30, 1_000);
        let total: u64 = hist.iter().sum();
        assert!(total > 0);
        // Bins 0 (1ms bursts) and 3 (4ms bursts) dominate.
        let mass_peaks = (hist[0] + hist[3]) as f64 / total as f64;
        assert!(mass_peaks > 0.9, "expected bimodal, got {hist:?}");
        assert!(hist[0] > 0 && hist[3] > 0);
    }

    #[test]
    fn benign_coresident_shows_single_peak() {
        use monatt_hypervisor::driver::BusyLoop;
        let mut sim = ServerSim::new(1, SchedParams::default());
        let benign = sim.create_vm(
            VmConfig::new("benign", vec![Box::new(BusyLoop::default())]).pin(vec![PcpuId(0)]),
        );
        let receiver = CovertReceiver::new();
        sim.create_vm(VmConfig::new("other", vec![Box::new(receiver)]).pin(vec![PcpuId(0)]));
        sim.run_until(SimTime::from_secs(3));
        let hist = sim.profile().interval_histogram(benign, 30, 1_000);
        let total: u64 = hist.iter().sum();
        assert!(
            hist[29] as f64 / total as f64 > 0.8,
            "benign VM should show the 30ms peak, got {hist:?}"
        );
    }

    #[test]
    fn sender_parameter_validation() {
        assert!(std::panic::catch_unwind(|| CovertSender::new(b"")).is_err());
        assert!(
            std::panic::catch_unwind(|| CovertSender::with_timing(b"x", 5_000, 500, 1_000))
                .is_err()
        );
        assert!(
            std::panic::catch_unwind(|| CovertSender::with_timing(b"x", 1_000, 4_000, 1_00))
                .is_err()
        );
    }
}
