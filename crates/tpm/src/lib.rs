//! # monatt-tpm
//!
//! The Trust Module substrate for the CloudMonatt reproduction — the
//! hardware root of trust that Figure 2 of the paper adds to each secure
//! cloud server, plus classic TPM building blocks:
//!
//! * [`pcr`] — Platform Configuration Registers with extend-only semantics
//!   and a measurement log (the Integrity Measurement Unit).
//! * [`registers`] — the paper's new *Trust Evidence Registers*:
//!   programmable security-measurement counters (histograms and
//!   accumulators).
//! * [`quote`] — hash-then-sign quotes over measurement fields
//!   (`Q = H(Vid || rM || M || N)` in the protocol of Figure 3).
//! * [`module`] — the [`TrustModule`] facade: identity key, per-session
//!   attestation keys with pCA certification requests, RNG, PCRs and
//!   registers.
//!
//! ## Example: one attestation session
//!
//! ```
//! use monatt_crypto::drbg::Drbg;
//! use monatt_tpm::TrustModule;
//!
//! let mut tm = TrustModule::provision(Drbg::from_seed(1));
//! let session = tm.begin_attestation();
//! assert!(session.certification_request().verify());
//! let quote = session.quote(&[b"vm-12", b"cpu_time", b"123456", b"nonce"]);
//! quote
//!     .verify(&session.attestation_key(), &[b"vm-12", b"cpu_time", b"123456", b"nonce"])
//!     .unwrap();
//! ```

#![warn(missing_docs)]

pub mod module;
pub mod pcr;
pub mod quote;
pub mod registers;

pub use module::{AttestationSession, CertificationRequest, TrustModule};
pub use pcr::{Digest, MeasurementEvent, PcrBank};
pub use quote::{Quote, QuoteError};
pub use registers::{RegisterLayout, TrustEvidenceRegisters};
