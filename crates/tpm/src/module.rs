//! The Trust Module (Figure 2 of the paper): a hardware root of trust on
//! every CloudMonatt-secure cloud server.
//!
//! It contains the server's **identity key** (never released), a **key
//! generator** and **random number generator**, a **crypto engine** (here,
//! the `monatt-crypto` primitives), **Trust Evidence Registers** for
//! security measurements, and the PCR bank of the integrity measurement
//! unit.
//!
//! For each attestation session the module generates a fresh attestation
//! key pair `{AVKs, ASKs}` and signs the public half with the identity key
//! so the privacy CA can certify it — keeping the server anonymous to
//! everyone but the pCA (Section 3.4.2).

use crate::pcr::PcrBank;
use crate::quote::Quote;
use crate::registers::{RegisterLayout, TrustEvidenceRegisters};
use monatt_crypto::drbg::Drbg;
use monatt_crypto::schnorr::{Signature, SigningKey, VerifyingKey};

/// A certification request: the new session attestation public key, signed
/// by the server's long-term identity key. Sent to the privacy CA.
#[derive(Clone, Debug)]
pub struct CertificationRequest {
    /// The session attestation verification key AVKs.
    pub attestation_key: VerifyingKey,
    /// Signature over `attestation_key` by the server's identity key SKs.
    pub identity_signature: Signature,
    /// The identity verification key VKs (so the pCA can look the server
    /// up; in deployment the pCA already has it registered).
    pub identity_key: VerifyingKey,
}

impl CertificationRequest {
    /// Verifies the identity signature binding the attestation key to the
    /// identity key. Performed by the privacy CA.
    pub fn verify(&self) -> bool {
        self.identity_key
            .verify(&self.attestation_key.to_bytes(), &self.identity_signature)
            .is_ok()
    }
}

/// An attestation session: a fresh key pair plus the certification request
/// for its public half.
pub struct AttestationSession {
    signing_key: SigningKey,
    request: CertificationRequest,
}

impl std::fmt::Debug for AttestationSession {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        // Identify the session by its public key; the signing key redacts
        // itself but is omitted entirely for defense in depth.
        f.debug_struct("AttestationSession")
            .field("attestation_key", &self.signing_key.verifying_key())
            .finish_non_exhaustive()
    }
}

impl AttestationSession {
    /// The certification request to forward to the pCA.
    pub fn certification_request(&self) -> &CertificationRequest {
        &self.request
    }

    /// The session's public attestation key AVKs.
    pub fn attestation_key(&self) -> VerifyingKey {
        self.signing_key.verifying_key()
    }

    /// Produces a signed quote over `fields` with the session key ASKs.
    pub fn quote(&self, fields: &[&[u8]]) -> Quote {
        Quote::create(&self.signing_key, fields)
    }
}

/// The hardware Trust Module of one cloud server.
pub struct TrustModule {
    identity: SigningKey,
    rng: Drbg,
    pcrs: PcrBank,
    registers: Option<TrustEvidenceRegisters>,
}

impl std::fmt::Debug for TrustModule {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        // Neither the identity key nor the DRBG state belongs in logs.
        f.debug_struct("TrustModule")
            .field("identity_key", &self.identity.verifying_key())
            .field("pcrs", &self.pcrs)
            .field("registers", &self.registers)
            .finish_non_exhaustive()
    }
}

impl TrustModule {
    /// Provisions a Trust Module with a fresh identity key drawn from
    /// `rng` (models secure key insertion at deployment, Section 3.4.2).
    pub fn provision(mut rng: Drbg) -> Self {
        let identity = SigningKey::generate(&mut rng);
        TrustModule {
            identity,
            rng,
            pcrs: PcrBank::new(),
            registers: None,
        }
    }

    /// The server's public identity key VKs.
    pub fn identity_key(&self) -> VerifyingKey {
        self.identity.verifying_key()
    }

    /// Generates a fresh nonce.
    pub fn fresh_nonce(&mut self) -> [u8; 32] {
        self.rng.next_bytes32()
    }

    /// Starts a new attestation session: generates `{AVKs, ASKs}` and signs
    /// AVKs with the identity key.
    pub fn begin_attestation(&mut self) -> AttestationSession {
        let signing_key = SigningKey::generate(&mut self.rng);
        let avk = signing_key.verifying_key();
        let identity_signature = self.identity.sign(&avk.to_bytes());
        AttestationSession {
            signing_key,
            request: CertificationRequest {
                attestation_key: avk,
                identity_signature,
                identity_key: self.identity.verifying_key(),
            },
        }
    }

    /// Access to the PCR bank (integrity measurement unit).
    pub fn pcrs(&self) -> &PcrBank {
        &self.pcrs
    }

    /// Mutable access to the PCR bank.
    pub fn pcrs_mut(&mut self) -> &mut PcrBank {
        &mut self.pcrs
    }

    /// Programs the Trust Evidence Registers with a new layout, discarding
    /// any previous contents.
    pub fn program_registers(&mut self, layout: RegisterLayout) {
        self.registers = Some(TrustEvidenceRegisters::new(layout));
    }

    /// Access to the Trust Evidence Registers, if programmed.
    pub fn registers(&self) -> Option<&TrustEvidenceRegisters> {
        self.registers.as_ref()
    }

    /// Mutable access to the Trust Evidence Registers, if programmed.
    pub fn registers_mut(&mut self) -> Option<&mut TrustEvidenceRegisters> {
        self.registers.as_mut()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use monatt_crypto::sha256::sha256;

    fn module(seed: u64) -> TrustModule {
        TrustModule::provision(Drbg::from_seed(seed))
    }

    #[test]
    fn identity_is_stable() {
        let m = module(1);
        assert_eq!(m.identity_key(), m.identity_key());
    }

    #[test]
    fn attestation_sessions_use_fresh_keys() {
        let mut m = module(2);
        let s1 = m.begin_attestation();
        let s2 = m.begin_attestation();
        assert_ne!(s1.attestation_key(), s2.attestation_key());
        // Neither session key equals the identity key (anonymity).
        assert_ne!(s1.attestation_key(), m.identity_key());
    }

    #[test]
    fn certification_request_verifies() {
        let mut m = module(3);
        let session = m.begin_attestation();
        assert!(session.certification_request().verify());
    }

    #[test]
    fn forged_certification_request_fails() {
        let mut m1 = module(4);
        let mut m2 = module(5);
        let s1 = m1.begin_attestation();
        let s2 = m2.begin_attestation();
        // Splice m2's attestation key into m1's request.
        let forged = CertificationRequest {
            attestation_key: s2.attestation_key(),
            identity_signature: s1.certification_request().identity_signature,
            identity_key: m1.identity_key(),
        };
        assert!(!forged.verify());
    }

    #[test]
    fn session_quotes_verify_with_session_key() {
        let mut m = module(6);
        let session = m.begin_attestation();
        let quote = session.quote(&[b"vid", b"measurement", b"nonce"]);
        assert!(quote
            .verify(
                &session.attestation_key(),
                &[b"vid", b"measurement", b"nonce"]
            )
            .is_ok());
        assert!(quote
            .verify(&m.identity_key(), &[b"vid", b"measurement", b"nonce"])
            .is_err());
    }

    #[test]
    fn nonces_are_fresh() {
        let mut m = module(7);
        assert_ne!(m.fresh_nonce(), m.fresh_nonce());
    }

    #[test]
    fn pcr_and_register_plumbing() {
        let mut m = module(8);
        m.pcrs_mut().extend(0, sha256(b"hypervisor"), "hypervisor");
        assert_eq!(m.pcrs().log().len(), 1);
        assert!(m.registers().is_none());
        m.program_registers(RegisterLayout::Accumulators { count: 1 });
        let regs = m.registers_mut().unwrap();
        let token = regs.unlock();
        regs.accumulate(&token, 0, 42);
        assert_eq!(m.registers().unwrap().snapshot(), vec![42]);
        // Reprogramming clears.
        m.program_registers(RegisterLayout::Accumulators { count: 1 });
        assert_eq!(m.registers().unwrap().snapshot(), vec![0]);
    }
}
