//! Trust Evidence Registers — the paper's new hardware feature (Section
//! 3.2.4, Figure 2).
//!
//! These are programmable counter/value registers, analogous to performance
//! counters but measuring aspects of the system's *security*. The covert
//! channel detector (Case Study III) programs 30 of them as a histogram of
//! CPU-usage intervals; the availability monitor (Case Study IV) uses one
//! as an accumulator for a VM's virtual running time. Only the Trust Module
//! and Monitor Module may access them, modelled by the [`AccessToken`]
//! required for mutation.

use std::fmt;

/// How a register bank is interpreted.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum RegisterLayout {
    /// A histogram: register `i` counts events falling in bin `i`. The
    /// paper's covert-channel detector uses 30 one-millisecond bins,
    /// `(0,1], (1,2], …, (29,30]`.
    Histogram {
        /// Number of bins.
        bins: usize,
        /// Width of each bin in microseconds.
        bin_width_us: u64,
    },
    /// Independent accumulator registers (e.g. total virtual running time).
    Accumulators {
        /// Number of registers.
        count: usize,
    },
}

/// Capability token proving the caller is the Trust/Monitor Module.
/// Obtained from [`TrustEvidenceRegisters::unlock`]; the simulation uses it
/// to model the paper's hardware access control.
#[derive(Debug)]
pub struct AccessToken(());

/// A bank of Trust Evidence Registers.
///
/// # Examples
///
/// ```
/// use monatt_tpm::registers::{RegisterLayout, TrustEvidenceRegisters};
///
/// let mut regs = TrustEvidenceRegisters::new(RegisterLayout::Histogram {
///     bins: 30,
///     bin_width_us: 1_000,
/// });
/// let token = regs.unlock();
/// regs.record_interval(&token, 4_600); // 4.6 ms -> bin (4,5]
/// assert_eq!(regs.snapshot()[4], 1);
/// ```
#[derive(Clone, PartialEq, Eq)]
pub struct TrustEvidenceRegisters {
    layout: RegisterLayout,
    values: Vec<u64>,
}

impl fmt::Debug for TrustEvidenceRegisters {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("TrustEvidenceRegisters")
            .field("layout", &self.layout)
            .field("len", &self.values.len())
            .finish()
    }
}

impl TrustEvidenceRegisters {
    /// Allocates a register bank with the given layout, all zeroed.
    ///
    /// # Panics
    ///
    /// Panics if the layout describes zero registers or a zero bin width.
    pub fn new(layout: RegisterLayout) -> Self {
        let len = match &layout {
            RegisterLayout::Histogram { bins, bin_width_us } => {
                assert!(*bins > 0, "histogram needs at least one bin");
                assert!(*bin_width_us > 0, "bin width must be positive");
                *bins
            }
            RegisterLayout::Accumulators { count } => {
                assert!(*count > 0, "need at least one accumulator");
                *count
            }
        };
        TrustEvidenceRegisters {
            layout,
            values: vec![0; len],
        }
    }

    /// Returns the layout the bank was programmed with.
    pub fn layout(&self) -> &RegisterLayout {
        &self.layout
    }

    /// Grants mutation access (models the hardware restriction that only
    /// the Trust Module / Monitor Module can write these registers).
    pub fn unlock(&mut self) -> AccessToken {
        AccessToken(())
    }

    /// Records a duration sample into the histogram. Durations beyond the
    /// last bin are clamped into it (the paper's (29,30] bin also catches
    /// full 30 ms scheduler slices); zero-length samples land in bin 0.
    ///
    /// # Panics
    ///
    /// Panics if the bank is not in histogram layout.
    pub fn record_interval(&mut self, _token: &AccessToken, duration_us: u64) {
        let RegisterLayout::Histogram { bins, bin_width_us } = &self.layout else {
            // Layout misuse is a caller bug, not adversarial input; the
            // panic is the documented API contract.
            panic!("record_interval requires histogram layout"); // #[allow(monatt::panic_freedom)]
        };
        // (0, w] -> bin 0, (w, 2w] -> bin 1, ...
        let bin = if duration_us == 0 {
            0
        } else {
            (((duration_us - 1) / bin_width_us) as usize).min(bins - 1)
        };
        // `bin` is clamped to `bins - 1` above.
        self.values[bin] = self.values[bin].saturating_add(1); // #[allow(monatt::panic_freedom)]
    }

    /// Adds `amount` to accumulator `index`.
    ///
    /// # Panics
    ///
    /// Panics if the bank is not in accumulator layout or `index` is out of
    /// range.
    pub fn accumulate(&mut self, _token: &AccessToken, index: usize, amount: u64) {
        assert!(
            matches!(self.layout, RegisterLayout::Accumulators { .. }),
            "accumulate requires accumulator layout"
        );
        // Out-of-range accumulator indices are a documented panic.
        self.values[index] = self.values[index].saturating_add(amount); // #[allow(monatt::panic_freedom)]
    }

    /// Returns a copy of all register values.
    pub fn snapshot(&self) -> Vec<u64> {
        self.values.clone()
    }

    /// Returns the total count across all registers.
    pub fn total(&self) -> u64 {
        self.values
            .iter()
            .fold(0u64, |acc, v| acc.saturating_add(*v))
    }

    /// Clears every register (start of a new detection period).
    pub fn clear(&mut self, _token: &AccessToken) {
        for v in &mut self.values {
            *v = 0;
        }
    }

    /// Normalizes a histogram snapshot into a probability distribution.
    /// Returns all-zero probabilities if no events were recorded.
    pub fn distribution(&self) -> Vec<f64> {
        let total = self.total();
        if total == 0 {
            return vec![0.0; self.values.len()];
        }
        self.values
            .iter()
            .map(|&v| v as f64 / total as f64)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn histogram30() -> TrustEvidenceRegisters {
        TrustEvidenceRegisters::new(RegisterLayout::Histogram {
            bins: 30,
            bin_width_us: 1_000,
        })
    }

    #[test]
    fn histogram_binning_matches_paper() {
        // Paper: "Suppose the sender VM executes for 4.6ms, then the Trust
        // Evidence Register (4,5] will be incremented by 1."
        let mut regs = histogram30();
        let token = regs.unlock();
        regs.record_interval(&token, 4_600);
        assert_eq!(regs.snapshot()[4], 1);
    }

    #[test]
    fn bin_edges() {
        let mut regs = histogram30();
        let token = regs.unlock();
        regs.record_interval(&token, 1); // (0,1] -> bin 0
        regs.record_interval(&token, 1_000); // exactly 1 ms -> bin 0
        regs.record_interval(&token, 1_001); // (1,2] -> bin 1
        regs.record_interval(&token, 30_000); // 30 ms -> bin 29
        regs.record_interval(&token, 99_000); // clamped to bin 29
        regs.record_interval(&token, 0); // zero-length -> bin 0
        let snap = regs.snapshot();
        assert_eq!(snap[0], 3);
        assert_eq!(snap[1], 1);
        assert_eq!(snap[29], 2);
        assert_eq!(regs.total(), 6);
    }

    #[test]
    fn distribution_sums_to_one() {
        let mut regs = histogram30();
        let token = regs.unlock();
        for us in [500, 1_500, 1_700, 29_500] {
            regs.record_interval(&token, us);
        }
        let dist = regs.distribution();
        let sum: f64 = dist.iter().sum();
        assert!((sum - 1.0).abs() < 1e-12);
        assert!((dist[1] - 0.5).abs() < 1e-12);
    }

    #[test]
    fn empty_distribution_is_zero() {
        let regs = histogram30();
        assert!(regs.distribution().iter().all(|&p| p == 0.0));
    }

    #[test]
    fn accumulators() {
        let mut regs = TrustEvidenceRegisters::new(RegisterLayout::Accumulators { count: 2 });
        let token = regs.unlock();
        regs.accumulate(&token, 0, 100);
        regs.accumulate(&token, 0, 50);
        regs.accumulate(&token, 1, 7);
        assert_eq!(regs.snapshot(), vec![150, 7]);
    }

    #[test]
    fn clear_zeroes_everything() {
        let mut regs = histogram30();
        let token = regs.unlock();
        regs.record_interval(&token, 5_000);
        regs.clear(&token);
        assert_eq!(regs.total(), 0);
    }

    #[test]
    #[should_panic(expected = "record_interval requires histogram layout")]
    fn record_on_accumulator_panics() {
        let mut regs = TrustEvidenceRegisters::new(RegisterLayout::Accumulators { count: 1 });
        let token = regs.unlock();
        regs.record_interval(&token, 5);
    }

    #[test]
    #[should_panic(expected = "histogram needs at least one bin")]
    fn zero_bins_rejected() {
        let _ = TrustEvidenceRegisters::new(RegisterLayout::Histogram {
            bins: 0,
            bin_width_us: 1,
        });
    }

    #[test]
    fn saturates_instead_of_overflowing() {
        let mut regs = TrustEvidenceRegisters::new(RegisterLayout::Accumulators { count: 1 });
        let token = regs.unlock();
        regs.accumulate(&token, 0, u64::MAX);
        regs.accumulate(&token, 0, 10);
        assert_eq!(regs.snapshot()[0], u64::MAX);
    }
}
