//! Quotes: cumulative hash measurements signed by an attestation key.
//!
//! The paper borrows the term "Quote" from TPM notation: the cloud server
//! computes `Q3 = H(Vid || rM || M || N3)` and signs
//! `[Vid, rM, M, N3, Q3]` with its per-session attestation key ASKs
//! (Figure 3). This module provides the generic hash-then-sign and
//! verify-hash-and-signature operations over caller-supplied fields.

use monatt_crypto::schnorr::{Signature, SigningKey, VerifyingKey};
use monatt_crypto::sha256::{Sha256, DIGEST_LEN};
use monatt_crypto::zeroize::ct_eq;

/// Errors from quote verification.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
#[non_exhaustive]
pub enum QuoteError {
    /// The recomputed digest does not match the quoted digest — a field was
    /// modified after quoting.
    DigestMismatch,
    /// The signature over the quote does not verify.
    BadSignature,
}

impl std::fmt::Display for QuoteError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            QuoteError::DigestMismatch => write!(f, "quote digest does not match quoted fields"),
            QuoteError::BadSignature => write!(f, "quote signature verification failed"),
        }
    }
}

impl std::error::Error for QuoteError {}

/// A signed quote over a sequence of fields.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Quote {
    /// `H(field_1 || field_2 || ...)` with length framing per field.
    pub digest: [u8; DIGEST_LEN],
    /// Signature over `digest` by the quoting key.
    pub signature: Signature,
}

/// Computes the quote digest over `fields`, length-framing each field so
/// that `["ab","c"]` and `["a","bc"]` hash differently.
pub fn quote_digest(fields: &[&[u8]]) -> [u8; DIGEST_LEN] {
    let mut h = Sha256::new();
    for field in fields {
        h.update(&(field.len() as u64).to_be_bytes());
        h.update(field);
    }
    h.finalize()
}

impl Quote {
    /// Creates a quote over `fields`, signed with `key`.
    pub fn create(key: &SigningKey, fields: &[&[u8]]) -> Self {
        let digest = quote_digest(fields);
        let signature = key.sign(&digest);
        Quote { digest, signature }
    }

    /// Verifies that this quote covers exactly `fields` and carries a valid
    /// signature by `key`.
    ///
    /// # Errors
    ///
    /// [`QuoteError::DigestMismatch`] if the fields were altered,
    /// [`QuoteError::BadSignature`] if the signature is invalid.
    pub fn verify(&self, key: &VerifyingKey, fields: &[&[u8]]) -> Result<(), QuoteError> {
        self.check_fields(fields)?;
        key.verify(&self.digest, &self.signature)
            .map_err(|_| QuoteError::BadSignature)
    }

    /// Checks only that this quote's digest covers exactly `fields`,
    /// without touching the signature. Batch verifiers use this for the
    /// cheap hash comparison and hand the expensive signature check —
    /// `key.verify(&quote.digest, &quote.signature)` — to a batched
    /// multi-exponentiation.
    ///
    /// # Errors
    ///
    /// [`QuoteError::DigestMismatch`] if the fields were altered.
    pub fn check_fields(&self, fields: &[&[u8]]) -> Result<(), QuoteError> {
        if !ct_eq(&quote_digest(fields), &self.digest) {
            return Err(QuoteError::DigestMismatch);
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use monatt_crypto::drbg::Drbg;

    fn key(seed: u64) -> SigningKey {
        SigningKey::generate(&mut Drbg::from_seed(seed))
    }

    #[test]
    fn create_verify_roundtrip() {
        let sk = key(1);
        let quote = Quote::create(&sk, &[b"vid-7", b"cpu-usage", b"12345", b"nonce"]);
        assert!(quote
            .verify(
                &sk.verifying_key(),
                &[b"vid-7", b"cpu-usage", b"12345", b"nonce"]
            )
            .is_ok());
    }

    #[test]
    fn detects_field_tampering() {
        let sk = key(2);
        let quote = Quote::create(&sk, &[b"vid-7", b"measurement"]);
        assert_eq!(
            quote.verify(&sk.verifying_key(), &[b"vid-7", b"forged"]),
            Err(QuoteError::DigestMismatch)
        );
    }

    #[test]
    fn detects_field_boundary_shift() {
        let sk = key(3);
        let quote = Quote::create(&sk, &[b"ab", b"c"]);
        assert_eq!(
            quote.verify(&sk.verifying_key(), &[b"a", b"bc"]),
            Err(QuoteError::DigestMismatch)
        );
    }

    #[test]
    fn detects_wrong_signer() {
        let sk1 = key(4);
        let sk2 = key(5);
        let quote = Quote::create(&sk1, &[b"data"]);
        assert_eq!(
            quote.verify(&sk2.verifying_key(), &[b"data"]),
            Err(QuoteError::BadSignature)
        );
    }

    #[test]
    fn detects_swapped_signature() {
        let sk = key(6);
        let quote_a = Quote::create(&sk, &[b"a"]);
        let quote_b = Quote::create(&sk, &[b"b"]);
        let franken = Quote {
            digest: quote_a.digest,
            signature: quote_b.signature,
        };
        assert_eq!(
            franken.verify(&sk.verifying_key(), &[b"a"]),
            Err(QuoteError::BadSignature)
        );
    }

    #[test]
    fn empty_fields_ok() {
        let sk = key(7);
        let quote = Quote::create(&sk, &[]);
        assert!(quote.verify(&sk.verifying_key(), &[]).is_ok());
        assert!(quote.verify(&sk.verifying_key(), &[b""]).is_err());
    }
}
