//! Platform Configuration Registers (PCRs) with TPM extend semantics and a
//! measurement event log.
//!
//! The paper's Integrity Measurement Unit accumulates hashes of software
//! loaded onto the platform, in load order (Section 4.2.2). A PCR can only
//! be *extended* — `pcr = SHA256(pcr || digest)` — never set, so the final
//! value commits to the entire load sequence.

use monatt_crypto::sha256::{Sha256, DIGEST_LEN};
use std::fmt;

/// Number of PCRs in a bank (matches TPM 1.2).
pub const PCR_COUNT: usize = 24;

/// A 32-byte measurement digest.
pub type Digest = [u8; DIGEST_LEN];

/// One entry in the measurement log: which PCR was extended, with what
/// digest, and a human-readable description of the measured component.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct MeasurementEvent {
    /// The PCR index that was extended.
    pub pcr_index: usize,
    /// Digest of the measured component.
    pub digest: Digest,
    /// Description, e.g. `"hypervisor"` or `"vm-image:ubuntu"`.
    pub description: String,
}

/// A bank of PCRs plus the event log that explains their values.
///
/// # Examples
///
/// ```
/// use monatt_tpm::pcr::PcrBank;
/// use monatt_crypto::sha256::sha256;
///
/// let mut bank = PcrBank::new();
/// bank.extend(0, sha256(b"hypervisor v4.4"), "hypervisor");
/// assert_ne!(bank.read(0), PcrBank::initial_value());
/// ```
#[derive(Clone, PartialEq, Eq)]
pub struct PcrBank {
    pcrs: [Digest; PCR_COUNT],
    log: Vec<MeasurementEvent>,
}

impl fmt::Debug for PcrBank {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("PcrBank")
            .field("events", &self.log.len())
            .finish_non_exhaustive()
    }
}

impl Default for PcrBank {
    fn default() -> Self {
        Self::new()
    }
}

impl PcrBank {
    /// Creates a bank with all PCRs at the initial (all-zero) value.
    pub fn new() -> Self {
        PcrBank {
            pcrs: [[0u8; DIGEST_LEN]; PCR_COUNT],
            log: Vec::new(),
        }
    }

    /// The reset value of every PCR.
    pub fn initial_value() -> Digest {
        [0u8; DIGEST_LEN]
    }

    /// Extends PCR `index` with `digest`: `pcr = SHA256(pcr || digest)`.
    ///
    /// # Panics
    ///
    /// Panics if `index >= PCR_COUNT`.
    pub fn extend(&mut self, index: usize, digest: Digest, description: &str) {
        assert!(index < PCR_COUNT, "PCR index out of range");
        let mut h = Sha256::new();
        // Guarded by the assert above; the panic on out-of-range indices is
        // part of the documented API contract.
        h.update(&self.pcrs[index]); // #[allow(monatt::panic_freedom)]
        h.update(&digest);
        self.pcrs[index] = h.finalize(); // #[allow(monatt::panic_freedom)]
        self.log.push(MeasurementEvent {
            pcr_index: index,
            digest,
            description: description.to_owned(),
        });
    }

    /// Reads PCR `index`.
    ///
    /// # Panics
    ///
    /// Panics if `index >= PCR_COUNT`.
    pub fn read(&self, index: usize) -> Digest {
        assert!(index < PCR_COUNT, "PCR index out of range");
        self.pcrs[index] // assert-guarded: #[allow(monatt::panic_freedom)]
    }

    /// Returns the measurement event log, oldest first.
    pub fn log(&self) -> &[MeasurementEvent] {
        &self.log
    }

    /// Resets every PCR and clears the log (platform reboot).
    pub fn reset(&mut self) {
        self.pcrs = [[0u8; DIGEST_LEN]; PCR_COUNT];
        self.log.clear();
    }

    /// Recomputes the expected value of PCR `index` by replaying `digests`
    /// from the initial value. Used by appraisers to validate a reported
    /// PCR against a reference load sequence.
    pub fn replay(digests: &[Digest]) -> Digest {
        let mut acc = Self::initial_value();
        for d in digests {
            let mut h = Sha256::new();
            h.update(&acc);
            h.update(d);
            acc = h.finalize();
        }
        acc
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use monatt_crypto::sha256::sha256;

    #[test]
    fn starts_zeroed() {
        let bank = PcrBank::new();
        for i in 0..PCR_COUNT {
            assert_eq!(bank.read(i), PcrBank::initial_value());
        }
        assert!(bank.log().is_empty());
    }

    #[test]
    fn extend_changes_value_and_logs() {
        let mut bank = PcrBank::new();
        let d = sha256(b"component");
        bank.extend(3, d, "component");
        assert_ne!(bank.read(3), PcrBank::initial_value());
        assert_eq!(bank.read(0), PcrBank::initial_value());
        assert_eq!(bank.log().len(), 1);
        assert_eq!(bank.log()[0].pcr_index, 3);
        assert_eq!(bank.log()[0].description, "component");
    }

    #[test]
    fn extend_order_matters() {
        let mut a = PcrBank::new();
        let mut b = PcrBank::new();
        let d1 = sha256(b"one");
        let d2 = sha256(b"two");
        a.extend(0, d1, "1");
        a.extend(0, d2, "2");
        b.extend(0, d2, "2");
        b.extend(0, d1, "1");
        assert_ne!(a.read(0), b.read(0));
    }

    #[test]
    fn replay_matches_extend() {
        let mut bank = PcrBank::new();
        let digests = [sha256(b"a"), sha256(b"b"), sha256(b"c")];
        for d in &digests {
            bank.extend(7, *d, "x");
        }
        assert_eq!(PcrBank::replay(&digests), bank.read(7));
        assert_eq!(PcrBank::replay(&[]), PcrBank::initial_value());
    }

    #[test]
    fn reset_clears() {
        let mut bank = PcrBank::new();
        bank.extend(0, sha256(b"x"), "x");
        bank.reset();
        assert_eq!(bank.read(0), PcrBank::initial_value());
        assert!(bank.log().is_empty());
    }

    #[test]
    #[should_panic(expected = "PCR index out of range")]
    fn extend_out_of_range_panics() {
        PcrBank::new().extend(PCR_COUNT, [0; 32], "bad");
    }
}
