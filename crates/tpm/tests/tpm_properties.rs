//! Property-based tests for the Trust Module substrate.

use monatt_crypto::drbg::Drbg;
use monatt_tpm::pcr::PcrBank;
use monatt_tpm::quote::Quote;
use monatt_tpm::registers::{RegisterLayout, TrustEvidenceRegisters};
use monatt_tpm::TrustModule;
use proptest::prelude::*;

proptest! {
    // Key generation and signing are mod-exp heavy; a modest case count
    // keeps the suite fast while still exploring the space.
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// PCR extension commits to the exact digest sequence: any
    /// permutation or truncation yields a different value.
    #[test]
    fn pcr_commits_to_sequence(
        digests in proptest::collection::vec(any::<[u8; 32]>(), 1..8),
    ) {
        let full = PcrBank::replay(&digests);
        // Truncation changes the value.
        let truncated = PcrBank::replay(&digests[..digests.len() - 1]);
        prop_assert_ne!(full, truncated);
        // Swapping two distinct adjacent digests changes the value.
        if digests.len() >= 2 && digests[0] != digests[1] {
            let mut swapped = digests.clone();
            swapped.swap(0, 1);
            prop_assert_ne!(full, PcrBank::replay(&swapped));
        }
    }

    /// Extending a bank step by step always matches replay.
    #[test]
    fn extend_matches_replay(
        digests in proptest::collection::vec(any::<[u8; 32]>(), 0..10),
        index in 0usize..24,
    ) {
        let mut bank = PcrBank::new();
        for d in &digests {
            bank.extend(index, *d, "component");
        }
        prop_assert_eq!(bank.read(index), PcrBank::replay(&digests));
        prop_assert_eq!(bank.log().len(), digests.len());
    }

    /// Histogram registers preserve total counts and bin samples.
    #[test]
    fn histogram_registers_conserve_counts(
        samples in proptest::collection::vec(1u64..60_000, 0..64),
    ) {
        let mut regs = TrustEvidenceRegisters::new(RegisterLayout::Histogram {
            bins: 30,
            bin_width_us: 1_000,
        });
        let token = regs.unlock();
        for s in &samples {
            regs.record_interval(&token, *s);
        }
        prop_assert_eq!(regs.total(), samples.len() as u64);
        let dist = regs.distribution();
        if !samples.is_empty() {
            let sum: f64 = dist.iter().sum();
            prop_assert!((sum - 1.0).abs() < 1e-9);
        }
    }

    /// Quotes verify for exactly the fields they were created over.
    #[test]
    fn quotes_bind_fields(
        seed in any::<u64>(),
        fields in proptest::collection::vec(
            proptest::collection::vec(any::<u8>(), 0..32),
            1..5,
        ),
    ) {
        let mut tm = TrustModule::provision(Drbg::from_seed(seed));
        let session = tm.begin_attestation();
        let refs: Vec<&[u8]> = fields.iter().map(Vec::as_slice).collect();
        let quote = session.quote(&refs);
        prop_assert!(quote.verify(&session.attestation_key(), &refs).is_ok());
        // Dropping the last field breaks verification.
        let shorter: Vec<&[u8]> = refs[..refs.len() - 1].to_vec();
        prop_assert!(quote.verify(&session.attestation_key(), &shorter).is_err());
    }

    /// Attestation sessions are unlinkable: fresh keys every time, all
    /// certified by the same identity.
    #[test]
    fn sessions_use_fresh_certified_keys(seed in any::<u64>(), rounds in 1usize..5) {
        let mut tm = TrustModule::provision(Drbg::from_seed(seed));
        let mut seen = std::collections::BTreeSet::new();
        for _ in 0..rounds {
            let session = tm.begin_attestation();
            prop_assert!(session.certification_request().verify());
            prop_assert!(seen.insert(session.attestation_key().to_bytes()));
        }
    }
}

/// Deterministic check that belongs with the properties: quotes never
/// verify under a different session's key.
#[test]
fn quote_is_session_specific() {
    let mut tm = TrustModule::provision(Drbg::from_seed(1));
    let s1 = tm.begin_attestation();
    let s2 = tm.begin_attestation();
    let quote: Quote = s1.quote(&[b"payload"]);
    assert!(quote.verify(&s1.attestation_key(), &[b"payload"]).is_ok());
    assert!(quote.verify(&s2.attestation_key(), &[b"payload"]).is_err());
}
