//! Property-based tests of the Dolev-Yao deduction engine.

use monatt_verifier::knowledge::Knowledge;
use monatt_verifier::term::{Kind, Term};
use proptest::prelude::*;

/// Random terms up to a small depth.
fn arb_term() -> impl Strategy<Value = Term> {
    let leaf = prop_oneof![
        (0u8..6).prop_map(|i| Term::atom(&format!("a{i}"), Kind::Data)),
        (0u8..4).prop_map(|i| Term::atom(&format!("k{i}"), Kind::Key)),
        (0u8..4).prop_map(|i| Term::atom(&format!("n{i}"), Kind::Nonce)),
    ];
    leaf.prop_recursive(3, 24, 2, |inner| {
        prop_oneof![
            (inner.clone(), inner.clone()).prop_map(|(a, b)| Term::pair(a, b)),
            (inner.clone(), inner.clone()).prop_map(|(m, k)| Term::senc(m, k)),
            (inner.clone(), inner.clone()).prop_map(|(m, k)| Term::sign(m, k)),
            inner.clone().prop_map(Term::hash),
            inner.prop_map(Term::pk),
        ]
    })
}

proptest! {
    /// Anything observed is derivable.
    #[test]
    fn observed_terms_are_derivable(terms in proptest::collection::vec(arb_term(), 1..8)) {
        let k = Knowledge::from_initial(terms.clone());
        for t in &terms {
            prop_assert!(k.can_derive(t));
        }
    }

    /// Learning more never removes derivability (monotonicity).
    #[test]
    fn knowledge_is_monotonic(
        base in proptest::collection::vec(arb_term(), 1..6),
        extra in arb_term(),
        probe in arb_term(),
    ) {
        let k1 = Knowledge::from_initial(base.clone());
        let mut k2 = Knowledge::from_initial(base);
        k2.learn(extra);
        if k1.can_derive(&probe) {
            prop_assert!(k2.can_derive(&probe));
        }
    }

    /// Saturation is idempotent: re-saturating changes nothing.
    #[test]
    fn saturation_is_idempotent(terms in proptest::collection::vec(arb_term(), 1..8)) {
        let mut k = Knowledge::from_initial(terms);
        let before = k.len();
        k.saturate();
        prop_assert_eq!(k.len(), before);
    }

    /// A secret encrypted under an unknown atomic key stays secret, no
    /// matter what public junk the attacker also observes — as long as
    /// the junk cannot contain the key (different kind namespace).
    #[test]
    fn encryption_protects_against_unrelated_knowledge(
        junk in proptest::collection::vec(
            (0u8..6).prop_map(|i| Term::atom(&format!("a{i}"), Kind::Data)),
            0..6,
        ),
    ) {
        let secret = Term::atom("the_secret", Kind::Data);
        let key = Term::atom("hidden_key", Kind::Key);
        let mut initial = junk;
        initial.push(Term::senc(secret.clone(), key.clone()));
        let k = Knowledge::from_initial(initial);
        prop_assert!(!k.can_derive(&secret));
        prop_assert!(!k.can_derive(&key));
    }

    /// Derivability of composites follows from derivability of parts.
    #[test]
    fn composition_is_sound(a in arb_term(), b in arb_term()) {
        let k = Knowledge::from_initial([a.clone(), b.clone()]);
        prop_assert!(k.can_derive(&Term::pair(a.clone(), b.clone())));
        prop_assert!(k.can_derive(&Term::senc(a.clone(), b.clone())));
        prop_assert!(k.can_derive(&Term::hash(a)));
    }

    /// The subterm universe contains every atom of every observed term.
    #[test]
    fn universe_is_complete(terms in proptest::collection::vec(arb_term(), 1..6)) {
        let k = Knowledge::from_initial(terms.clone());
        let universe = k.subterm_universe();
        for t in &terms {
            let mut subs = Vec::new();
            t.collect_subterms(&mut subs);
            for s in subs {
                prop_assert!(universe.contains(&s));
            }
        }
    }
}
