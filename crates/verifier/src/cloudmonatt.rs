//! The CloudMonatt attestation protocol (Figure 3) as a symbolic model,
//! with the weakened variants used to demonstrate that each protocol
//! ingredient is load-bearing.
//!
//! Entities: Customer (C), Cloud Controller (CC), Attestation Server (AS),
//! Cloud Server (CS). Message flow:
//!
//! ```text
//! C  -> CC : { Vid, P, N1 }Kx
//! CC -> AS : { Vid, I, P, N2 }Ky
//! AS -> CS : { Vid, rM, N3 }Kz
//! CS -> AS : { [ Vid, rM, M, N3, Q3 ]ASKs }Kz   Q3 = H(Vid,rM,M,N3)
//! AS -> CC : { [ Vid, I, P, R, N2, Q2 ]SKa }Ky  Q2 = H(Vid,I,P,R,N2)
//! CC -> C  : { [ Vid, P, R, N1, Q1 ]SKc }Kx     Q1 = H(Vid,P,R,N1)
//! ```
//!
//! Verified properties (Section 7.2.2): secrecy of the session keys,
//! private keys, property P, measurements M and report R; integrity /
//! authentication as correspondence assertions (the report the customer
//! accepts is the report the Attestation Server issued; the measurement
//! the Attestation Server accepts is the one the Cloud Server's Trust
//! Module produced).

use crate::protocol::{Bindings, Pat, Protocol, Role, Step};
use crate::search::{verify, Correspondence, Properties, SearchConfig, VerifyOutcome};
use crate::term::{Kind, Term};

/// Configuration of the protocol model — the full protocol and its
/// weakened ablations.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ModelConfig {
    /// Sign the measurement/report messages (quotes) — the unforgeability
    /// ingredient.
    pub sign_quotes: bool,
    /// Encrypt every hop with its session key — the secrecy ingredient.
    pub encrypt_channels: bool,
    /// Include nonces in the signed quotes — the freshness ingredient.
    pub include_nonces: bool,
    /// Use a fresh per-session attestation key ASKs (the paper's design)
    /// instead of a long-term server signing key.
    pub fresh_attestation_key: bool,
    /// The attacker has compromised the cloud server's host VM and knows
    /// the session key Kz of the AS↔CS hop.
    pub leak_kz: bool,
    /// The attacker recorded a complete previous attestation session
    /// (for replay attacks).
    pub preload_old_session: bool,
}

impl ModelConfig {
    /// The full CloudMonatt protocol as deployed.
    pub fn full() -> Self {
        ModelConfig {
            sign_quotes: true,
            encrypt_channels: true,
            include_nonces: true,
            fresh_attestation_key: true,
            leak_kz: false,
            preload_old_session: false,
        }
    }

    /// Full protocol facing a stronger adversary who recorded an old
    /// session and compromised the server-hop session key.
    pub fn full_under_strong_adversary() -> Self {
        ModelConfig {
            leak_kz: true,
            preload_old_session: true,
            ..Self::full()
        }
    }
}

fn maybe_senc(cfg: &ModelConfig, inner: Pat, key: Term) -> Pat {
    if cfg.encrypt_channels {
        Pat::senc(inner, Pat::lit(key))
    } else {
        inner
    }
}

fn maybe_sign(cfg: &ModelConfig, inner: Pat, key: Term) -> Pat {
    if cfg.sign_quotes {
        Pat::sign(inner, Pat::lit(key))
    } else {
        inner
    }
}

/// Builds a quoted tuple: the fields followed by their hash (the quote).
fn quoted(fields: &[Pat]) -> Pat {
    let mut parts = fields.to_vec();
    parts.push(Pat::hash(Pat::tuple(fields)));
    Pat::tuple(&parts)
}

/// Builds the protocol, properties and the attacker's initial knowledge
/// for a model configuration.
pub fn build(cfg: &ModelConfig) -> (Protocol, Properties, Vec<Term>) {
    // Long-term values.
    let vid = Term::id("vid");
    let srv = Term::id("server_i");
    let kx = Term::key("kx");
    let ky = Term::key("ky");
    let kz = Term::key("kz");
    let skc = Term::key("skc");
    let ska = Term::key("ska");
    let asks = if cfg.fresh_attestation_key {
        Term::key("asks_session")
    } else {
        Term::key("sks_longterm")
    };
    let n1 = Term::nonce("n1");
    let n2 = Term::nonce("n2");
    let n3 = Term::nonce("n3");
    let prop = Term::data("prop_p");
    let rm = Term::data("raw_measurement_spec");
    let meas = Term::data("measurement_m");
    let report = Term::data("report_r");

    let lit = Pat::lit;

    // --- Customer ---
    let customer = Role {
        name: "customer".into(),
        initial: Bindings::new(),
        steps: vec![
            Step::Send(maybe_senc(
                cfg,
                Pat::tuple(&[lit(vid.clone()), lit(prop.clone()), lit(n1.clone())]),
                kx.clone(),
            )),
            Step::Recv(maybe_senc(
                cfg,
                maybe_sign(
                    cfg,
                    quoted(&{
                        let mut fields = vec![
                            lit(vid.clone()),
                            lit(prop.clone()),
                            Pat::var("r_received", Kind::Data),
                        ];
                        if cfg.include_nonces {
                            fields.push(lit(n1.clone()));
                        }
                        fields
                    }),
                    skc.clone(),
                ),
                kx.clone(),
            )),
            Step::Event(
                "customer_accepts_report".into(),
                vec![Pat::var("r_received", Kind::Data)],
            ),
        ],
    };

    // --- Cloud Controller ---
    let controller = Role {
        name: "controller".into(),
        initial: Bindings::new(),
        steps: vec![
            Step::Recv(maybe_senc(
                cfg,
                Pat::tuple(&[
                    Pat::var("c_vid", Kind::Id),
                    Pat::var("c_p", Kind::Data),
                    Pat::var("c_n1", Kind::Nonce),
                ]),
                kx.clone(),
            )),
            Step::Send(maybe_senc(
                cfg,
                Pat::tuple(&[
                    Pat::var("c_vid", Kind::Id),
                    lit(srv.clone()),
                    Pat::var("c_p", Kind::Data),
                    lit(n2.clone()),
                ]),
                ky.clone(),
            )),
            Step::Recv(maybe_senc(
                cfg,
                maybe_sign(
                    cfg,
                    quoted(&{
                        let mut fields = vec![
                            Pat::var("c_vid", Kind::Id),
                            lit(srv.clone()),
                            Pat::var("c_p", Kind::Data),
                            Pat::var("c_r", Kind::Data),
                        ];
                        if cfg.include_nonces {
                            fields.push(lit(n2.clone()));
                        }
                        fields
                    }),
                    ska.clone(),
                ),
                ky.clone(),
            )),
            Step::Send(maybe_senc(
                cfg,
                maybe_sign(
                    cfg,
                    quoted(&{
                        let mut fields = vec![
                            Pat::var("c_vid", Kind::Id),
                            Pat::var("c_p", Kind::Data),
                            Pat::var("c_r", Kind::Data),
                        ];
                        if cfg.include_nonces {
                            fields.push(Pat::var("c_n1", Kind::Nonce));
                        }
                        fields
                    }),
                    skc.clone(),
                ),
                kx.clone(),
            )),
        ],
    };

    // --- Attestation Server ---
    let attserver = Role {
        name: "attserver".into(),
        initial: Bindings::new(),
        steps: vec![
            Step::Recv(maybe_senc(
                cfg,
                Pat::tuple(&[
                    Pat::var("a_vid", Kind::Id),
                    Pat::var("a_i", Kind::Id),
                    Pat::var("a_p", Kind::Data),
                    Pat::var("a_n2", Kind::Nonce),
                ]),
                ky.clone(),
            )),
            Step::Send(maybe_senc(
                cfg,
                Pat::tuple(&[
                    Pat::var("a_vid", Kind::Id),
                    lit(rm.clone()),
                    lit(n3.clone()),
                ]),
                kz.clone(),
            )),
            Step::Recv(maybe_senc(
                cfg,
                maybe_sign(
                    cfg,
                    quoted(&{
                        let mut fields = vec![
                            Pat::var("a_vid", Kind::Id),
                            lit(rm.clone()),
                            Pat::var("a_m", Kind::Data),
                        ];
                        if cfg.include_nonces {
                            fields.push(lit(n3.clone()));
                        }
                        fields
                    }),
                    asks.clone(),
                ),
                kz.clone(),
            )),
            Step::Event(
                "attserver_accepts_measurement".into(),
                vec![Pat::var("a_m", Kind::Data)],
            ),
            Step::Event("attserver_issues_report".into(), vec![lit(report.clone())]),
            Step::Send(maybe_senc(
                cfg,
                maybe_sign(
                    cfg,
                    quoted(&{
                        let mut fields = vec![
                            Pat::var("a_vid", Kind::Id),
                            lit(srv.clone()),
                            Pat::var("a_p", Kind::Data),
                            lit(report.clone()),
                        ];
                        if cfg.include_nonces {
                            fields.push(Pat::var("a_n2", Kind::Nonce));
                        }
                        fields
                    }),
                    ska.clone(),
                ),
                ky.clone(),
            )),
        ],
    };

    // --- Cloud Server (Trust Module + Attestation Client) ---
    let server = Role {
        name: "cloudserver".into(),
        initial: Bindings::new(),
        steps: vec![
            Step::Recv(maybe_senc(
                cfg,
                Pat::tuple(&[
                    Pat::var("s_vid", Kind::Id),
                    Pat::var("s_rm", Kind::Data),
                    Pat::var("s_n3", Kind::Nonce),
                ]),
                kz.clone(),
            )),
            Step::Event("server_reports_measurement".into(), vec![lit(meas.clone())]),
            Step::Send(maybe_senc(
                cfg,
                maybe_sign(
                    cfg,
                    quoted(&{
                        let mut fields = vec![
                            Pat::var("s_vid", Kind::Id),
                            Pat::var("s_rm", Kind::Data),
                            lit(meas.clone()),
                        ];
                        if cfg.include_nonces {
                            fields.push(Pat::var("s_n3", Kind::Nonce));
                        }
                        fields
                    }),
                    asks.clone(),
                ),
                kz.clone(),
            )),
        ],
    };

    // Execution order of Figure 3 (role indices: 0=C, 1=CC, 2=AS, 3=CS).
    let schedule = vec![
        0, // C: send request
        1, // CC: recv
        1, // CC: forward to AS
        2, // AS: recv
        2, // AS: request measurements
        3, // CS: recv
        3, // CS: event (Trust Module measures)
        3, // CS: send signed quote
        2, // AS: recv quote
        2, // AS: event accept measurement
        2, // AS: event issue report
        2, // AS: send report
        1, // CC: recv report
        1, // CC: send to customer
        0, // C: recv report
        0, // C: event accept report
    ];

    let protocol = Protocol {
        roles: vec![customer, controller, attserver, server],
        schedule,
    };

    let mut secrets = vec![kx, ky, skc, ska, asks.clone(), prop, meas.clone(), report];
    if !cfg.leak_kz {
        secrets.push(kz.clone());
    }

    let properties = Properties {
        secrets,
        correspondences: vec![
            Correspondence {
                commit: "customer_accepts_report".into(),
                running: "attserver_issues_report".into(),
            },
            Correspondence {
                commit: "attserver_accepts_measurement".into(),
                running: "server_reports_measurement".into(),
            },
        ],
    };

    // Attacker's initial knowledge: public identities, plus leaks.
    let mut initial = vec![vid.clone(), srv, Term::data("forged_report")];
    if cfg.leak_kz {
        initial.push(kz.clone());
    }
    if cfg.preload_old_session {
        // The signed measurement message of a recorded earlier session.
        let old_meas = Term::data("old_measurement");
        let old_n3 = Term::nonce("old_n3");
        let old_key = if cfg.fresh_attestation_key {
            Term::key("asks_old_session")
        } else {
            asks
        };
        let mut fields = vec![vid, rm, old_meas];
        if cfg.include_nonces {
            fields.push(old_n3);
        }
        let mut quote_fields = fields.clone();
        quote_fields.push(Term::hash(Term::tuple(&fields)));
        let mut msg = Term::tuple(&quote_fields);
        if cfg.sign_quotes {
            msg = Term::sign(msg, old_key);
        }
        if cfg.encrypt_channels {
            msg = Term::senc(msg, kz);
        }
        initial.push(msg);
    }
    (protocol, properties, initial)
}

/// Runs the verifier on a model configuration.
pub fn verify_cloudmonatt(cfg: &ModelConfig) -> VerifyOutcome {
    let (protocol, properties, initial) = build(cfg);
    verify(&protocol, &initial, &properties, SearchConfig::default())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn full_protocol_verifies() {
        let outcome = verify_cloudmonatt(&ModelConfig::full());
        assert!(outcome.verified(), "violations: {:#?}", outcome.violations);
    }

    #[test]
    fn full_protocol_survives_replay_and_kz_leak_except_hop_secrecy() {
        // Even with a recorded old session and a compromised server-hop
        // key, the signed quotes and nonces keep integrity: the only
        // failures possible are secrecy of data carried on the leaked hop,
        // which the model excludes from the secret list when kz leaks...
        let outcome = verify_cloudmonatt(&ModelConfig::full_under_strong_adversary());
        // ...except the measurement M, which does transit the kz hop.
        let non_meas: Vec<_> = outcome
            .violations
            .iter()
            .filter(|v| !v.detail.contains("measurement_m"))
            .collect();
        assert!(
            non_meas.is_empty(),
            "only M's hop secrecy may fail under a leaked Kz: {:#?}",
            outcome.violations
        );
        // Integrity must hold: no correspondence violations.
        assert!(outcome
            .violations
            .iter()
            .all(|v| v.property != "correspondence"));
    }

    #[test]
    fn unsigned_quotes_with_leaked_kz_are_forgeable() {
        let cfg = ModelConfig {
            sign_quotes: false,
            leak_kz: true,
            ..ModelConfig::full()
        };
        let outcome = verify_cloudmonatt(&cfg);
        assert!(
            outcome
                .violations
                .iter()
                .any(|v| v.property == "correspondence"
                    && v.detail.contains("attserver_accepts_measurement")),
            "attacker should forge a measurement: {:#?}",
            outcome.violations
        );
    }

    #[test]
    fn unencrypted_channels_leak_everything() {
        let cfg = ModelConfig {
            encrypt_channels: false,
            ..ModelConfig::full()
        };
        let outcome = verify_cloudmonatt(&cfg);
        let leaked: Vec<&str> = outcome
            .violations
            .iter()
            .filter(|v| v.property == "secrecy")
            .map(|v| v.detail.as_str())
            .collect();
        assert!(leaked.iter().any(|d| d.contains("prop_p")), "{leaked:?}");
        assert!(leaked.iter().any(|d| d.contains("measurement_m")));
        assert!(leaked.iter().any(|d| d.contains("report_r")));
    }

    #[test]
    fn missing_nonces_with_longterm_key_allow_replay() {
        let cfg = ModelConfig {
            include_nonces: false,
            fresh_attestation_key: false,
            preload_old_session: true,
            ..ModelConfig::full()
        };
        let outcome = verify_cloudmonatt(&cfg);
        assert!(
            outcome
                .violations
                .iter()
                .any(|v| v.property == "correspondence" && v.detail.contains("old_measurement")),
            "stale measurement should be replayable: {:#?}",
            outcome.violations
        );
    }

    #[test]
    fn fresh_session_keys_block_replay_even_without_nonces() {
        // Defence in depth: the per-session attestation key alone defeats
        // cross-session replay.
        let cfg = ModelConfig {
            include_nonces: false,
            fresh_attestation_key: true,
            preload_old_session: true,
            ..ModelConfig::full()
        };
        let outcome = verify_cloudmonatt(&cfg);
        assert!(
            outcome
                .violations
                .iter()
                .all(|v| !v.detail.contains("old_measurement")),
            "{:#?}",
            outcome.violations
        );
    }

    #[test]
    fn nonces_block_replay_with_longterm_key() {
        let cfg = ModelConfig {
            include_nonces: true,
            fresh_attestation_key: false,
            preload_old_session: true,
            ..ModelConfig::full()
        };
        let outcome = verify_cloudmonatt(&cfg);
        assert!(
            outcome
                .violations
                .iter()
                .all(|v| !v.detail.contains("old_measurement")),
            "{:#?}",
            outcome.violations
        );
    }
}
