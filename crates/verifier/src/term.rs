//! Symbolic terms of the Dolev-Yao model.
//!
//! Messages are terms over a free algebra: atoms (names, nonces, keys),
//! pairing, symmetric and asymmetric encryption, signatures and hashing.
//! Cryptography is perfect: the only way to open `senc(m, k)` is to know
//! `k`; the only way to produce `sign(m, sk)` is to know `sk`.
//!
//! Atoms carry a [`Kind`] tag. The search is *typed*: a protocol variable
//! of kind `Nonce` only unifies with nonce-kinded terms. This is the
//! standard typed Dolev-Yao restriction that keeps bounded verification
//! tractable; type-flaw attacks are out of scope (and prevented in the
//! implementation by the length-framed wire encoding).

use std::fmt;

/// The type tag of an atom or term.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Kind {
    /// Entity or object identifiers (VM ids, server ids).
    Id,
    /// Freshness nonces.
    Nonce,
    /// Cryptographic keys (symmetric keys and private keys).
    Key,
    /// Payload data: properties, measurements, reports.
    Data,
    /// Composite terms (pairs, ciphertexts, signatures, hashes).
    Composite,
}

/// A symbolic term.
#[derive(Clone, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Term {
    /// A named atom with a kind tag.
    Atom(String, Kind),
    /// Pairing (tuples are right-nested pairs).
    Pair(Box<Term>, Box<Term>),
    /// Symmetric encryption `senc(msg, key)`.
    SEnc(Box<Term>, Box<Term>),
    /// Signature `sign(msg, sk)` — reveals `msg` to anyone (signatures do
    /// not hide), but can only be constructed with `sk`.
    Sign(Box<Term>, Box<Term>),
    /// Cryptographic hash.
    Hash(Box<Term>),
    /// The public key corresponding to a private key.
    Pk(Box<Term>),
}

impl Term {
    /// Creates an atom of the given kind.
    pub fn atom(name: &str, kind: Kind) -> Term {
        Term::Atom(name.to_owned(), kind)
    }

    /// Shorthand for an identifier atom.
    pub fn id(name: &str) -> Term {
        Term::atom(name, Kind::Id)
    }

    /// Shorthand for a nonce atom.
    pub fn nonce(name: &str) -> Term {
        Term::atom(name, Kind::Nonce)
    }

    /// Shorthand for a key atom.
    pub fn key(name: &str) -> Term {
        Term::atom(name, Kind::Key)
    }

    /// Shorthand for a data atom.
    pub fn data(name: &str) -> Term {
        Term::atom(name, Kind::Data)
    }

    /// Pairs two terms.
    pub fn pair(a: Term, b: Term) -> Term {
        Term::Pair(Box::new(a), Box::new(b))
    }

    /// Builds a right-nested tuple from a slice.
    ///
    /// # Panics
    ///
    /// Panics on an empty slice.
    pub fn tuple(parts: &[Term]) -> Term {
        assert!(!parts.is_empty(), "tuple needs at least one element");
        let mut iter = parts.iter().rev().cloned();
        let mut acc = iter.next().expect("nonempty");
        for t in iter {
            acc = Term::pair(t, acc);
        }
        acc
    }

    /// Symmetric encryption.
    pub fn senc(msg: Term, key: Term) -> Term {
        Term::SEnc(Box::new(msg), Box::new(key))
    }

    /// Signature by `sk`.
    pub fn sign(msg: Term, sk: Term) -> Term {
        Term::Sign(Box::new(msg), Box::new(sk))
    }

    /// Hash.
    pub fn hash(msg: Term) -> Term {
        Term::Hash(Box::new(msg))
    }

    /// Public key of `sk`.
    pub fn pk(sk: Term) -> Term {
        Term::Pk(Box::new(sk))
    }

    /// The kind of this term (composites are [`Kind::Composite`]).
    pub fn kind(&self) -> Kind {
        match self {
            Term::Atom(_, k) => *k,
            _ => Kind::Composite,
        }
    }

    /// Collects all subterms (including `self`) into `out`.
    pub fn collect_subterms(&self, out: &mut Vec<Term>) {
        out.push(self.clone());
        match self {
            Term::Atom(..) => {}
            Term::Pair(a, b) | Term::SEnc(a, b) | Term::Sign(a, b) => {
                a.collect_subterms(out);
                b.collect_subterms(out);
            }
            Term::Hash(a) | Term::Pk(a) => a.collect_subterms(out),
        }
    }
}

impl fmt::Display for Term {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Term::Atom(name, _) => write!(f, "{name}"),
            Term::Pair(a, b) => write!(f, "({a}, {b})"),
            Term::SEnc(m, k) => write!(f, "senc({m}, {k})"),
            Term::Sign(m, k) => write!(f, "sign({m}, {k})"),
            Term::Hash(m) => write!(f, "h({m})"),
            Term::Pk(k) => write!(f, "pk({k})"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tuple_right_nests() {
        let t = Term::tuple(&[Term::id("a"), Term::id("b"), Term::id("c")]);
        assert_eq!(
            t,
            Term::pair(Term::id("a"), Term::pair(Term::id("b"), Term::id("c")))
        );
    }

    #[test]
    fn kinds() {
        assert_eq!(Term::nonce("n").kind(), Kind::Nonce);
        assert_eq!(Term::key("k").kind(), Kind::Key);
        assert_eq!(
            Term::pair(Term::id("a"), Term::id("b")).kind(),
            Kind::Composite
        );
    }

    #[test]
    fn subterms() {
        let t = Term::senc(Term::pair(Term::id("a"), Term::nonce("n")), Term::key("k"));
        let mut subs = Vec::new();
        t.collect_subterms(&mut subs);
        assert_eq!(subs.len(), 5);
        assert!(subs.contains(&Term::nonce("n")));
        assert!(subs.contains(&Term::key("k")));
    }

    #[test]
    fn display() {
        let t = Term::sign(Term::hash(Term::id("m")), Term::key("sk"));
        assert_eq!(t.to_string(), "sign(h(m), sk)");
    }

    #[test]
    #[should_panic(expected = "tuple needs at least one element")]
    fn empty_tuple_panics() {
        let _ = Term::tuple(&[]);
    }
}
