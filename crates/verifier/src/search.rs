//! Bounded state-space exploration against the Dolev-Yao attacker.
//!
//! The attacker controls the network: every `Send` enters its knowledge,
//! and at every `Recv` it may deliver *any term it can derive* that
//! matches the receiver's pattern. Unbound pattern holes are filled from
//! the typed subterm universe of the attacker's knowledge plus a fresh
//! attacker-chosen atom per kind (the standard subterm-property
//! restriction of bounded Dolev-Yao checking); each candidate message is
//! then checked for derivability.
//!
//! Properties:
//! * **Secrecy** — the attacker can never derive a designated term.
//! * **Correspondence (authentication/integrity)** — every `commit` event
//!   is preceded by a `running` event with identical arguments, i.e. the
//!   value a party accepts is the value its peer actually produced.

use crate::knowledge::Knowledge;
use crate::protocol::{Bindings, EventRecord, Pat, Protocol, Step};
use crate::term::{Kind, Term};

/// A property violation found by the search.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Violation {
    /// Which property was violated.
    pub property: String,
    /// Human-readable description of the attack.
    pub detail: String,
    /// The attacker's message deliveries along the violating branch.
    pub trace: Vec<String>,
}

/// A correspondence assertion: every `commit` event must be preceded by a
/// `running` event with equal arguments.
#[derive(Clone, Debug)]
pub struct Correspondence {
    /// The committing event label (e.g. `"customer_accepts_report"`).
    pub commit: String,
    /// The required earlier event label (e.g. `"attserver_issues_report"`).
    pub running: String,
}

/// The properties to check.
#[derive(Clone, Debug, Default)]
pub struct Properties {
    /// Terms that must remain underivable forever.
    pub secrets: Vec<Term>,
    /// Correspondence assertions.
    pub correspondences: Vec<Correspondence>,
}

/// Search configuration.
#[derive(Clone, Copy, Debug)]
pub struct SearchConfig {
    /// Maximum branches explored before giving up (reported as
    /// `truncated`).
    pub max_branches: u64,
    /// Maximum violations collected before stopping early.
    pub max_violations: usize,
}

impl Default for SearchConfig {
    fn default() -> Self {
        SearchConfig {
            max_branches: 500_000,
            max_violations: 8,
        }
    }
}

/// Result of a verification run.
#[derive(Clone, Debug)]
pub struct VerifyOutcome {
    /// Violations found (empty = verified within the bound).
    pub violations: Vec<Violation>,
    /// Branches explored.
    pub branches: u64,
    /// True if the search hit `max_branches` (verification incomplete).
    pub truncated: bool,
}

impl VerifyOutcome {
    /// True if no violations were found and the search completed.
    pub fn verified(&self) -> bool {
        self.violations.is_empty() && !self.truncated
    }
}

struct SearchState {
    violations: Vec<Violation>,
    seen: std::collections::BTreeSet<String>,
    branches: u64,
    truncated: bool,
}

impl SearchState {
    /// Records a violation if it is novel (property + detail).
    fn push(&mut self, violation: Violation) {
        let key = format!("{}::{}", violation.property, violation.detail);
        if self.seen.insert(key) {
            self.violations.push(violation);
        }
    }
}

/// Verifies `protocol` against `properties`, starting the attacker with
/// `initial_knowledge`.
pub fn verify(
    protocol: &Protocol,
    initial_knowledge: &[Term],
    properties: &Properties,
    config: SearchConfig,
) -> VerifyOutcome {
    protocol.validate();
    let mut knowledge = Knowledge::from_initial(initial_knowledge.iter().cloned());
    // The attacker can always invent fresh values of each atom kind.
    knowledge.learn(Term::atom("attacker_id", Kind::Id));
    knowledge.learn(Term::atom("attacker_nonce", Kind::Nonce));
    knowledge.learn(Term::atom("attacker_key", Kind::Key));
    knowledge.learn(Term::atom("attacker_data", Kind::Data));
    let bindings: Vec<Bindings> = protocol.roles.iter().map(|r| r.initial.clone()).collect();
    let pcs = vec![0usize; protocol.roles.len()];
    let mut state = SearchState {
        violations: Vec::new(),
        seen: std::collections::BTreeSet::new(),
        branches: 0,
        truncated: false,
    };
    let mut trace = Vec::new();
    explore(
        protocol,
        properties,
        &config,
        0,
        pcs,
        bindings,
        knowledge,
        Vec::new(),
        &mut trace,
        &mut state,
    );
    VerifyOutcome {
        violations: state.violations,
        branches: state.branches,
        truncated: state.truncated,
    }
}

fn check_secrets(
    properties: &Properties,
    knowledge: &Knowledge,
    trace: &[String],
    state: &mut SearchState,
) {
    for secret in &properties.secrets {
        if knowledge.can_derive(secret) {
            state.push(Violation {
                property: "secrecy".into(),
                // `secret` is a symbolic term name in the protocol model
                // (e.g. "k_session"), not actual key material.
                detail: format!("attacker derives {secret}"), // #[allow(monatt::secret_hygiene)]
                trace: trace.to_vec(),
            });
        }
    }
}

fn check_correspondences(
    properties: &Properties,
    events: &[EventRecord],
    trace: &[String],
    state: &mut SearchState,
) {
    for corr in &properties.correspondences {
        for (i, ev) in events.iter().enumerate() {
            if ev.label != corr.commit {
                continue;
            }
            let matched = events[..i]
                .iter()
                .any(|prior| prior.label == corr.running && prior.args == ev.args);
            if !matched {
                let args: Vec<String> = ev.args.iter().map(|t| t.to_string()).collect();
                state.push(Violation {
                    property: "correspondence".into(),
                    detail: format!(
                        "{}({}) committed without matching {}",
                        corr.commit,
                        args.join(", "),
                        corr.running
                    ),
                    trace: trace.to_vec(),
                });
            }
        }
    }
}

#[allow(clippy::too_many_arguments)]
fn explore(
    protocol: &Protocol,
    properties: &Properties,
    config: &SearchConfig,
    schedule_pos: usize,
    pcs: Vec<usize>,
    bindings: Vec<Bindings>,
    knowledge: Knowledge,
    events: Vec<EventRecord>,
    trace: &mut Vec<String>,
    state: &mut SearchState,
) {
    if state.violations.len() >= config.max_violations || state.truncated {
        return;
    }
    state.branches += 1;
    if state.branches > config.max_branches {
        state.truncated = true;
        return;
    }
    if schedule_pos == protocol.schedule.len() {
        // Branch complete: check end-to-end properties.
        check_secrets(properties, &knowledge, trace, state);
        check_correspondences(properties, &events, trace, state);
        return;
    }
    let role_idx = protocol.schedule[schedule_pos];
    let role = &protocol.roles[role_idx];
    let pc = pcs[role_idx];
    match &role.steps[pc] {
        Step::Send(template) => {
            let term = template.instantiate(&bindings[role_idx]);
            let mut knowledge = knowledge;
            knowledge.learn(term);
            // Secrecy can break as soon as knowledge grows.
            check_secrets(properties, &knowledge, trace, state);
            let mut pcs = pcs;
            pcs[role_idx] += 1;
            explore(
                protocol,
                properties,
                config,
                schedule_pos + 1,
                pcs,
                bindings,
                knowledge,
                events,
                trace,
                state,
            );
        }
        Step::Event(label, arg_templates) => {
            let args: Vec<Term> = arg_templates
                .iter()
                .map(|p| p.instantiate(&bindings[role_idx]))
                .collect();
            let mut events = events;
            events.push(EventRecord {
                role: role.name.clone(),
                label: label.clone(),
                args,
            });
            let mut pcs = pcs;
            pcs[role_idx] += 1;
            explore(
                protocol,
                properties,
                config,
                schedule_pos + 1,
                pcs,
                bindings,
                knowledge,
                events,
                trace,
                state,
            );
        }
        Step::Recv(pattern) => {
            let candidates = candidate_deliveries(pattern, &bindings[role_idx], &knowledge);
            for (term, new_bindings) in candidates {
                let mut pcs = pcs.clone();
                pcs[role_idx] += 1;
                let mut bindings = bindings.clone();
                bindings[role_idx] = new_bindings;
                trace.push(format!("deliver to {}: {}", role.name, term));
                explore(
                    protocol,
                    properties,
                    config,
                    schedule_pos + 1,
                    pcs,
                    bindings.clone(),
                    knowledge.clone(),
                    events.clone(),
                    trace,
                    state,
                );
                trace.pop();
                if state.truncated || state.violations.len() >= config.max_violations {
                    return;
                }
            }
        }
    }
}

/// Enumerates the terms the attacker can deliver for `pattern`: every
/// typed instantiation of the unbound holes from the knowledge's subterm
/// universe (plus fresh attacker atoms), filtered by derivability.
fn candidate_deliveries(
    pattern: &Pat,
    bindings: &Bindings,
    knowledge: &Knowledge,
) -> Vec<(Term, Bindings)> {
    let mut holes = Vec::new();
    pattern.unbound_vars(bindings, &mut holes);
    // The universe already contains the fresh attacker atoms, which
    // `verify` seeds into the knowledge.
    let universe: Vec<Term> = knowledge.subterm_universe().into_iter().collect();
    let mut results = Vec::new();
    let mut assignment: Vec<Term> = Vec::new();
    fill_holes(
        pattern,
        bindings,
        knowledge,
        &holes,
        &universe,
        &mut assignment,
        &mut results,
    );
    results
}

fn fill_holes(
    pattern: &Pat,
    bindings: &Bindings,
    knowledge: &Knowledge,
    holes: &[(String, Kind)],
    universe: &[Term],
    assignment: &mut Vec<Term>,
    results: &mut Vec<(Term, Bindings)>,
) {
    if assignment.len() == holes.len() {
        let mut candidate_bindings = bindings.clone();
        for ((name, _), value) in holes.iter().zip(assignment.iter()) {
            candidate_bindings.insert(name.clone(), value.clone());
        }
        let term = pattern.instantiate(&candidate_bindings);
        if !knowledge.can_derive(&term) {
            return;
        }
        // Re-match to confirm (also covers patterns with repeated vars).
        let mut fresh = bindings.clone();
        if pattern.matches(&term, &mut fresh) {
            results.push((term, fresh));
        }
        return;
    }
    let (_, kind) = &holes[assignment.len()];
    for candidate in universe {
        let matches_kind = candidate.kind() == *kind
            || (*kind == Kind::Composite && candidate.kind() == Kind::Composite);
        if !matches_kind {
            continue;
        }
        assignment.push(candidate.clone());
        fill_holes(
            pattern, bindings, knowledge, holes, universe, assignment, results,
        );
        assignment.pop();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::protocol::Role;

    /// A toy protocol: A sends senc(secret, k); B receives and commits.
    fn toy(encrypted: bool) -> (Protocol, Properties) {
        let payload = if encrypted {
            Pat::senc(Pat::lit(Term::data("secret")), Pat::lit(Term::key("k")))
        } else {
            Pat::lit(Term::data("secret"))
        };
        let recv_pat = if encrypted {
            Pat::senc(Pat::var("x", Kind::Data), Pat::lit(Term::key("k")))
        } else {
            Pat::var("x", Kind::Data)
        };
        let a = Role {
            name: "A".into(),
            initial: Bindings::new(),
            steps: vec![
                Step::Event("a_sends".into(), vec![Pat::lit(Term::data("secret"))]),
                Step::Send(payload),
            ],
        };
        let b = Role {
            name: "B".into(),
            initial: Bindings::new(),
            steps: vec![
                Step::Recv(recv_pat),
                Step::Event("b_accepts".into(), vec![Pat::var("x", Kind::Data)]),
            ],
        };
        let protocol = Protocol {
            roles: vec![a, b],
            schedule: vec![0, 0, 1, 1],
        };
        let properties = Properties {
            secrets: vec![Term::data("secret")],
            correspondences: vec![Correspondence {
                commit: "b_accepts".into(),
                running: "a_sends".into(),
            }],
        };
        (protocol, properties)
    }

    #[test]
    fn encrypted_toy_protocol_verifies() {
        let (protocol, properties) = toy(true);
        let outcome = verify(&protocol, &[], &properties, SearchConfig::default());
        assert!(outcome.verified(), "violations: {:?}", outcome.violations);
        assert!(outcome.branches > 0);
    }

    #[test]
    fn plaintext_toy_protocol_breaks_secrecy_and_integrity() {
        let (protocol, properties) = toy(false);
        let outcome = verify(&protocol, &[], &properties, SearchConfig::default());
        assert!(!outcome.verified());
        assert!(
            outcome.violations.iter().any(|v| v.property == "secrecy"),
            "{:?}",
            outcome.violations
        );
        // The attacker can substitute its own data atom, breaking the
        // correspondence.
        assert!(outcome
            .violations
            .iter()
            .any(|v| v.property == "correspondence"));
    }

    #[test]
    fn leaked_key_breaks_encrypted_variant() {
        let (protocol, properties) = toy(true);
        let outcome = verify(
            &protocol,
            &[Term::key("k")],
            &properties,
            SearchConfig::default(),
        );
        assert!(!outcome.verified());
        assert!(outcome.violations.iter().any(|v| v.property == "secrecy"));
        assert!(outcome
            .violations
            .iter()
            .any(|v| v.property == "correspondence"));
    }

    #[test]
    fn violation_traces_name_the_delivery() {
        let (protocol, properties) = toy(false);
        let outcome = verify(&protocol, &[], &properties, SearchConfig::default());
        let corr = outcome
            .violations
            .iter()
            .find(|v| v.property == "correspondence")
            .expect("found");
        assert!(!corr.trace.is_empty());
        assert!(corr.trace[0].contains("deliver to B"));
    }

    #[test]
    fn branch_limit_reports_truncation() {
        let (protocol, properties) = toy(false);
        let outcome = verify(
            &protocol,
            &[],
            &properties,
            SearchConfig {
                max_branches: 1,
                max_violations: 100,
            },
        );
        assert!(outcome.truncated);
        assert!(!outcome.verified());
    }
}
