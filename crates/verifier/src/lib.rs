//! # monatt-verifier
//!
//! A bounded symbolic (Dolev-Yao) protocol verifier — the reproduction's
//! stand-in for ProVerif in Section 7.2.2 of the CloudMonatt paper.
//!
//! * [`term`] — the symbolic message algebra (typed atoms, pairing,
//!   encryption, signatures, hashes).
//! * [`knowledge`] — attacker knowledge with decomposition saturation and
//!   derivability checking.
//! * [`protocol`] — roles, linear scripts and message patterns (pattern
//!   matching models the receiver's cryptographic checks).
//! * [`search`] — bounded exploration of attacker deliveries, checking
//!   secrecy and correspondence (authentication/integrity) assertions.
//! * [`cloudmonatt`] — the Figure-3 attestation protocol model plus
//!   weakened variants demonstrating that every ingredient (signatures,
//!   encryption, nonces, per-session attestation keys) is load-bearing.
//!
//! The search is *typed* (protocol variables only unify with terms of
//! their kind) and *bounded* (hole candidates come from the subterm
//! universe of the attacker's knowledge, plus fresh attacker atoms) —
//! the standard restrictions for terminating Dolev-Yao checking. A
//! `truncated` flag reports when the branch budget was exhausted, so a
//! "verified" verdict is never silently partial.
//!
//! ## Example
//!
//! ```
//! use monatt_verifier::cloudmonatt::{verify_cloudmonatt, ModelConfig};
//!
//! let outcome = verify_cloudmonatt(&ModelConfig::full());
//! assert!(outcome.verified());
//!
//! let weakened = ModelConfig { sign_quotes: false, leak_kz: true, ..ModelConfig::full() };
//! assert!(!verify_cloudmonatt(&weakened).verified());
//! ```

#![warn(missing_docs)]

pub mod cloudmonatt;
pub mod knowledge;
pub mod protocol;
pub mod search;
pub mod term;

pub use cloudmonatt::{build, verify_cloudmonatt, ModelConfig};
pub use knowledge::Knowledge;
pub use protocol::{Bindings, EventRecord, Pat, Protocol, Role, Step};
pub use search::{verify, Correspondence, Properties, SearchConfig, VerifyOutcome, Violation};
pub use term::{Kind, Term};
