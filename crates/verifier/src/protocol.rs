//! Protocol roles, message patterns and bindings.
//!
//! A protocol is a set of roles, each a linear script of steps, plus an
//! execution schedule. `Send` steps emit terms built from the role's
//! bindings (the attacker observes every send); `Recv` steps
//! pattern-match whatever the attacker chooses to deliver — pattern
//! matching *is* the receiver's cryptographic verification (a pattern
//! `sign(m, skA)` only matches genuine signatures by `skA`).

use crate::term::{Kind, Term};
use std::collections::BTreeMap;

/// Variable bindings accumulated by one role.
pub type Bindings = BTreeMap<String, Term>;

/// A message pattern / template.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Pat {
    /// A literal closed term.
    Lit(Term),
    /// A variable: on `Recv`, binds a term of the given kind (or checks
    /// equality if already bound); on `Send`, must already be bound.
    Var(String, Kind),
    /// Pairing.
    Pair(Box<Pat>, Box<Pat>),
    /// Symmetric encryption.
    SEnc(Box<Pat>, Box<Pat>),
    /// Signature.
    Sign(Box<Pat>, Box<Pat>),
    /// Hash.
    Hash(Box<Pat>),
    /// Public key.
    Pk(Box<Pat>),
}

impl Pat {
    /// Literal pattern.
    pub fn lit(t: Term) -> Pat {
        Pat::Lit(t)
    }

    /// Variable pattern.
    pub fn var(name: &str, kind: Kind) -> Pat {
        Pat::Var(name.to_owned(), kind)
    }

    /// Pair pattern.
    pub fn pair(a: Pat, b: Pat) -> Pat {
        Pat::Pair(Box::new(a), Box::new(b))
    }

    /// Right-nested tuple pattern.
    ///
    /// # Panics
    ///
    /// Panics on an empty slice.
    pub fn tuple(parts: &[Pat]) -> Pat {
        assert!(!parts.is_empty(), "tuple needs at least one element");
        let mut iter = parts.iter().rev().cloned();
        let mut acc = iter.next().expect("nonempty");
        for p in iter {
            acc = Pat::pair(p, acc);
        }
        acc
    }

    /// Symmetric-encryption pattern.
    pub fn senc(m: Pat, k: Pat) -> Pat {
        Pat::SEnc(Box::new(m), Box::new(k))
    }

    /// Signature pattern.
    pub fn sign(m: Pat, sk: Pat) -> Pat {
        Pat::Sign(Box::new(m), Box::new(sk))
    }

    /// Hash pattern.
    pub fn hash(m: Pat) -> Pat {
        Pat::Hash(Box::new(m))
    }

    /// Instantiates the pattern into a closed term using `bindings`.
    ///
    /// # Panics
    ///
    /// Panics if a variable is unbound — send templates must be closed by
    /// the time they execute.
    pub fn instantiate(&self, bindings: &Bindings) -> Term {
        match self {
            Pat::Lit(t) => t.clone(),
            Pat::Var(name, _) => bindings
                .get(name)
                .unwrap_or_else(|| panic!("unbound variable {name} in send template"))
                .clone(),
            Pat::Pair(a, b) => Term::pair(a.instantiate(bindings), b.instantiate(bindings)),
            Pat::SEnc(m, k) => Term::senc(m.instantiate(bindings), k.instantiate(bindings)),
            Pat::Sign(m, k) => Term::sign(m.instantiate(bindings), k.instantiate(bindings)),
            Pat::Hash(m) => Term::hash(m.instantiate(bindings)),
            Pat::Pk(k) => Term::pk(k.instantiate(bindings)),
        }
    }

    /// Matches `term` against the pattern, extending `bindings` on
    /// success. Returns false (leaving `bindings` possibly partially
    /// extended — callers clone first) on mismatch.
    pub fn matches(&self, term: &Term, bindings: &mut Bindings) -> bool {
        match (self, term) {
            (Pat::Lit(t), _) => t == term,
            (Pat::Var(name, kind), _) => {
                if let Some(bound) = bindings.get(name) {
                    bound == term
                } else if term.kind() == *kind || *kind == Kind::Composite {
                    bindings.insert(name.clone(), term.clone());
                    true
                } else {
                    false
                }
            }
            (Pat::Pair(pa, pb), Term::Pair(ta, tb)) => {
                pa.matches(ta, bindings) && pb.matches(tb, bindings)
            }
            (Pat::SEnc(pm, pk), Term::SEnc(tm, tk)) => {
                pm.matches(tm, bindings) && pk.matches(tk, bindings)
            }
            (Pat::Sign(pm, pk), Term::Sign(tm, tk)) => {
                pm.matches(tm, bindings) && pk.matches(tk, bindings)
            }
            (Pat::Hash(pm), Term::Hash(tm)) => pm.matches(tm, bindings),
            (Pat::Pk(pk), Term::Pk(tk)) => pk.matches(tk, bindings),
            _ => false,
        }
    }

    /// Collects the names of variables not yet bound in `bindings`.
    pub fn unbound_vars(&self, bindings: &Bindings, out: &mut Vec<(String, Kind)>) {
        match self {
            Pat::Lit(_) => {}
            Pat::Var(name, kind) => {
                if !bindings.contains_key(name) && !out.iter().any(|(n, _)| n == name) {
                    out.push((name.clone(), *kind));
                }
            }
            Pat::Pair(a, b) | Pat::SEnc(a, b) | Pat::Sign(a, b) => {
                a.unbound_vars(bindings, out);
                b.unbound_vars(bindings, out);
            }
            Pat::Hash(a) | Pat::Pk(a) => a.unbound_vars(bindings, out),
        }
    }
}

/// One step of a role script.
#[derive(Clone, Debug)]
pub enum Step {
    /// Emit a message built from the bindings. The attacker observes it.
    Send(Pat),
    /// Receive a message: the attacker delivers any derivable term
    /// matching the pattern.
    Recv(Pat),
    /// Record a labelled event with instantiated arguments (for
    /// correspondence assertions).
    Event(String, Vec<Pat>),
}

/// A protocol role: a name, initial knowledge (bindings) and a linear
/// script.
#[derive(Clone, Debug)]
pub struct Role {
    /// Role name, e.g. `"customer"`.
    pub name: String,
    /// Initial variable bindings (long-term keys, identities, fresh
    /// nonces — freshness is modelled by unique atom names).
    pub initial: Bindings,
    /// The script.
    pub steps: Vec<Step>,
}

/// A protocol: roles plus the global execution schedule (a sequence of
/// role indices; each entry advances that role by one step).
#[derive(Clone, Debug)]
pub struct Protocol {
    /// The roles.
    pub roles: Vec<Role>,
    /// Execution order: `schedule[i]` is the index of the role that takes
    /// its next step at position `i`.
    pub schedule: Vec<usize>,
}

impl Protocol {
    /// Validates that the schedule covers each role's steps exactly.
    ///
    /// # Panics
    ///
    /// Panics on a malformed schedule (wrong counts or bad indices).
    pub fn validate(&self) {
        let mut counts = vec![0usize; self.roles.len()];
        for &r in &self.schedule {
            assert!(r < self.roles.len(), "schedule references unknown role");
            counts[r] += 1;
        }
        for (i, role) in self.roles.iter().enumerate() {
            assert_eq!(
                counts[i],
                role.steps.len(),
                "schedule step count mismatch for role {}",
                role.name
            );
        }
    }
}

/// A recorded protocol event.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct EventRecord {
    /// The emitting role.
    pub role: String,
    /// The event label.
    pub label: String,
    /// Instantiated arguments.
    pub args: Vec<Term>,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn literal_match() {
        let mut b = Bindings::new();
        assert!(Pat::lit(Term::id("a")).matches(&Term::id("a"), &mut b));
        assert!(!Pat::lit(Term::id("a")).matches(&Term::id("b"), &mut b));
    }

    #[test]
    fn var_binds_and_checks_kind() {
        let mut b = Bindings::new();
        let p = Pat::var("n", Kind::Nonce);
        assert!(!p.matches(&Term::id("a"), &mut b), "kind mismatch");
        assert!(p.matches(&Term::nonce("n1"), &mut b));
        assert_eq!(b["n"], Term::nonce("n1"));
        // Re-match requires equality.
        assert!(!p.matches(&Term::nonce("n2"), &mut b));
        assert!(p.matches(&Term::nonce("n1"), &mut b));
    }

    #[test]
    fn structured_match_extracts() {
        let mut b = Bindings::new();
        let pat = Pat::senc(
            Pat::tuple(&[
                Pat::var("vid", Kind::Id),
                Pat::var("m", Kind::Data),
                Pat::lit(Term::nonce("n3")),
            ]),
            Pat::lit(Term::key("kz")),
        );
        let msg = Term::senc(
            Term::tuple(&[Term::id("vm1"), Term::data("meas"), Term::nonce("n3")]),
            Term::key("kz"),
        );
        assert!(pat.matches(&msg, &mut b));
        assert_eq!(b["m"], Term::data("meas"));
        // Wrong key fails.
        let mut b2 = Bindings::new();
        let bad = Term::senc(
            Term::tuple(&[Term::id("vm1"), Term::data("meas"), Term::nonce("n3")]),
            Term::key("other"),
        );
        assert!(!pat.matches(&bad, &mut b2));
    }

    #[test]
    fn instantiate_roundtrip() {
        let mut b = Bindings::new();
        b.insert("x".into(), Term::data("payload"));
        let pat = Pat::sign(Pat::var("x", Kind::Data), Pat::lit(Term::key("sk")));
        let t = pat.instantiate(&b);
        assert_eq!(t, Term::sign(Term::data("payload"), Term::key("sk")));
        let mut b2 = Bindings::new();
        assert!(pat.matches(&t, &mut b2));
    }

    #[test]
    #[should_panic(expected = "unbound variable")]
    fn instantiate_unbound_panics() {
        Pat::var("x", Kind::Data).instantiate(&Bindings::new());
    }

    #[test]
    fn unbound_vars_listed_once() {
        let pat = Pat::pair(
            Pat::var("a", Kind::Id),
            Pat::pair(Pat::var("a", Kind::Id), Pat::var("b", Kind::Data)),
        );
        let mut out = Vec::new();
        pat.unbound_vars(&Bindings::new(), &mut out);
        assert_eq!(out.len(), 2);
    }

    #[test]
    fn protocol_validation() {
        let p = Protocol {
            roles: vec![Role {
                name: "a".into(),
                initial: Bindings::new(),
                steps: vec![Step::Send(Pat::lit(Term::id("x")))],
            }],
            schedule: vec![0],
        };
        p.validate();
    }

    #[test]
    #[should_panic(expected = "schedule step count mismatch")]
    fn bad_schedule_panics() {
        let p = Protocol {
            roles: vec![Role {
                name: "a".into(),
                initial: Bindings::new(),
                steps: vec![Step::Send(Pat::lit(Term::id("x")))],
            }],
            schedule: vec![],
        };
        p.validate();
    }
}
