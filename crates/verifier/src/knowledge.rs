//! The attacker's knowledge set and Dolev-Yao deduction.
//!
//! Knowledge grows by observing messages; [`Knowledge::saturate`] applies
//! the decomposition rules (projection, decryption with known keys,
//! signature content extraction) to a fixpoint, and
//! [`Knowledge::can_derive`] checks composition (pairing, encrypting,
//! signing and hashing with known material).

use crate::term::Term;
use std::collections::BTreeSet;

/// The attacker's (saturated) knowledge.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Knowledge {
    known: BTreeSet<Term>,
}

impl Knowledge {
    /// Creates empty knowledge.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates knowledge from initial terms and saturates.
    pub fn from_initial<I: IntoIterator<Item = Term>>(terms: I) -> Self {
        let mut k = Knowledge::new();
        for t in terms {
            k.learn(t);
        }
        k
    }

    /// Adds an observed term and re-saturates.
    pub fn learn(&mut self, term: Term) {
        self.known.insert(term);
        self.saturate();
    }

    /// Number of distinct known terms.
    pub fn len(&self) -> usize {
        self.known.len()
    }

    /// True if nothing is known.
    pub fn is_empty(&self) -> bool {
        self.known.is_empty()
    }

    /// Iterates over the known terms.
    pub fn iter(&self) -> impl Iterator<Item = &Term> {
        self.known.iter()
    }

    /// Applies decomposition rules to a fixpoint.
    pub fn saturate(&mut self) {
        loop {
            let mut new_terms: Vec<Term> = Vec::new();
            for t in &self.known {
                match t {
                    Term::Pair(a, b) => {
                        if !self.known.contains(a) {
                            new_terms.push((**a).clone());
                        }
                        if !self.known.contains(b) {
                            new_terms.push((**b).clone());
                        }
                    }
                    Term::SEnc(m, k) => {
                        if !self.known.contains(m) && self.can_derive(k) {
                            new_terms.push((**m).clone());
                        }
                    }
                    // A signature reveals the signed message.
                    Term::Sign(m, _) => {
                        if !self.known.contains(m) {
                            new_terms.push((**m).clone());
                        }
                    }
                    Term::Atom(..) | Term::Hash(_) | Term::Pk(_) => {}
                }
            }
            if new_terms.is_empty() {
                return;
            }
            for t in new_terms {
                self.known.insert(t);
            }
        }
    }

    /// Can the attacker construct `term` from its knowledge?
    pub fn can_derive(&self, term: &Term) -> bool {
        if self.known.contains(term) {
            return true;
        }
        match term {
            Term::Atom(..) => false,
            Term::Pair(a, b) => self.can_derive(a) && self.can_derive(b),
            Term::SEnc(m, k) => self.can_derive(m) && self.can_derive(k),
            Term::Sign(m, sk) => self.can_derive(m) && self.can_derive(sk),
            Term::Hash(m) => self.can_derive(m),
            Term::Pk(sk) => self.can_derive(sk),
        }
    }

    /// All subterms of the knowledge — the candidate universe for typed
    /// hole filling in the bounded search.
    pub fn subterm_universe(&self) -> BTreeSet<Term> {
        let mut out = Vec::new();
        for t in &self.known {
            t.collect_subterms(&mut out);
        }
        out.into_iter().collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::term::Kind;

    #[test]
    fn projection() {
        let k = Knowledge::from_initial([Term::pair(Term::id("a"), Term::nonce("n"))]);
        assert!(k.can_derive(&Term::id("a")));
        assert!(k.can_derive(&Term::nonce("n")));
    }

    #[test]
    fn decryption_needs_key() {
        let ct = Term::senc(Term::data("secret"), Term::key("k"));
        let without = Knowledge::from_initial([ct.clone()]);
        assert!(!without.can_derive(&Term::data("secret")));
        let with = Knowledge::from_initial([ct, Term::key("k")]);
        assert!(with.can_derive(&Term::data("secret")));
    }

    #[test]
    fn late_key_triggers_resaturation() {
        let mut k = Knowledge::from_initial([Term::senc(Term::data("m"), Term::key("k"))]);
        assert!(!k.can_derive(&Term::data("m")));
        k.learn(Term::key("k"));
        assert!(k.can_derive(&Term::data("m")));
    }

    #[test]
    fn nested_decryption() {
        // senc(senc(m, k2), k1) with both keys learnable.
        let inner = Term::senc(Term::data("m"), Term::key("k2"));
        let outer = Term::senc(Term::pair(inner, Term::key("k2")), Term::key("k1"));
        let k = Knowledge::from_initial([outer, Term::key("k1")]);
        assert!(k.can_derive(&Term::data("m")));
    }

    #[test]
    fn signature_reveals_but_cannot_be_forged() {
        let sig = Term::sign(Term::data("report"), Term::key("sk"));
        let k = Knowledge::from_initial([sig]);
        assert!(k.can_derive(&Term::data("report")));
        // Cannot sign a different message without sk.
        assert!(!k.can_derive(&Term::sign(Term::data("forged"), Term::key("sk"))));
    }

    #[test]
    fn forgery_possible_with_leaked_key() {
        let k = Knowledge::from_initial([Term::key("sk"), Term::data("forged")]);
        assert!(k.can_derive(&Term::sign(Term::data("forged"), Term::key("sk"))));
    }

    #[test]
    fn hash_is_one_way() {
        let k = Knowledge::from_initial([Term::hash(Term::data("m"))]);
        assert!(!k.can_derive(&Term::data("m")));
        // But hashing known material is possible.
        let k2 = Knowledge::from_initial([Term::data("m")]);
        assert!(k2.can_derive(&Term::hash(Term::data("m"))));
    }

    #[test]
    fn composition() {
        let k = Knowledge::from_initial([Term::data("a"), Term::key("k")]);
        assert!(k.can_derive(&Term::senc(Term::data("a"), Term::key("k"))));
        assert!(k.can_derive(&Term::pair(Term::data("a"), Term::data("a"))));
        assert!(k.can_derive(&Term::pk(Term::key("k"))));
    }

    #[test]
    fn universe_contains_buried_subterms() {
        let k = Knowledge::from_initial([Term::senc(
            Term::pair(Term::id("deep"), Term::nonce("n")),
            Term::key("k"),
        )]);
        let uni = k.subterm_universe();
        assert!(uni.contains(&Term::id("deep")));
        assert!(uni.iter().any(|t| t.kind() == Kind::Nonce));
    }
}
