//! Value-generation strategies: the random half of real proptest's
//! `Strategy`, without shrinking.

use crate::test_runner::TestRng;
use std::ops::{Range, RangeInclusive};
use std::rc::Rc;

/// A recipe for generating values of `Self::Value`.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Type-erases the strategy (needed by [`crate::prop_oneof!`] and
    /// [`Strategy::prop_recursive`]).
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
        Self::Value: 'static,
    {
        BoxedStrategy(Rc::new(move |rng| self.generate(rng)))
    }

    /// Builds a recursive strategy: `self` generates leaves, and `recurse`
    /// wraps an inner strategy into one more level of structure. The tree
    /// is expanded at most `depth` levels (`desired_size` and
    /// `expected_branch_size` are accepted for API compatibility).
    fn prop_recursive<S, F>(
        self,
        depth: u32,
        _desired_size: u32,
        _expected_branch_size: u32,
        recurse: F,
    ) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
        Self::Value: 'static,
        S: Strategy<Value = Self::Value> + 'static,
        F: Fn(BoxedStrategy<Self::Value>) -> S,
    {
        let leaf = self.boxed();
        let mut strat = leaf.clone();
        for _ in 0..depth {
            strat = Union::new(vec![leaf.clone(), recurse(strat).boxed()]).boxed();
        }
        strat
    }
}

/// A type-erased, cheaply clonable strategy.
pub struct BoxedStrategy<T>(Rc<dyn Fn(&mut TestRng) -> T>);

impl<T> Clone for BoxedStrategy<T> {
    fn clone(&self) -> Self {
        BoxedStrategy(Rc::clone(&self.0))
    }
}

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        (self.0)(rng)
    }
}

/// See [`Strategy::prop_map`].
#[derive(Clone, Debug)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, F, O> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;

    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// A strategy that always yields a clone of the given value.
#[derive(Clone, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Chooses uniformly among several strategies of the same value type.
pub struct Union<T> {
    arms: Vec<BoxedStrategy<T>>,
}

impl<T> Union<T> {
    /// Builds a union over `arms`.
    ///
    /// # Panics
    ///
    /// Panics if `arms` is empty.
    pub fn new(arms: Vec<BoxedStrategy<T>>) -> Self {
        assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
        Union { arms }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        let pick = (rng.next_u64() % self.arms.len() as u64) as usize;
        self.arms[pick].generate(rng)
    }
}

/// A strategy backed by a plain generation function.
pub struct FnStrategy<T>(fn(&mut TestRng) -> T);

impl<T> FnStrategy<T> {
    /// Wraps a generation function.
    pub fn new(f: fn(&mut TestRng) -> T) -> Self {
        FnStrategy(f)
    }
}

impl<T> Strategy for FnStrategy<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        (self.0)(rng)
    }
}

/// Types with a canonical strategy, used by [`any`].
pub trait Arbitrary: Sized {
    /// The canonical strategy for this type.
    type Strategy: Strategy<Value = Self>;

    /// Returns the canonical strategy.
    fn arbitrary() -> Self::Strategy;
}

/// The canonical strategy for `T` (uniform over the whole domain for
/// integers, independent elements for arrays).
pub fn any<T: Arbitrary>() -> T::Strategy {
    T::arbitrary()
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            type Strategy = FnStrategy<$t>;

            fn arbitrary() -> Self::Strategy {
                FnStrategy::new(|rng| rng.next_u64() as $t)
            }
        }
    )*};
}

impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    type Strategy = FnStrategy<bool>;

    fn arbitrary() -> Self::Strategy {
        FnStrategy::new(|rng| rng.next_u64() & 1 == 1)
    }
}

impl<T: Arbitrary + std::fmt::Debug, const N: usize> Arbitrary for [T; N] {
    type Strategy = ArrayStrategy<T, N>;

    fn arbitrary() -> Self::Strategy {
        ArrayStrategy(T::arbitrary())
    }
}

/// Canonical strategy for fixed-size arrays of [`Arbitrary`] elements.
pub struct ArrayStrategy<T: Arbitrary, const N: usize>(T::Strategy);

impl<T: Arbitrary + std::fmt::Debug, const N: usize> Strategy for ArrayStrategy<T, N> {
    type Value = [T; N];

    fn generate(&self, rng: &mut TestRng) -> [T; N] {
        std::array::from_fn(|_| self.0.generate(rng))
    }
}

/// String strategies are written as regex literals in real proptest
/// (`reason in ".*"`). The shim supports the universal patterns `.*` and
/// `.+` — random strings over printable ASCII plus a few multi-byte
/// characters — and rejects anything fancier loudly rather than
/// generating from the wrong language.
impl Strategy for &str {
    type Value = String;

    fn generate(&self, rng: &mut TestRng) -> String {
        const POOL: &[char] = &[
            'a', 'b', 'z', 'A', 'Z', '0', '9', ' ', '-', '_', '.', ',', ':', '/', '!', '?', '"',
            '\\', '\n', '\t', '\0', 'é', 'λ', '中', '🦀',
        ];
        let min_len = match *self {
            ".*" => 0,
            ".+" => 1,
            other => panic!("proptest shim: unsupported string pattern {other:?}"),
        };
        let len = min_len + (rng.next_u64() % 64) as usize;
        (0..len)
            .map(|_| POOL[(rng.next_u64() % POOL.len() as u64) as usize])
            .collect()
    }
}

macro_rules! impl_strategy_for_ranges {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end - self.start) as u64;
                self.start + (rng.next_u64() % span) as $t
            }
        }

        impl Strategy for RangeInclusive<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi - lo) as u64;
                if span == u64::MAX {
                    return lo + rng.next_u64() as $t;
                }
                lo + (rng.next_u64() % (span + 1)) as $t
            }
        }
    )*};
}

impl_strategy_for_ranges!(u8, u16, u32, u64, usize);

macro_rules! impl_strategy_for_tuples {
    ($(($($s:ident),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);

            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($s,)+) = self;
                ($($s.generate(rng),)+)
            }
        }
    )*};
}

impl_strategy_for_tuples! {
    (A)
    (A, B)
    (A, B, C)
    (A, B, C, D)
    (A, B, C, D, E)
    (A, B, C, D, E, F)
    (A, B, C, D, E, F, G)
    (A, B, C, D, E, F, G, H)
}
