//! The run loop's configuration and RNG.

/// Per-test configuration (the `ProptestConfig` of real proptest).
#[derive(Clone, Copy, Debug)]
pub struct Config {
    /// Number of accepted cases to run per property.
    pub cases: u32,
}

impl Config {
    /// A config running `cases` cases.
    pub fn with_cases(cases: u32) -> Self {
        Config { cases }
    }
}

impl Default for Config {
    fn default() -> Self {
        let cases = std::env::var("PROPTEST_CASES")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(64);
        Config { cases }
    }
}

/// Marker returned by `prop_assume!` when a case is discarded.
#[derive(Clone, Copy, Debug)]
pub struct Rejected;

/// Derives the RNG seed for a test: `PROPTEST_SEED` if set, otherwise a
/// hash of the test's name (stable across runs and machines).
pub fn seed_for(test_name: &str) -> u64 {
    if let Some(seed) = std::env::var("PROPTEST_SEED")
        .ok()
        .and_then(|v| v.parse().ok())
    {
        return seed;
    }
    // FNV-1a over the test name.
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for b in test_name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x1000_0000_01b3);
    }
    h
}

/// The deterministic generator driving value generation (splitmix64).
#[derive(Clone, Debug)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Creates a generator from a seed.
    pub fn new(seed: u64) -> Self {
        TestRng {
            state: seed ^ 0x9e37_79b9_7f4a_7c15,
        }
    }

    /// Returns the next pseudorandom `u64`.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seeds_differ_by_name_and_are_stable() {
        assert_eq!(seed_for("alpha"), seed_for("alpha"));
        assert_ne!(seed_for("alpha"), seed_for("beta"));
    }

    #[test]
    fn rng_is_deterministic() {
        let mut a = TestRng::new(1);
        let mut b = TestRng::new(1);
        assert_eq!(a.next_u64(), b.next_u64());
    }
}
