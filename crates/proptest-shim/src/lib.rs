//! Offline stand-in for the subset of the `proptest` crate this
//! workspace uses. The build environment has no registry access, so the
//! workspace vendors a small random-testing engine with the same surface
//! syntax: the [`proptest!`] macro, `any::<T>()`, range and tuple
//! strategies, `prop_map` / `prop_recursive` combinators,
//! [`collection::vec`], [`sample::Index`], `prop_oneof!`, `Just`, and the
//! `prop_assert*` / `prop_assume!` macros.
//!
//! Differences from real proptest, by design:
//!
//! - **No shrinking.** A failing case reports its case number and the
//!   deterministic per-test seed instead of a minimized input.
//! - **Deterministic by default.** Each test function derives its RNG
//!   seed from its own name, so runs are reproducible; set
//!   `PROPTEST_SEED` to explore a different universe.
//! - Default case count is 64 (raise with `PROPTEST_CASES` or
//!   `ProptestConfig::with_cases`).

pub mod strategy;

pub mod test_runner;

pub use strategy::Strategy;

/// Strategies for collections.
pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::ops::{Range, RangeInclusive};

    /// A size specification for [`vec`]: an exact length or a range.
    #[derive(Clone, Copy, Debug)]
    pub struct SizeRange {
        lo: usize,
        hi_inclusive: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange {
                lo: n,
                hi_inclusive: n,
            }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            SizeRange {
                lo: r.start,
                hi_inclusive: r.end - 1,
            }
        }
    }

    impl From<RangeInclusive<usize>> for SizeRange {
        fn from(r: RangeInclusive<usize>) -> Self {
            assert!(r.start() <= r.end(), "empty size range");
            SizeRange {
                lo: *r.start(),
                hi_inclusive: *r.end(),
            }
        }
    }

    /// Strategy for `Vec<T>` with element strategy `element` and a length
    /// drawn from `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    /// See [`vec`].
    #[derive(Clone, Debug)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.hi_inclusive - self.size.lo) as u64;
            let len = self.size.lo + (rng.next_u64() % (span + 1)) as usize;
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Strategies that sample from existing data.
pub mod sample {
    use crate::strategy::{Arbitrary, FnStrategy};

    /// An abstract index into a not-yet-known collection length.
    #[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
    pub struct Index(u64);

    impl Index {
        /// Resolves against a concrete collection length.
        ///
        /// # Panics
        ///
        /// Panics if `len` is zero.
        pub fn index(&self, len: usize) -> usize {
            assert!(len > 0, "cannot index an empty collection");
            (self.0 % len as u64) as usize
        }
    }

    impl Arbitrary for Index {
        type Strategy = FnStrategy<Index>;

        fn arbitrary() -> Self::Strategy {
            FnStrategy::new(|rng| Index(rng.next_u64()))
        }
    }
}

/// The commonly used names, mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate::strategy::{any, Just, Strategy};
    pub use crate::test_runner::Config as ProptestConfig;
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
    };
}

/// Builds a union strategy choosing uniformly among the listed arms.
#[macro_export]
macro_rules! prop_oneof {
    ($($arm:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($arm)),+
        ])
    };
}

/// Asserts inside a proptest case.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !$cond {
            panic!("prop_assert failed: {}", stringify!($cond));
        }
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            panic!($($fmt)*);
        }
    };
}

/// Asserts equality inside a proptest case.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        if !(*l == *r) {
            panic!(
                "prop_assert_eq failed: {} != {}\n  left: {:?}\n right: {:?}",
                stringify!($left),
                stringify!($right),
                l,
                r
            );
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (l, r) = (&$left, &$right);
        if !(*l == *r) {
            panic!($($fmt)*);
        }
    }};
}

/// Asserts inequality inside a proptest case.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        if *l == *r {
            panic!(
                "prop_assert_ne failed: {} == {}\n  both: {:?}",
                stringify!($left),
                stringify!($right),
                l
            );
        }
    }};
}

/// Discards the current case (counts as a rejection, not a failure).
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::Rejected);
        }
    };
}

/// Defines property tests. Mirrors `proptest::proptest!` syntax:
///
/// ```ignore
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(16))]
///     #[test]
///     fn my_prop(a in 0u64..10, b in any::<u8>()) { ... }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_body! { $config; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_body! { $crate::test_runner::Config::default(); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_body {
    ($config:expr; $(
        $(#[$meta:meta])*
        fn $name:ident($($pat:pat in $strat:expr),+ $(,)?) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let config: $crate::test_runner::Config = $config;
            let seed = $crate::test_runner::seed_for(stringify!($name));
            let mut rng = $crate::test_runner::TestRng::new(seed);
            let strat = ($($strat,)+);
            let mut accepted = 0u32;
            let mut rejected = 0u32;
            let mut case = 0u32;
            while accepted < config.cases {
                let ($($pat,)+) = $crate::strategy::Strategy::generate(&strat, &mut rng);
                let outcome = ::std::panic::catch_unwind(
                    ::std::panic::AssertUnwindSafe(
                        move || -> ::std::result::Result<(), $crate::test_runner::Rejected> {
                            $body
                            ::std::result::Result::Ok(())
                        },
                    ),
                );
                match outcome {
                    Ok(Ok(())) => accepted += 1,
                    Ok(Err($crate::test_runner::Rejected)) => {
                        rejected += 1;
                        assert!(
                            rejected <= config.cases.saturating_mul(16).max(1024),
                            "proptest {}: too many rejected cases ({rejected})",
                            stringify!($name),
                        );
                    }
                    Err(payload) => {
                        eprintln!(
                            "proptest {} failed at case {case} (seed {seed:#x}); \
                             set PROPTEST_SEED={seed} to focus this universe",
                            stringify!($name),
                        );
                        ::std::panic::resume_unwind(payload);
                    }
                }
                case += 1;
            }
        }
    )*};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #[test]
        fn ranges_stay_in_bounds(a in 3u64..17, b in 1u8..=4) {
            prop_assert!((3..17).contains(&a));
            prop_assert!((1..=4).contains(&b));
        }

        #[test]
        fn assume_rejects_without_failing(v in 0u32..10) {
            prop_assume!(v != 3);
            prop_assert_ne!(v, 3);
        }

        #[test]
        fn vec_lengths_respect_size(v in crate::collection::vec(any::<u8>(), 2..5)) {
            prop_assert!((2..5).contains(&v.len()));
        }

        #[test]
        fn oneof_and_just_cover_arms(v in prop_oneof![Just(1u8), Just(2u8)]) {
            prop_assert!(v == 1 || v == 2);
        }

        #[test]
        fn index_resolves(idx in any::<crate::sample::Index>(), v in crate::collection::vec(any::<u8>(), 1..9)) {
            prop_assert!(idx.index(v.len()) < v.len());
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(5))]
        #[test]
        fn config_is_honored(_x in any::<u64>()) {
            // Runs exactly five cases; nothing to assert beyond arrival.
        }
    }

    #[test]
    fn recursive_strategies_terminate() {
        use crate::strategy::Strategy;
        #[derive(Clone, Debug)]
        enum Tree {
            Leaf(#[allow(dead_code)] u8),
            Node(Box<Tree>, Box<Tree>),
        }
        fn depth(t: &Tree) -> u32 {
            match t {
                Tree::Leaf(_) => 0,
                Tree::Node(a, b) => 1 + depth(a).max(depth(b)),
            }
        }
        let strat = (0u8..16)
            .prop_map(Tree::Leaf)
            .prop_recursive(3, 24, 2, |inner| {
                (inner.clone(), inner).prop_map(|(a, b)| Tree::Node(Box::new(a), Box::new(b)))
            });
        let mut rng = crate::test_runner::TestRng::new(42);
        let mut saw_node = false;
        for _ in 0..200 {
            let t = strat.generate(&mut rng);
            assert!(depth(&t) <= 3);
            saw_node |= matches!(t, Tree::Node(..));
        }
        assert!(saw_node, "recursion should produce at least one node");
    }
}
