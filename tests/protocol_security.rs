//! Integration tests of the protocol's security against live network
//! adversaries (Section 3.3's Dolev-Yao attacker, here actually running
//! against the real implementation rather than the symbolic model).

use cloudmonatt::core::{CloudBuilder, CloudError, Flavor, Image, SecurityProperty, VmRequest};
use cloudmonatt::net::sim::{Eavesdropper, Intercept, NetworkAttacker, Replayer, Tamperer};

fn cloud_with_vm() -> (cloudmonatt::core::Cloud, cloudmonatt::core::Vid) {
    let mut cloud = CloudBuilder::new().servers(2).seed(300).build();
    let vid = cloud
        .request_vm(
            VmRequest::new(Flavor::Small, Image::Cirros)
                .require(SecurityProperty::RuntimeIntegrity),
        )
        .expect("launch");
    (cloud, vid)
}

#[test]
fn tampering_any_hop_is_detected() {
    for target in ["controller", "attserver", "server", "customer"] {
        let (mut cloud, vid) = cloud_with_vm();
        cloud
            .network_mut()
            .set_attacker(Box::new(Tamperer::new(target)));
        let result = cloud.runtime_attest_current(vid, SecurityProperty::RuntimeIntegrity);
        assert!(
            matches!(result, Err(CloudError::ProtocolFailure { .. })),
            "tampering toward {target} went undetected: {result:?}"
        );
    }
}

#[test]
fn replay_is_detected() {
    let (mut cloud, vid) = cloud_with_vm();
    // Let one clean attestation through so the replayer has material.
    cloud
        .runtime_attest_current(vid, SecurityProperty::RuntimeIntegrity)
        .unwrap();
    cloud
        .network_mut()
        .set_attacker(Box::new(Replayer::new("attserver", 0)));
    let result = cloud.runtime_attest_current(vid, SecurityProperty::RuntimeIntegrity);
    assert!(
        matches!(result, Err(CloudError::ProtocolFailure { .. })),
        "replayed messages should be rejected: {result:?}"
    );
}

#[test]
fn single_drop_is_absorbed_by_retransmission() {
    struct DropOnce {
        dropped: bool,
    }
    impl NetworkAttacker for DropOnce {
        fn intercept(&mut self, _: &str, _: &str, _: &[u8]) -> Intercept {
            if self.dropped {
                Intercept::Pass
            } else {
                self.dropped = true;
                Intercept::Drop
            }
        }
    }
    let (mut cloud, vid) = cloud_with_vm();
    cloud
        .network_mut()
        .set_attacker(Box::new(DropOnce { dropped: false }));
    // One lost record costs a retry, not the attestation.
    let report = cloud
        .runtime_attest_current(vid, SecurityProperty::RuntimeIntegrity)
        .unwrap();
    assert!(report.healthy());
    let stats = cloud.protocol_stats();
    assert_eq!(stats.drops_seen, 1);
    assert_eq!(stats.retries, 1);
}

#[test]
fn persistent_loss_reports_unreachable_and_recovery_works() {
    struct DropAll;
    impl NetworkAttacker for DropAll {
        fn intercept(&mut self, _: &str, _: &str, _: &[u8]) -> Intercept {
            Intercept::Drop
        }
    }
    let (mut cloud, vid) = cloud_with_vm();
    cloud.network_mut().set_attacker(Box::new(DropAll));
    let result = cloud.runtime_attest_current(vid, SecurityProperty::RuntimeIntegrity);
    let Err(CloudError::Unreachable { attempts, .. }) = result else {
        panic!("expected Unreachable, got {result:?}");
    };
    assert_eq!(attempts, cloud.retry_policy().max_attempts);
    // The channel tolerates the gap: once the network heals, the next
    // attestation succeeds.
    cloud.network_mut().clear_attacker();
    let report = cloud
        .runtime_attest_current(vid, SecurityProperty::RuntimeIntegrity)
        .unwrap();
    assert!(report.healthy());
}

#[test]
fn eavesdropper_sees_no_plaintext() {
    let (mut cloud, vid) = cloud_with_vm();
    cloud
        .network_mut()
        .set_attacker(Box::new(Eavesdropper::default()));
    cloud
        .runtime_attest_current(vid, SecurityProperty::RuntimeIntegrity)
        .unwrap();
    // Inspect everything the attacker captured: no protocol keyword may
    // appear in the ciphertext.
    let log = cloud.network_mut().log().to_vec();
    assert!(log.len() >= 6, "expected all six protocol messages");
    for needle in [
        b"init".as_slice(),
        b"sshd".as_slice(),
        b"runtime".as_slice(),
    ] {
        for record in &log {
            let found = record.sent.windows(needle.len()).any(|w| w == needle);
            assert!(
                !found,
                "plaintext {:?} leaked in a network record",
                String::from_utf8_lossy(needle)
            );
        }
    }
}

#[test]
fn symbolic_model_agrees_with_implementation() {
    // The symbolic verifier proves the full protocol secure; the live
    // adversaries above fail against the implementation. Cross-check the
    // verifier's weakened variants find attacks (i.e. the verifier is
    // not vacuously passing).
    use cloudmonatt::verifier::cloudmonatt::{verify_cloudmonatt, ModelConfig};
    assert!(verify_cloudmonatt(&ModelConfig::full()).verified());
    let weakened = ModelConfig {
        sign_quotes: false,
        leak_kz: true,
        ..ModelConfig::full()
    };
    assert!(!verify_cloudmonatt(&weakened).verified());
}
