//! Property-based integration tests over cross-crate invariants.

use cloudmonatt::core::{CloudBuilder, Flavor, Image, SecurityProperty, VmRequest, WorkloadSpec};
use cloudmonatt::crypto::drbg::Drbg;
use cloudmonatt::tpm::TrustModule;
use proptest::prelude::*;

fn arb_flavor() -> impl Strategy<Value = Flavor> {
    prop_oneof![
        Just(Flavor::Small),
        Just(Flavor::Medium),
        Just(Flavor::Large)
    ]
}

fn arb_image() -> impl Strategy<Value = Image> {
    prop_oneof![
        Just(Image::Cirros),
        Just(Image::Fedora),
        Just(Image::Ubuntu)
    ]
}

fn arb_property() -> impl Strategy<Value = SecurityProperty> {
    prop_oneof![
        Just(SecurityProperty::StartupIntegrity),
        Just(SecurityProperty::RuntimeIntegrity),
        Just(SecurityProperty::CovertChannelFreedom),
        (1u8..=100).prop_map(|p| SecurityProperty::CpuAvailability { min_share_pct: p }),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Any clean launch with any property set attests healthy for its
    /// boot-time properties and never errors unexpectedly.
    #[test]
    fn clean_launches_always_attest_healthy(
        flavor in arb_flavor(),
        image in arb_image(),
        property in arb_property(),
        seed in 0u64..1000,
    ) {
        // Availability thresholds above what an idle workload earns make
        // no sense for this invariant; use a busy workload so the VM uses
        // its full entitlement.
        let mut cloud = CloudBuilder::new().servers(2).seed(seed).build();
        let vid = cloud.request_vm(
            VmRequest::new(flavor, image)
                .require(property)
                .workload(WorkloadSpec::Busy),
        ).expect("clean launches always succeed");
        let report = cloud.runtime_attest_current(vid, property).expect("attestation runs");
        prop_assert!(report.healthy(), "{property}: {:?}", report.status);
    }

    /// Tampered images are rejected regardless of configuration.
    #[test]
    fn tampered_images_always_rejected(
        flavor in arb_flavor(),
        image in arb_image(),
        seed in 0u64..1000,
    ) {
        let mut cloud = CloudBuilder::new().servers(2).seed(seed).build();
        let result = cloud.request_vm(
            VmRequest::new(flavor, image)
                .require(SecurityProperty::StartupIntegrity)
                .with_tampered_image(),
        );
        prop_assert!(result.is_err());
    }

    /// Quotes from one trust module never verify under another module's
    /// session keys — attestation responses cannot be cross-spliced.
    #[test]
    fn quotes_are_not_transferable(seed_a in 0u64..500, seed_b in 500u64..1000) {
        let mut tm_a = TrustModule::provision(Drbg::from_seed(seed_a));
        let mut tm_b = TrustModule::provision(Drbg::from_seed(seed_b));
        let session_a = tm_a.begin_attestation();
        let session_b = tm_b.begin_attestation();
        let quote = session_a.quote(&[b"fields"]);
        prop_assert!(quote.verify(&session_a.attestation_key(), &[b"fields"]).is_ok());
        prop_assert!(quote.verify(&session_b.attestation_key(), &[b"fields"]).is_err());
    }
}
