//! Integration tests of the fault-tolerance layer: benign message loss,
//! duplication and corruption injected under the Figure-3 protocol, with
//! per-hop retransmission recovering what the network loses.

use cloudmonatt::core::{
    CloudBuilder, CloudError, Flavor, HealthStatus, Image, ResponseAction, RetryPolicy,
    SecurityProperty, VmRequest,
};
use cloudmonatt::net::sim::FaultModel;

fn lossy_cloud(seed: u64) -> (cloudmonatt::core::Cloud, cloudmonatt::core::Vid) {
    let mut cloud = CloudBuilder::new().servers(3).seed(seed).build();
    let vid = cloud
        .request_vm(
            VmRequest::new(Flavor::Small, Image::Cirros)
                .require(SecurityProperty::RuntimeIntegrity),
        )
        .expect("launch on a clean network");
    (cloud, vid)
}

#[test]
fn ten_percent_loss_converges_with_retries() {
    let (mut cloud, vid) = lossy_cloud(500);
    cloud
        .network_mut()
        .set_fault_model(FaultModel::new(1234).drop_prob(0.1));
    cloud.reset_protocol_stats();
    for round in 0..25 {
        let report = cloud
            .runtime_attest_current(vid, SecurityProperty::RuntimeIntegrity)
            .unwrap_or_else(|e| panic!("round {round}: {e}"));
        assert!(report.healthy());
    }
    let stats = cloud.protocol_stats();
    assert!(stats.retries > 0, "10% loss must trigger retransmits");
    assert_eq!(stats.drops_seen, stats.timeouts);
    let faults = cloud.network_mut().fault_stats().unwrap();
    assert!(faults.dropped > 0);
}

#[test]
fn seeded_loss_run_is_deterministic() {
    let run = |fault_seed: u64| {
        let (mut cloud, vid) = lossy_cloud(501);
        cloud.network_mut().set_fault_model(
            FaultModel::new(fault_seed)
                .drop_prob(0.1)
                .duplicate_prob(0.05)
                .corrupt_prob(0.02),
        );
        cloud.reset_protocol_stats();
        let mut latencies = Vec::new();
        for _ in 0..10 {
            if let Ok(r) = cloud.runtime_attest_current(vid, SecurityProperty::RuntimeIntegrity) {
                latencies.push(r.elapsed_us);
            }
        }
        (cloud.protocol_stats(), latencies)
    };
    // Same seed, same fault pattern, same stats and latencies — the
    // whole lossy simulation replays bit-identically.
    assert_eq!(run(77), run(77));
    // A different seed scrambles the fault pattern.
    assert_ne!(run(77), run(78));
}

#[test]
fn mixed_faults_with_duplicates_do_not_desync_channels() {
    let (mut cloud, vid) = lossy_cloud(502);
    cloud.network_mut().set_fault_model(
        FaultModel::new(9)
            .duplicate_prob(0.5)
            .delay(0.3, 40_000)
            .drop_prob(0.05),
    );
    cloud.reset_protocol_stats();
    for _ in 0..15 {
        let report = cloud
            .runtime_attest_current(vid, SecurityProperty::RuntimeIntegrity)
            .expect("duplicates and delays are benign");
        assert!(report.healthy());
    }
    let stats = cloud.protocol_stats();
    assert!(stats.duplicates_rejected > 0, "{stats:?}");
    assert_eq!(stats.auth_failures, 0, "{stats:?}");
}

#[test]
fn corruption_is_rejected_then_retried() {
    let (mut cloud, vid) = lossy_cloud(503);
    cloud
        .network_mut()
        .set_fault_model(FaultModel::new(31).corrupt_prob(0.1));
    cloud.reset_protocol_stats();
    for _ in 0..20 {
        let report = cloud
            .runtime_attest_current(vid, SecurityProperty::RuntimeIntegrity)
            .expect("retries absorb sporadic corruption");
        assert!(report.healthy());
    }
    let stats = cloud.protocol_stats();
    assert!(stats.auth_failures > 0, "{stats:?}");
    assert_eq!(stats.retries, stats.timeouts);
}

#[test]
fn total_blackout_escalates_and_auto_migrates() {
    let mut cloud = CloudBuilder::new()
        .servers(3)
        .seed(504)
        .escalation_threshold(2)
        .auto_response(true)
        .build();
    let vid = cloud
        .request_vm(
            VmRequest::new(Flavor::Small, Image::Cirros)
                .require(SecurityProperty::RuntimeIntegrity),
        )
        .unwrap();
    let home = cloud.server_of(vid).unwrap();
    let sub = cloud
        .runtime_attest_periodic(vid, SecurityProperty::RuntimeIntegrity, 4_000_000)
        .unwrap();
    // Silence the network completely.
    cloud
        .network_mut()
        .set_fault_model(FaultModel::new(1).drop_prob(1.0));
    cloud.run(13_000_000);
    let health = cloud.subscription_health(sub).unwrap();
    assert!(health.missed >= 2, "{health:?}");
    assert!(health.escalations >= 1, "{health:?}");
    // The Response Module's unreachable policy migrated the VM — silence
    // is not evidence of compromise, so the VM is moved, not killed.
    assert_ne!(cloud.server_of(vid), Some(home));
    let reports = cloud.stop_attest_periodic(sub).unwrap();
    assert!(reports
        .iter()
        .any(|r| matches!(r.status, HealthStatus::Unreachable { missed } if missed >= 2)));
}

#[test]
fn retry_policy_budget_is_respected() {
    let (mut cloud, vid) = lossy_cloud(505);
    cloud
        .network_mut()
        .set_fault_model(FaultModel::new(2).drop_prob(1.0));
    cloud.reset_protocol_stats();
    let err = cloud
        .runtime_attest_current(vid, SecurityProperty::RuntimeIntegrity)
        .unwrap_err();
    let CloudError::Unreachable { attempts, .. } = err else {
        panic!("expected Unreachable, got {err:?}");
    };
    let policy = cloud.retry_policy();
    assert_eq!(attempts, policy.max_attempts);
    let stats = cloud.protocol_stats();
    // The first hop burned the whole budget, then the protocol aborted.
    assert_eq!(stats.messages_sent, u64::from(policy.max_attempts));
    assert_eq!(stats.retries, u64::from(policy.max_attempts - 1));
}

#[test]
fn fail_fast_policy_restores_old_behaviour() {
    let mut cloud = CloudBuilder::new()
        .servers(3)
        .seed(506)
        .retry(RetryPolicy::disabled())
        .build();
    let vid = cloud
        .request_vm(
            VmRequest::new(Flavor::Small, Image::Cirros)
                .require(SecurityProperty::RuntimeIntegrity),
        )
        .unwrap();
    cloud
        .network_mut()
        .set_fault_model(FaultModel::new(3).drop_prob(1.0));
    let err = cloud
        .runtime_attest_current(vid, SecurityProperty::RuntimeIntegrity)
        .unwrap_err();
    assert!(matches!(err, CloudError::Unreachable { attempts: 1, .. }));
    assert_eq!(cloud.protocol_stats().retries, 0);
}

#[test]
fn unreachable_response_policy_is_migration() {
    use cloudmonatt::core::CloudController;
    use cloudmonatt::crypto::drbg::Drbg;
    let mut rng = Drbg::from_seed(507);
    let controller = CloudController::new(&mut rng);
    // Silence is not evidence of compromise: unknown-health VMs are
    // moved to a monitorable server, never terminated outright.
    assert_eq!(
        controller.choose_unreachable_response(),
        ResponseAction::Migration
    );
}
