//! Integration tests of node-level chaos: crash/recovery fault
//! injection, session deadlines, and overload shedding — the
//! entity-level failure layer on top of the message-level faults in
//! `fault_tolerance.rs`.

use cloudmonatt::core::{
    CloudBuilder, CloudError, Flavor, Image, NodeId, OutageModel, SecurityProperty, VmRequest,
};
use cloudmonatt::net::sim::FaultModel;

fn chaos_cloud(seed: u64) -> (cloudmonatt::core::Cloud, cloudmonatt::core::Vid) {
    let mut cloud = CloudBuilder::new().servers(3).seed(seed).build();
    let vid = cloud
        .request_vm(
            VmRequest::new(Flavor::Small, Image::Cirros)
                .require(SecurityProperty::RuntimeIntegrity),
        )
        .expect("launch on a healthy fleet");
    (cloud, vid)
}

#[test]
fn server_crash_evacuates_vms_to_live_servers() {
    let (mut cloud, vid) = chaos_cloud(900);
    let home = cloud.server_of(vid).unwrap();
    cloud.crash_node(NodeId::Server(home));
    // The Response Module re-ran Policy Validation and moved the VM.
    let new_home = cloud.server_of(vid).unwrap();
    assert_ne!(new_home, home);
    assert!(!cloud.node_is_down(NodeId::Server(new_home)));
    assert_eq!(cloud.outage_stats().evacuations, 1);
    assert_eq!(cloud.outage_stats().crashes, 1);
    // The evacuated VM is attestable at its new home immediately.
    let report = cloud
        .runtime_attest_current(vid, SecurityProperty::RuntimeIntegrity)
        .expect("evacuated VM attests from its new server");
    assert!(report.healthy());
}

#[test]
fn crashed_attestation_server_fails_sessions_fast() {
    let (mut cloud, vid) = chaos_cloud(901);
    cloud.reset_protocol_stats();
    cloud.crash_node(NodeId::AttestationServer);
    let err = cloud
        .runtime_attest_current(vid, SecurityProperty::RuntimeIntegrity)
        .unwrap_err();
    assert!(
        matches!(
            err,
            CloudError::NodeDown {
                node: NodeId::AttestationServer
            }
        ),
        "expected NodeDown, got {err:?}"
    );
    let stats = cloud.protocol_stats();
    // Fail-fast: no retransmission ladder was burned against the dead
    // node — the session aborted the moment its hop needed it.
    assert_eq!(stats.retries, 0, "{stats:?}");
    assert_eq!(stats.sessions_failed, 1, "{stats:?}");
    assert_eq!(cloud.outage_stats().node_down_failures, 1);
}

#[test]
fn recovery_rehandshakes_and_sessions_resume() {
    let (mut cloud, vid) = chaos_cloud(902);
    cloud.crash_node(NodeId::AttestationServer);
    assert!(cloud
        .runtime_attest_current(vid, SecurityProperty::RuntimeIntegrity)
        .is_err());
    cloud.recover_node(NodeId::AttestationServer);
    assert!(!cloud.node_is_down(NodeId::AttestationServer));
    // Recovery marks every channel that terminates at the node stale;
    // the re-handshakes themselves are deferred to each link's first
    // use, so a mass recovery never triggers a synchronized burst.
    let stats = cloud.outage_stats();
    assert_eq!(stats.recoveries, 1);
    assert_eq!(stats.rehandshakes, 0, "{stats:?}");
    assert!(stats.deferred_rekeys >= 2, "{stats:?}"); // ctrl<->AS + AS<->servers
    cloud.reset_protocol_stats();
    let report = cloud
        .runtime_attest_current(vid, SecurityProperty::RuntimeIntegrity)
        .expect("attestation works again after recovery");
    assert!(report.healthy());
    // The links the attestation crossed were re-keyed lazily, exactly
    // at first use — stale pre-crash session keys never resumed.
    let stats = cloud.outage_stats();
    assert!(stats.rehandshakes >= 2, "{stats:?}"); // ctrl<->AS + AS<->server hop
                                                   // Fresh keys authenticate cleanly end to end: a stale key anywhere
                                                   // would surface as an auth failure and a retry storm.
    assert_eq!(cloud.protocol_stats().auth_failures, 0);
}

#[test]
fn crash_and_recovery_are_idempotent() {
    let (mut cloud, _vid) = chaos_cloud(903);
    cloud.crash_node(NodeId::Server(cloudmonatt::core::ServerId(0)));
    cloud.crash_node(NodeId::Server(cloudmonatt::core::ServerId(0)));
    assert_eq!(cloud.outage_stats().crashes, 1);
    cloud.recover_node(NodeId::Server(cloudmonatt::core::ServerId(0)));
    cloud.recover_node(NodeId::Server(cloudmonatt::core::ServerId(0)));
    assert_eq!(cloud.outage_stats().recoveries, 1);
    assert!(cloud.down_nodes().is_empty());
}

#[test]
fn scripted_outage_during_run_heals_and_reconciles() {
    let mut cloud = CloudBuilder::new().servers(3).seed(904).build();
    let vid = cloud
        .request_vm(
            VmRequest::new(Flavor::Small, Image::Cirros)
                .require(SecurityProperty::RuntimeIntegrity),
        )
        .unwrap();
    let home = cloud.server_of(vid).unwrap();
    let t0 = cloud.wall_clock_us();
    cloud.set_outage_model(
        OutageModel::new(904)
            .crash_at(t0 + 2_000_000, NodeId::Server(home))
            .recover_at(t0 + 6_000_000, NodeId::Server(home)),
    );
    let sub = cloud
        .runtime_attest_periodic(vid, SecurityProperty::RuntimeIntegrity, 1_000_000)
        .unwrap();
    cloud.run(10_000_000);
    let stats = cloud.outage_stats();
    assert_eq!(stats.crashes, 1, "{stats:?}");
    assert_eq!(stats.recoveries, 1, "{stats:?}");
    assert_eq!(stats.evacuations, 1, "{stats:?}");
    // Liveness: nothing wedged, the VM ended on a live server, and the
    // subscription kept delivering after the evacuation.
    assert_eq!(cloud.sessions_in_flight(), 0);
    assert!(cloud.down_nodes().is_empty());
    let final_home = cloud.server_of(vid).unwrap();
    assert_ne!(final_home, home);
    assert!(!cloud.node_is_down(NodeId::Server(final_home)));
    let health = cloud.subscription_health(sub).unwrap();
    assert!(health.delivered >= 5, "{health:?}");
}

#[test]
fn stochastic_churn_preserves_liveness_invariants() {
    let mut cloud = CloudBuilder::new().servers(4).seed(905).build();
    let mut vids = Vec::new();
    for _ in 0..3 {
        vids.push(
            cloud
                .request_vm(
                    VmRequest::new(Flavor::Small, Image::Cirros)
                        .require(SecurityProperty::RuntimeIntegrity),
                )
                .unwrap(),
        );
    }
    for &vid in &vids {
        cloud
            .runtime_attest_periodic(vid, SecurityProperty::RuntimeIntegrity, 500_000)
            .unwrap();
    }
    // Servers churn with a 4 s MTBF and 1 s MTTR while attestation
    // sessions run every half second.
    cloud.set_outage_model(OutageModel::new(905).mtbf(4_000_000, 1_000_000));
    cloud.run(30_000_000);
    let stats = cloud.protocol_stats();
    let outages = cloud.outage_stats();
    assert!(outages.crashes > 0, "{outages:?}");
    // Every started session terminated and the counters reconcile
    // exactly.
    assert_eq!(cloud.sessions_in_flight(), 0);
    assert_eq!(
        stats.sessions_started,
        stats.sessions_completed + stats.sessions_failed,
        "{stats:?}"
    );
    // Every crash is matched by a recovery or the node is still down.
    assert_eq!(
        outages.crashes,
        outages.recoveries + cloud.down_nodes().len() as u64,
        "{outages:?}"
    );
    // Every VM that survived ended on a live server.
    for &vid in &vids {
        if let Some(server) = cloud.server_of(vid) {
            if cloud.vm_state(vid) != Some(cloudmonatt::core::VmLifecycle::Terminated) {
                assert!(
                    !cloud.node_is_down(NodeId::Server(server)),
                    "vm {vid:?} left stranded on crashed {server:?}"
                );
            }
        }
    }
    // Determinism: the same seeds replay the same chaos.
    let replay = {
        let mut cloud = CloudBuilder::new().servers(4).seed(905).build();
        let mut vids = Vec::new();
        for _ in 0..3 {
            vids.push(
                cloud
                    .request_vm(
                        VmRequest::new(Flavor::Small, Image::Cirros)
                            .require(SecurityProperty::RuntimeIntegrity),
                    )
                    .unwrap(),
            );
        }
        for &vid in &vids {
            cloud
                .runtime_attest_periodic(vid, SecurityProperty::RuntimeIntegrity, 500_000)
                .unwrap();
        }
        cloud.set_outage_model(OutageModel::new(905).mtbf(4_000_000, 1_000_000));
        cloud.run(30_000_000);
        (cloud.protocol_stats(), cloud.outage_stats())
    };
    assert_eq!((stats, outages), replay);
}

#[test]
fn session_deadline_aborts_as_deadline_exceeded() {
    let mut cloud = CloudBuilder::new().servers(3).seed(906).build();
    let vid = cloud
        .request_vm(
            VmRequest::new(Flavor::Small, Image::Cirros)
                .require(SecurityProperty::RuntimeIntegrity),
        )
        .unwrap();
    // Tighten the budget only after the launch attestation: 5 ms is
    // tighter than even one clean protocol round.
    cloud.set_session_deadline(Some(5_000));
    cloud
        .network_mut()
        .set_fault_model(FaultModel::new(7).drop_prob(1.0));
    cloud.reset_protocol_stats();
    let err = cloud
        .runtime_attest_current(vid, SecurityProperty::RuntimeIntegrity)
        .unwrap_err();
    let CloudError::DeadlineExceeded { budget_us, .. } = err else {
        panic!("expected DeadlineExceeded, got {err:?}");
    };
    assert_eq!(budget_us, 5_000);
    let stats = cloud.protocol_stats();
    assert_eq!(stats.deadlines_exceeded, 1, "{stats:?}");
    // The deadline cut the ladder short: fewer sends than the full
    // retry budget would have burned.
    let policy = cloud.retry_policy();
    assert!(
        stats.messages_sent < u64::from(policy.max_attempts),
        "{stats:?}"
    );
}

#[test]
fn generous_deadline_never_fires_on_a_clean_network() {
    let mut cloud = CloudBuilder::new()
        .servers(3)
        .seed(907)
        .session_deadline(60_000_000)
        .build();
    let vid = cloud
        .request_vm(
            VmRequest::new(Flavor::Small, Image::Cirros)
                .require(SecurityProperty::RuntimeIntegrity),
        )
        .unwrap();
    for _ in 0..5 {
        let report = cloud
            .runtime_attest_current(vid, SecurityProperty::RuntimeIntegrity)
            .expect("a generous deadline is invisible on the clean path");
        assert!(report.healthy());
    }
    assert_eq!(cloud.protocol_stats().deadlines_exceeded, 0);
}

#[test]
fn admission_gate_sheds_under_burst_load_with_hysteresis() {
    let mut cloud = CloudBuilder::new()
        .servers(3)
        .seed(908)
        .admission_control(1, 0)
        .escalation_threshold(2)
        .build();
    let vid = cloud
        .request_vm(
            VmRequest::new(Flavor::Small, Image::Cirros)
                .require(SecurityProperty::RuntimeIntegrity),
        )
        .unwrap();
    // Three subscriptions all fire at the same instant: with a
    // high-water mark of one session, the burst must shed.
    let mut subs = Vec::new();
    for _ in 0..3 {
        subs.push(
            cloud
                .runtime_attest_periodic(vid, SecurityProperty::RuntimeIntegrity, 1_000_000)
                .unwrap(),
        );
    }
    cloud.run(5_500_000);
    let stats = cloud.protocol_stats();
    assert!(stats.sessions_shed > 0, "{stats:?}");
    // Shed sessions never entered the protocol: started/completed/
    // failed reconcile without them.
    assert_eq!(
        stats.sessions_started,
        stats.sessions_completed + stats.sessions_failed,
        "{stats:?}"
    );
    // Hysteresis: once the gate drained below the low-water mark it
    // re-admitted, so samples kept getting through.
    let mut delivered = 0;
    let mut escalations = 0;
    for &sub in &subs {
        let health = cloud.subscription_health(sub).unwrap();
        delivered += health.delivered;
        escalations += health.escalations;
    }
    assert!(delivered > 0);
    // Shedding is the attestation server's own load decision, not
    // evidence the monitored node is unreachable: no escalation fires
    // even with a threshold of two.
    assert_eq!(escalations, 0);
    assert_eq!(cloud.sessions_in_flight(), 0);
}

#[test]
fn delayed_copy_bounces_as_duplicate_and_is_never_double_processed() {
    let (mut cloud, vid) = chaos_cloud(909);
    // Every record is delayed well past the 2 ms loss-detection
    // timeout: the sender retransmits the byte-identical record, the
    // first copy to arrive opens, and every straggler bounces off the
    // receive window as a structural duplicate.
    cloud
        .network_mut()
        .set_fault_model(FaultModel::new(11).delay(1.0, 40_000));
    cloud.reset_protocol_stats();
    for _ in 0..5 {
        let report = cloud
            .runtime_attest_current(vid, SecurityProperty::RuntimeIntegrity)
            .expect("delays are benign however extreme");
        assert!(report.healthy());
    }
    let stats = cloud.protocol_stats();
    assert!(stats.timeouts > 0, "{stats:?}");
    assert!(stats.duplicates_rejected > 0, "{stats:?}");
    // At-most-once processing: every session produced exactly one
    // verdict; late copies were counted, never re-processed.
    assert_eq!(stats.sessions_started, 5, "{stats:?}");
    assert_eq!(stats.sessions_completed, 5, "{stats:?}");
    assert_eq!(stats.auth_failures, 0, "{stats:?}");
    // Nothing was dropped, so every timeout came from a late delivery.
    assert_eq!(stats.drops_seen, 0, "{stats:?}");
}

#[test]
fn subscription_escalates_exactly_at_the_kth_consecutive_failure() {
    let mut cloud = CloudBuilder::new()
        .servers(3)
        .seed(910)
        .escalation_threshold(3)
        .build();
    let vid = cloud
        .request_vm(
            VmRequest::new(Flavor::Small, Image::Cirros)
                .require(SecurityProperty::RuntimeIntegrity),
        )
        .unwrap();
    let sub = cloud
        .runtime_attest_periodic(vid, SecurityProperty::RuntimeIntegrity, 1_000_000)
        .unwrap();
    cloud
        .network_mut()
        .set_fault_model(FaultModel::new(13).drop_prob(1.0));
    // Two misses: one short of the threshold, no escalation yet.
    cloud.run(2_500_000);
    let health = cloud.subscription_health(sub).unwrap();
    assert_eq!(health.missed, 2, "{health:?}");
    assert_eq!(health.consecutive_failures, 2, "{health:?}");
    assert_eq!(health.escalations, 0, "{health:?}");
    // The third consecutive miss trips it, and the streak resets.
    cloud.run(1_000_000);
    let health = cloud.subscription_health(sub).unwrap();
    assert_eq!(health.missed, 3, "{health:?}");
    assert_eq!(health.consecutive_failures, 0, "{health:?}");
    assert_eq!(health.escalations, 1, "{health:?}");
    // Three more misses trip it a second time — the counter is a
    // streak, not a lifetime total.
    cloud.run(3_000_000);
    let health = cloud.subscription_health(sub).unwrap();
    assert_eq!(health.missed, 6, "{health:?}");
    assert_eq!(health.escalations, 2, "{health:?}");
}

#[test]
fn clean_path_is_untouched_without_an_outage_model() {
    // The chaos layer is strictly opt-in: a cloud with no outage
    // model, no deadline and no admission gate draws not a single
    // extra random number — same DRBG probe, same stats, same clock.
    let run = |chaos_knobs: bool| {
        let mut builder = CloudBuilder::new().servers(3).seed(911);
        if chaos_knobs {
            builder = builder
                .session_deadline(60_000_000)
                .admission_control(1024, 512);
        }
        let mut cloud = builder.build();
        let vid = cloud
            .request_vm(
                VmRequest::new(Flavor::Small, Image::Cirros)
                    .require(SecurityProperty::RuntimeIntegrity),
            )
            .unwrap();
        for _ in 0..3 {
            cloud
                .runtime_attest_current(vid, SecurityProperty::RuntimeIntegrity)
                .unwrap();
        }
        (
            cloud.wall_clock_us(),
            cloud.protocol_stats(),
            cloud.drbg_probe(),
        )
    };
    let baseline = run(false);
    // Generous knobs that never fire do not perturb time, stats or the
    // RNG stream.
    assert_eq!(baseline, run(true));
}
