//! Replicated control-plane behaviour: controller failover, AS-replica
//! rerouting, per-replica cache independence, and total-outage
//! fail-fast. Complements the topology unit tests in
//! `core/src/controlplane.rs` (pure ownership rules) and the
//! differential proptest in `controlplane_chaos_differential.rs`
//! (shard-width invariance under scripted churn) by driving a real
//! cloud through the full six-message protocol on non-dormant routes.

use cloudmonatt::core::{CloudBuilder, Flavor, Image, NodeId, SecurityProperty, Vid, VmRequest};

fn controller(instance: u32) -> NodeId {
    if instance == 0 {
        NodeId::Controller
    } else {
        NodeId::ControllerReplica(instance)
    }
}

fn as_replica(replica: u32) -> NodeId {
    if replica == 0 {
        NodeId::AttestationServer
    } else {
        NodeId::AsReplica(replica)
    }
}

fn launch(cloud: &mut cloudmonatt::core::Cloud) -> Vid {
    cloud
        .request_vm(
            VmRequest::new(Flavor::Small, Image::Cirros)
                .require(SecurityProperty::RuntimeIntegrity),
        )
        .expect("launch")
}

#[test]
fn controller_crash_fails_over_and_recovery_reclaims() {
    let mut cloud = CloudBuilder::new()
        .servers(3)
        .seed(1601)
        .control_plane(3, 1)
        .build();
    let vid = launch(&mut cloud);
    let shard = cloud.control_plane().shard_of(vid);
    let home = cloud
        .control_plane()
        .owner_of_shard(shard)
        .expect("healthy plane has an owner");
    assert_eq!(home, shard, "healthy ownership is the identity map");

    cloud.crash_node(controller(home));
    let adopted = cloud
        .control_plane()
        .owner_of_shard(shard)
        .expect("standbys adopt the dead instance's shards");
    assert_ne!(adopted, home);
    assert!(cloud.control_plane().controller_is_live(adopted));

    // Attestation keeps flowing through the standby: messages 1/2/5/6
    // terminate at the adopting instance, and the session is counted
    // as a failover admission.
    let report = cloud
        .runtime_attest_current(vid, SecurityProperty::RuntimeIntegrity)
        .expect("attestation rides the standby");
    assert!(report.elapsed_us > 0);
    let cp = cloud.control_plane_stats();
    assert!(cp.failovers >= 1, "{cp:?}");
    assert!(cp.shards_adopted >= 1, "{cp:?}");
    assert!(cp.failover_sessions >= 1, "{cp:?}");

    cloud.recover_node(controller(home));
    assert_eq!(
        cloud.control_plane().owner_of_shard(shard),
        Some(home),
        "recovered home reclaims its shard"
    );
    assert!(cloud.control_plane_stats().shards_reclaimed >= 1);
    cloud
        .runtime_attest_current(vid, SecurityProperty::RuntimeIntegrity)
        .expect("attestation back on the home instance");
}

#[test]
fn total_controller_outage_fails_fast_until_recovery() {
    let mut cloud = CloudBuilder::new()
        .servers(2)
        .seed(1602)
        .control_plane(2, 1)
        .build();
    let vid = launch(&mut cloud);
    cloud.crash_node(controller(0));
    cloud.crash_node(controller(1));
    let shard = cloud.control_plane().shard_of(vid);
    assert_eq!(cloud.control_plane().owner_of_shard(shard), None);
    // With no live instance, admission routes to the dead home and the
    // session fails fast — a typed error, never a hang.
    let err = cloud
        .runtime_attest_current(vid, SecurityProperty::RuntimeIntegrity)
        .expect_err("no live controller instance");
    assert!(err.to_string().contains("down"), "{err}");
    assert_eq!(cloud.sessions_in_flight(), 0);

    cloud.recover_node(controller(0));
    cloud.recover_node(controller(1));
    cloud
        .runtime_attest_current(vid, SecurityProperty::RuntimeIntegrity)
        .expect("recovered plane serves again");
}

#[test]
fn as_replica_crash_reroutes_and_invalidates_only_its_cache() {
    let mut cloud = CloudBuilder::new()
        .servers(3)
        .seed(1603)
        .control_plane(1, 2)
        .evidence_cache(60_000_000)
        .build();
    // Find one VM preferring each replica (the preference is a stable
    // Vid hash, so a handful of launches covers both).
    let mut on_replica = [None::<Vid>; 2];
    for _ in 0..8 {
        let vid = launch(&mut cloud);
        let pref = cloud.control_plane().preferred_replica(vid) as usize;
        if on_replica[pref].is_none() {
            on_replica[pref] = Some(vid);
        }
        if on_replica.iter().all(Option::is_some) {
            break;
        }
    }
    let (vid0, vid1) = (
        on_replica[0].expect("a VM preferring replica 0"),
        on_replica[1].expect("a VM preferring replica 1"),
    );

    // Warm both replicas' evidence caches independently, then prove
    // the warm hit on each.
    for vid in [vid0, vid1] {
        cloud
            .runtime_attest_current(vid, SecurityProperty::RuntimeIntegrity)
            .expect("warming attestation");
    }
    let hits_before =
        |cloud: &cloudmonatt::core::Cloud, r: u32| cloud.replica_evidence_cache_stats(r).0;
    let (h0, h1) = (hits_before(&cloud, 0), hits_before(&cloud, 1));
    for vid in [vid0, vid1] {
        cloud
            .runtime_attest_current(vid, SecurityProperty::RuntimeIntegrity)
            .expect("cached attestation");
    }
    assert_eq!(hits_before(&cloud, 0), h0 + 1, "replica 0 cache warm");
    assert_eq!(hits_before(&cloud, 1), h1 + 1, "replica 1 cache warm");

    // Crash replica 1: its evidence dies with it, replica 0 keeps its
    // cache, and vid1's sessions reroute to replica 0 — which has no
    // evidence for vid1, so the full protocol runs there.
    cloud.crash_node(as_replica(1));
    let reroutes_before = cloud.control_plane_stats().as_reroutes;
    let (h0, m0) = cloud.replica_evidence_cache_stats(0);
    cloud
        .runtime_attest_current(vid0, SecurityProperty::RuntimeIntegrity)
        .expect("replica 0 unaffected");
    assert_eq!(
        cloud.replica_evidence_cache_stats(0).0,
        h0 + 1,
        "surviving replica kept its evidence"
    );
    cloud
        .runtime_attest_current(vid1, SecurityProperty::RuntimeIntegrity)
        .expect("rerouted to the live replica");
    let cp = cloud.control_plane_stats();
    assert!(cp.as_reroutes > reroutes_before, "{cp:?}");
    assert!(
        cloud.replica_evidence_cache_stats(0).1 > m0,
        "rerouted VM misses on the cold replica and pays the full protocol"
    );

    // After recovery the preferred replica serves vid1 again, but its
    // cache was invalidated by the crash: first attestation misses,
    // the next one hits the re-warmed cache.
    cloud.recover_node(as_replica(1));
    let (h1, m1) = cloud.replica_evidence_cache_stats(1);
    cloud
        .runtime_attest_current(vid1, SecurityProperty::RuntimeIntegrity)
        .expect("back on the recovered replica");
    assert_eq!(
        cloud.replica_evidence_cache_stats(1),
        (h1, m1 + 1),
        "crash invalidated the recovered replica's evidence"
    );
    cloud
        .runtime_attest_current(vid1, SecurityProperty::RuntimeIntegrity)
        .expect("re-warmed");
    assert_eq!(
        cloud.replica_evidence_cache_stats(1),
        (h1 + 1, m1 + 1),
        "cache re-warms independently after recovery"
    );
}
