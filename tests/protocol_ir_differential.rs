//! Differential property test of the attestation-protocol IR.
//!
//! Generates arbitrary *well-formed* protocol programs from the family
//! the compiler accepts — an optional customer prologue, a body that is
//! either a flat measurement, a parallel fan-out of 1–4 branches, or a
//! delegated platform appraisal gated by its verdict, and the
//! certification tail — with freshness/quote claims included or elided
//! at random (they are wire-fixed validations, not behaviour). Each
//! generated program must:
//!
//! 1. compile (`Cloud::register_protocol` accepts it),
//! 2. run **identically** across `ShardedEngine` widths 1, 4 and 7
//!    (same verdict, same virtual latency, same DRBG draw count), and
//! 3. terminate under a 30% message-drop fault model — a `Done` verdict
//!    or a typed error, never a hang (the synchronous pump returning at
//!    all is the liveness proof in a discrete-event engine).

use cloudmonatt::core::{
    AttestationReport, Branch, CloudBuilder, Flavor, Image, MsgKind, NonceSlot, Protocol,
    QuoteKind, SecurityProperty, VmRequest, WorkloadSpec,
};
use cloudmonatt::net::sim::FaultModel;
use proptest::prelude::*;

fn arb_property() -> impl Strategy<Value = SecurityProperty> {
    prop_oneof![
        Just(SecurityProperty::StartupIntegrity),
        Just(SecurityProperty::RuntimeIntegrity),
        Just(SecurityProperty::CovertChannelFreedom),
        Just(SecurityProperty::SchedulerFairness),
    ]
}

fn arb_branch_property() -> impl Strategy<Value = Option<SecurityProperty>> {
    prop_oneof![Just(None), arb_property().prop_map(Some)]
}

fn arb_bool() -> impl Strategy<Value = bool> {
    prop_oneof![Just(false), Just(true)]
}

/// The generated shape of a program body (between the message-2 hop
/// and the message-5 certification tail).
#[derive(Clone, Debug)]
enum Body {
    /// Flat Figure-3 measurement: msg 3, window, msg 4.
    Flat,
    /// Parallel fan-out: each branch is `(property, full)` where `full`
    /// selects a delegated messages-2–5 appraisal over a
    /// measurement-only messages-3–4 branch.
    Par(Vec<(Option<SecurityProperty>, bool)>),
    /// Delegated platform appraisal whose verdict gates a flat
    /// measurement.
    Layered(Option<SecurityProperty>),
}

fn arb_body() -> impl Strategy<Value = Body> {
    prop_oneof![
        Just(Body::Flat),
        proptest::collection::vec((arb_branch_property(), arb_bool()), 1..=4).prop_map(Body::Par),
        arb_branch_property().prop_map(Body::Layered),
    ]
}

/// The measurement core: msg 3 → window → msg 4, with the quote/nonce
/// claims optionally spelled out.
fn measurement(claims: bool, out: &mut Vec<Protocol>) {
    out.push(Protocol::IssueNonce(NonceSlot::N3));
    out.push(Protocol::Hop(MsgKind::Msg3));
    out.push(Protocol::Window);
    out.push(Protocol::Hop(MsgKind::Msg4));
    if claims {
        out.push(Protocol::VerifyQuote(QuoteKind::Q3));
        out.push(Protocol::CheckNonce(NonceSlot::N3));
    }
}

/// A fan-out branch body: measurement-only, or a full delegated
/// messages-2–5 appraisal.
fn branch(property: Option<SecurityProperty>, full: bool, claims: bool) -> Branch {
    let body = if full {
        Protocol::figure3_internal()
    } else {
        let mut steps = Vec::new();
        measurement(claims, &mut steps);
        steps.push(Protocol::Complete);
        Protocol::Seq(steps)
    };
    Branch { property, body }
}

/// Assembles a well-formed program from the generated shape.
fn build_program(customer: bool, body: &Body, claims: bool) -> Protocol {
    let mut steps = Vec::new();
    if customer {
        steps.push(Protocol::IssueNonce(NonceSlot::N1));
        steps.push(Protocol::Hop(MsgKind::Msg1));
    }
    steps.push(Protocol::IssueNonce(NonceSlot::N2));
    steps.push(Protocol::Hop(MsgKind::Msg2));
    match body {
        Body::Flat => measurement(claims, &mut steps),
        Body::Par(branches) => {
            steps.push(Protocol::Par(
                branches
                    .iter()
                    .map(|&(property, full)| branch(property, full, claims))
                    .collect(),
            ));
        }
        Body::Layered(platform) => {
            steps.push(Protocol::Delegate(Box::new(branch(
                *platform, true, claims,
            ))));
            steps.push(Protocol::Gate);
            measurement(claims, &mut steps);
        }
    }
    steps.push(Protocol::Hop(MsgKind::Msg5));
    if claims {
        steps.push(Protocol::VerifyQuote(QuoteKind::Q2));
        steps.push(Protocol::CheckNonce(NonceSlot::N2));
    }
    if customer {
        steps.push(Protocol::Hop(MsgKind::Msg6));
        if claims {
            steps.push(Protocol::VerifyQuote(QuoteKind::Q1));
            steps.push(Protocol::CheckNonce(NonceSlot::N1));
        }
    }
    steps.push(Protocol::Complete);
    Protocol::Seq(steps)
}

/// Compiles and runs `program` on a fresh cloud at the given shard
/// width, returning the report (or typed error) and the DRBG probe.
fn run_once(
    program: &Protocol,
    property: SecurityProperty,
    shards: usize,
    seed: u64,
    drop: bool,
) -> (Result<AttestationReport, String>, u64) {
    let mut cloud = CloudBuilder::new()
        .servers(2)
        .seed(seed)
        .shards(shards)
        .build();
    let vid = cloud
        .request_vm(
            VmRequest::new(Flavor::Small, Image::Cirros)
                .require(SecurityProperty::RuntimeIntegrity)
                .workload(WorkloadSpec::Busy),
        )
        .expect("clean launch");
    let id = cloud
        .register_protocol(program)
        .expect("well-formed programs compile");
    if drop {
        cloud
            .network_mut()
            .set_fault_model(FaultModel::new(seed ^ 0xD0).drop_prob(0.30));
    }
    let outcome = cloud
        .attest_with_program(vid, property, id)
        .map_err(|e| e.to_string());
    (outcome, cloud.drbg_probe())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Every well-formed program compiles and its run is bit-identical
    /// across engine shard widths 1, 4 and 7.
    #[test]
    fn programs_run_identically_across_shards(
        customer in arb_bool(),
        body in arb_body(),
        claims in arb_bool(),
        property in arb_property(),
        seed in 0u64..500,
    ) {
        let program = build_program(customer, &body, claims);
        let (r1, d1) = run_once(&program, property, 1, seed, false);
        let (r4, d4) = run_once(&program, property, 4, seed, false);
        let (r7, d7) = run_once(&program, property, 7, seed, false);
        prop_assert_eq!(&r1, &r4, "K=1 vs K=4 diverged for {:?}", program);
        prop_assert_eq!(&r1, &r7, "K=1 vs K=7 diverged for {:?}", program);
        prop_assert_eq!(d1, d4);
        prop_assert_eq!(d1, d7);
        // A clean-network run of a well-formed program always reaches a
        // verdict (Gate may certify a negative one, never an error).
        prop_assert!(r1.is_ok(), "clean run failed: {:?}", r1);
    }

    /// Under a 30% drop rate every program still terminates with a
    /// verdict or a typed error — retry ladders, deadlines and the
    /// fork/join ledger never wedge a session.
    #[test]
    fn programs_terminate_under_loss(
        customer in arb_bool(),
        body in arb_body(),
        claims in arb_bool(),
        property in arb_property(),
        seed in 0u64..500,
    ) {
        let program = build_program(customer, &body, claims);
        // Returning at all is the liveness property; both verdicts and
        // typed failures are acceptable outcomes on a lossy network.
        let (outcome, _) = run_once(&program, property, 4, seed, true);
        match outcome {
            Ok(report) => prop_assert!(report.elapsed_us > 0),
            Err(reason) => prop_assert!(!reason.is_empty()),
        }
    }
}
