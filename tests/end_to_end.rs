//! End-to-end integration tests: the full CloudMonatt stack from customer
//! request through hypervisor simulation, Trust Module quoting, the
//! Figure 3 protocol and remediation — spanning every crate in the
//! workspace.

use cloudmonatt::core::{
    CloudBuilder, CloudError, Flavor, HealthStatus, Image, ResponseAction, SecurityProperty,
    VmLifecycle, VmRequest, WorkloadSpec,
};

const AVAIL: SecurityProperty = SecurityProperty::CpuAvailability { min_share_pct: 50 };

#[test]
fn full_lifecycle_with_all_four_properties() {
    let mut cloud = CloudBuilder::new().servers(3).seed(100).build();
    let vid = cloud
        .request_vm(
            VmRequest::new(Flavor::Medium, Image::Ubuntu)
                .require(SecurityProperty::StartupIntegrity)
                .require(SecurityProperty::RuntimeIntegrity)
                .require(SecurityProperty::CovertChannelFreedom)
                .require(AVAIL)
                .workload(WorkloadSpec::Busy),
        )
        .expect("launch");
    for property in [
        SecurityProperty::StartupIntegrity,
        SecurityProperty::RuntimeIntegrity,
        SecurityProperty::CovertChannelFreedom,
        AVAIL,
    ] {
        let report = cloud.runtime_attest_current(vid, property).expect("attest");
        assert!(report.healthy(), "{property}: {:?}", report.status);
        assert!(report.elapsed_us > 0);
    }
}

#[test]
fn attestation_elapsed_reflects_measurement_windows() {
    let mut cloud = CloudBuilder::new().servers(2).seed(101).build();
    let vid = cloud
        .request_vm(
            VmRequest::new(Flavor::Small, Image::Cirros)
                .require(SecurityProperty::RuntimeIntegrity)
                .require(AVAIL),
        )
        .expect("launch");
    // Task-list probing needs no window; CPU-time monitoring runs a 1s
    // window.
    let quick = cloud
        .runtime_attest_current(vid, SecurityProperty::RuntimeIntegrity)
        .unwrap();
    let windowed = cloud.runtime_attest_current(vid, AVAIL).unwrap();
    assert!(
        windowed.elapsed_us > quick.elapsed_us + 900_000,
        "windowed {} vs quick {}",
        windowed.elapsed_us,
        quick.elapsed_us
    );
}

#[test]
fn capacity_exhaustion_is_reported() {
    let mut cloud = CloudBuilder::new()
        .servers(1)
        .pcpus_per_server(1)
        .seed(102)
        .build();
    // One pCPU => 8 vCPU slots; large VMs take 4 each.
    let mut launched = 0;
    loop {
        match cloud.request_vm(VmRequest::new(Flavor::Large, Image::Cirros)) {
            Ok(_) => launched += 1,
            Err(CloudError::NoQualifiedServer { .. }) => break,
            Err(other) => panic!("unexpected error: {other}"),
        }
        assert!(launched < 10, "capacity never exhausted");
    }
    assert_eq!(launched, 2);
}

#[test]
fn suspension_freezes_the_guest_and_resume_restores_health() {
    let mut cloud = CloudBuilder::new().servers(2).seed(103).build();
    let vid = cloud
        .request_vm(
            VmRequest::new(Flavor::Small, Image::Ubuntu)
                .require(AVAIL)
                .workload(WorkloadSpec::Busy),
        )
        .expect("launch");
    cloud.respond(vid, ResponseAction::Suspension).unwrap();
    assert_eq!(cloud.vm_state(vid), Some(VmLifecycle::Suspended));
    // A suspended VM consumes no CPU: an availability attestation now
    // reports starvation (usage 0).
    let report = cloud.runtime_attest_current(vid, AVAIL).unwrap();
    assert!(!report.healthy());
    cloud.resume(vid).unwrap();
    let report = cloud.runtime_attest_current(vid, AVAIL).unwrap();
    assert!(report.healthy(), "{:?}", report.status);
}

#[test]
fn migration_preserves_monitored_properties() {
    let mut cloud = CloudBuilder::new().servers(3).seed(104).build();
    let vid = cloud
        .request_vm(
            VmRequest::new(Flavor::Small, Image::Fedora)
                .require(SecurityProperty::RuntimeIntegrity)
                .workload(WorkloadSpec::Busy),
        )
        .expect("launch");
    let first = cloud.server_of(vid).unwrap();
    for _ in 0..3 {
        cloud.respond(vid, ResponseAction::Migration).unwrap();
        assert_ne!(cloud.server_of(vid), None);
        let report = cloud
            .runtime_attest_current(vid, SecurityProperty::RuntimeIntegrity)
            .unwrap();
        assert!(report.healthy());
    }
    // With three servers it must have moved at least once.
    let _ = first;
}

#[test]
fn periodic_attestation_detects_mid_run_infection() {
    let mut cloud = CloudBuilder::new().servers(2).seed(105).build();
    let vid = cloud
        .request_vm(
            VmRequest::new(Flavor::Small, Image::Ubuntu)
                .require(SecurityProperty::RuntimeIntegrity)
                .workload(WorkloadSpec::Busy),
        )
        .expect("launch");
    let sub = cloud
        .runtime_attest_periodic(vid, SecurityProperty::RuntimeIntegrity, 5_000_000)
        .unwrap();
    cloud.run(12_000_000); // two clean reports
    cloud.infect_vm(vid, "late-malware").unwrap();
    cloud.run(12_000_000); // two infected reports
    let reports = cloud.stop_attest_periodic(sub).unwrap();
    assert!(reports.len() >= 3, "got {} reports", reports.len());
    assert!(reports.first().unwrap().healthy());
    assert!(!reports.last().unwrap().healthy());
    let HealthStatus::Compromised { reason } = &reports.last().unwrap().status else {
        panic!();
    };
    assert!(reason.contains("late-malware"));
}

#[test]
fn service_throughput_is_observable_through_the_cloud() {
    let mut cloud = CloudBuilder::new().servers(2).seed(106).build();
    let vid =
        cloud
            .request_vm(VmRequest::new(Flavor::Small, Image::Cirros).workload(
                WorkloadSpec::Service(cloudmonatt::workloads::CloudService::Web),
            ))
            .expect("launch");
    cloud.advance(10_000_000);
    let requests = cloud.service_requests(vid).expect("stats");
    assert!(requests > 500, "web service completed {requests} requests");
}

#[test]
fn spec_program_completion_is_observable() {
    let mut cloud = CloudBuilder::new().servers(2).seed(107).build();
    let vid =
        cloud
            .request_vm(VmRequest::new(Flavor::Small, Image::Cirros).workload(
                WorkloadSpec::Program(cloudmonatt::workloads::SpecProgram::Bzip2),
            ))
            .expect("launch");
    assert_eq!(cloud.program_elapsed_us(vid), None);
    cloud.advance(10_000_000);
    let elapsed = cloud.program_elapsed_us(vid).expect("finished");
    // Solo: finishes in exactly its work time (modulo launch epoch).
    assert!(elapsed < 10_000_000);
}

#[test]
fn deterministic_cloud_given_seed() {
    let run = |seed: u64| {
        let mut cloud = CloudBuilder::new().servers(3).seed(seed).build();
        let vid = cloud
            .request_vm(
                VmRequest::new(Flavor::Small, Image::Cirros)
                    .require(SecurityProperty::StartupIntegrity)
                    .workload(WorkloadSpec::Busy),
            )
            .unwrap();
        let report = cloud
            .runtime_attest_current(vid, SecurityProperty::StartupIntegrity)
            .unwrap();
        (
            cloud.server_of(vid),
            report.elapsed_us,
            cloud.wall_clock_us(),
        )
    };
    assert_eq!(run(55), run(55));
}
