//! Counting-allocator proof that the warm attestation path is
//! allocation-free.
//!
//! A counting `#[global_allocator]` wraps the system allocator and
//! tallies every `alloc`/`realloc` call in this test binary. The test
//! builds a one-server cloud, launches a VM, disables network
//! transcript logging, and warms the session/arena/wheel buffers with a
//! batch of direct attestations. After warm-up, every further
//! attestation round must perform **zero** heap allocations: the slab
//! arena recycles the session slot, `Wire::encode_into` reuses the
//! session's wire buffer, the channel seals and opens into retained
//! scratch buffers, and the timer wheel's slot `VecDeque`s have reached
//! their steady-state capacity.
//!
//! This pins the perf claim structurally: it is impossible for a later
//! change to quietly reintroduce per-round heap traffic without this
//! test failing.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

use cloudmonatt::core::{CloudBuilder, Flavor, Image, SecurityProperty, VmRequest, WorkloadSpec};

struct CountingAlloc;

static ALLOC_CALLS: AtomicU64 = AtomicU64::new(0);
static TRACE: std::sync::atomic::AtomicBool = std::sync::atomic::AtomicBool::new(false);

thread_local! {
    static IN_TRACE: std::cell::Cell<bool> = const { std::cell::Cell::new(false) };
}

fn maybe_trace() {
    if TRACE.load(Ordering::Relaxed) {
        IN_TRACE.with(|g| {
            if !g.get() {
                g.set(true);
                let bt = std::backtrace::Backtrace::force_capture();
                eprintln!("--- alloc ---\n{bt}");
                g.set(false);
            }
        });
    }
}

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOC_CALLS.fetch_add(1, Ordering::Relaxed);
        maybe_trace();
        System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOC_CALLS.fetch_add(1, Ordering::Relaxed);
        maybe_trace();
        System.realloc(ptr, layout, new_size)
    }
}

#[global_allocator]
static COUNTER: CountingAlloc = CountingAlloc;

fn alloc_count() -> u64 {
    ALLOC_CALLS.load(Ordering::Relaxed)
}

#[test]
fn warm_attestation_rounds_do_not_allocate() {
    let mut cloud = CloudBuilder::new().servers(1).seed(77).build();

    // StartupIntegrity is the windowless Table-1 property: the whole
    // Msg1–Msg6 exchange runs inline with no usage-window events.
    let vid = cloud
        .request_vm(
            VmRequest::new(Flavor::Small, Image::Cirros)
                .require(SecurityProperty::StartupIntegrity)
                .workload(WorkloadSpec::Idle),
        )
        .expect("launch");

    // The network transcript is a per-message Vec push (debugging aid);
    // the zero-alloc claim is about the protocol path, so turn it off
    // exactly as the large-fleet sweeps do.
    cloud.set_network_logging(false);

    // Warm-up: let every reusable buffer (session wire/sealed/inbox,
    // cloud scratch, wheel slots, channel replay windows) reach its
    // steady-state capacity.
    for _ in 0..32 {
        cloud
            .runtime_attest_current(vid, SecurityProperty::StartupIntegrity)
            .expect("warm-up attestation");
    }

    if std::env::var_os("ZERO_ALLOC_TRACE").is_some() {
        TRACE.store(true, Ordering::Relaxed);
        let _ = cloud.runtime_attest_current(vid, SecurityProperty::StartupIntegrity);
        TRACE.store(false, Ordering::Relaxed);
    }

    let before = alloc_count();
    let rounds = 64u64;
    for _ in 0..rounds {
        let report = cloud
            .runtime_attest_current(vid, SecurityProperty::StartupIntegrity)
            .expect("measured attestation");
        // Touch the report so the round cannot be optimised away.
        assert_eq!(report.vid, vid);
    }
    let delta = alloc_count() - before;

    assert_eq!(
        delta,
        0,
        "warm attestation path allocated {delta} times over {rounds} rounds \
         ({:.2} allocs/round); the hot path must be allocation-free",
        delta as f64 / rounds as f64
    );
}

#[test]
fn warm_rounds_of_the_compiled_figure3_program_do_not_allocate() {
    // The same proof, but with the Figure-3 protocol explicitly
    // compiled from its IR term and driven through the program
    // interpreter entry point: the protocol-as-data layer must add no
    // warm-path allocations over the hand-written state machine it
    // replaced. Compilation itself allocates (once, cold) and happens
    // before the warm-up.
    use cloudmonatt::core::Protocol;

    let mut cloud = CloudBuilder::new().servers(1).seed(78).build();
    let vid = cloud
        .request_vm(
            VmRequest::new(Flavor::Small, Image::Cirros)
                .require(SecurityProperty::StartupIntegrity)
                .workload(WorkloadSpec::Idle),
        )
        .expect("launch");
    cloud.set_network_logging(false);
    let program = cloud
        .register_protocol(&Protocol::figure3_customer())
        .expect("compile figure 3");

    for _ in 0..32 {
        cloud
            .attest_with_program(vid, SecurityProperty::StartupIntegrity, program)
            .expect("warm-up attestation");
    }

    let before = alloc_count();
    let rounds = 64u64;
    for _ in 0..rounds {
        let report = cloud
            .attest_with_program(vid, SecurityProperty::StartupIntegrity, program)
            .expect("measured attestation");
        assert_eq!(report.vid, vid);
    }
    let delta = alloc_count() - before;

    assert_eq!(
        delta,
        0,
        "the compiled-program interpreter allocated {delta} times over {rounds} \
         warm rounds ({:.2} allocs/round); protocols-as-data must not cost heap \
         traffic on the warm path",
        delta as f64 / rounds as f64
    );
}

#[test]
fn allocator_counter_is_live() {
    // Sanity-check the instrument itself: a boxed allocation must bump
    // the counter, otherwise the zero-delta assertion above proves
    // nothing.
    let before = alloc_count();
    let v: Vec<u64> = Vec::with_capacity(16);
    std::hint::black_box(&v);
    assert!(alloc_count() > before, "counting allocator not active");
}
