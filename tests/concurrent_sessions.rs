//! 64 concurrent periodic attestation subscriptions over a 10% lossy
//! network.
//!
//! All subscriptions share one fixed period, so a whole round of 64
//! Figure-3 sessions comes due at the same virtual instant. The
//! discrete-event engine interleaves every session on one queue: a
//! subscription stuck retransmitting across a lossy hop retries on its
//! own timer while the other 63 keep flowing, so the round completes in
//! roughly one session's latency instead of sixty-four (no head-of-line
//! blocking). The test also reconciles the fault-injection counters
//! against the protocol counters end to end.

use cloudmonatt::core::{CloudBuilder, Flavor, Image, SecurityProperty, VmRequest};
use cloudmonatt::net::sim::FaultModel;

const SUBS: usize = 64;
const PERIOD_US: u64 = 1_000_000;

#[test]
fn sixty_four_lossy_subscriptions_interleave_without_blocking() {
    let mut cloud = CloudBuilder::new()
        .servers(4)
        .pcpus_per_server(16)
        .seed(0xC0FFEE)
        .build();

    let mut vids = Vec::with_capacity(SUBS);
    for _ in 0..SUBS {
        let vid = cloud
            .request_vm(
                VmRequest::new(Flavor::Small, Image::Cirros)
                    .require(SecurityProperty::RuntimeIntegrity),
            )
            .expect("launch on a clean network");
        vids.push(vid);
    }

    // One sample on the still-clean network: the per-session latency a
    // serialized controller would pay 64 times per round.
    let clean = cloud
        .runtime_attest_current(vids[0], SecurityProperty::RuntimeIntegrity)
        .expect("clean-path attestation");
    assert!(clean.healthy());
    let single_us = clean.elapsed_us;
    assert!(single_us > 0);

    let mut subs = Vec::with_capacity(SUBS);
    for &vid in &vids {
        let id = cloud
            .runtime_attest_periodic(vid, SecurityProperty::RuntimeIntegrity, PERIOD_US)
            .expect("subscribe");
        subs.push(id);
    }

    cloud
        .network_mut()
        .set_fault_model(FaultModel::new(0xBAD_CAB1E).drop_prob(0.10));
    cloud.reset_protocol_stats();
    let t0 = cloud.wall_clock_us();

    // Three rounds fit: firings at +1s, then period + session latency
    // per subsequent round.
    cloud.run(4 * PERIOD_US);

    let stats = cloud.protocol_stats();
    let faults = cloud
        .network_mut()
        .fault_stats()
        .expect("fault model installed");

    // --- No head-of-line blocking ------------------------------------
    // Every subscription's first session starts before any completes
    // (the first message arrival is scheduled far after all 64 firings
    // pop), so the in-flight high-water mark is the full fleet.
    assert_eq!(stats.max_in_flight, SUBS as u64);
    assert_eq!(cloud.sessions_in_flight(), 0, "run() drains every session");
    assert!(stats.max_queue_depth >= SUBS as u64);

    // The whole first round lands within a couple of single-session
    // latencies of its due instant, not 64 of them.
    let due = t0 + PERIOD_US;
    let mut slowest_first_report = 0u64;
    for &id in &subs {
        let health = cloud.subscription_health(id).expect("live subscription");
        assert!(
            health.delivered >= 2,
            "subscription {id} starved: {health:?}"
        );
        assert!(health.missed <= 1, "subscription {id} flaky: {health:?}");
        assert_eq!(health.failed_responses, 0);
        let reports = cloud.stop_attest_periodic(id).expect("collect reports");
        let first = reports.first().expect("at least one report");
        assert!(first.healthy());
        assert!(first.issued_at_us >= due);
        slowest_first_report = slowest_first_report.max(first.issued_at_us);
    }
    let round_us = slowest_first_report - due;
    let serialized_us = SUBS as u64 * single_us;
    assert!(
        round_us < 3 * single_us,
        "round took {round_us}us vs single-session {single_us}us"
    );
    assert!(
        8 * round_us < serialized_us,
        "round {round_us}us is not sub-linear vs serialized {serialized_us}us"
    );

    // --- Fault and protocol counters reconcile -----------------------
    // Loss-only injection: every network drop is observed as exactly one
    // protocol-level drop, every drop is charged one retransmit timeout,
    // and nothing fails authentication (records are opened in send
    // order, so the replay window never rejects a clean record).
    assert!(
        stats.drops_seen > 0,
        "10% loss produced no drops: {stats:?}"
    );
    assert_eq!(stats.drops_seen, faults.dropped);
    assert_eq!(stats.timeouts, stats.drops_seen);
    assert_eq!(stats.auth_failures, 0);
    assert_eq!(stats.duplicates_rejected, 0);
    assert!(stats.retries > 0);
    assert!(stats.retries <= stats.drops_seen);
    if stats.sessions_failed == 0 {
        // Every dropped attempt was followed by a retransmission.
        assert_eq!(stats.retries, stats.drops_seen);
    }
    assert_eq!(
        stats.sessions_started,
        stats.sessions_completed + stats.sessions_failed
    );
    assert!(stats.sessions_completed >= 2 * SUBS as u64);
}
