//! Control-plane chaos differential proptest.
//!
//! Kills controller shards and AS replicas at arbitrary scripted times
//! while periodic attestation subscriptions run, and asserts the entire
//! observable outcome — subscription health, protocol counters, failover
//! counters, outage counters, final wall clock and the DRBG position —
//! is bit-identical across engine shard widths 1, 4 and 7 (the pattern
//! of `protocol_ir_differential.rs`, lifted from single sessions to a
//! replicated control plane under churn).
//!
//! A second property pins the liveness ledger: once every scripted
//! recovery has been applied, no session is wedged, no control-plane
//! node is down, and every shard is owned by exactly one live
//! controller instance.

use cloudmonatt::core::{
    CloudBuilder, Flavor, Image, NodeId, OutageModel, SecurityProperty, VmRequest,
};
use proptest::prelude::*;

/// Horizon of every run, in µs. Scripted events are quantized onto a
/// coarse grid well inside it so each crash has room to recover.
const HORIZON_US: u64 = 24_000_000;
const SLOT_US: u64 = 1_500_000;

/// A scripted transition: (crash slot, node selector, recovery-delta
/// slots). The selector is reduced mod the control-plane node count so
/// every generated value is valid for any (K, N).
type Event = (u64, u8, u64);

/// Map an arbitrary selector onto the control-plane node set:
/// controller instances first (0..K), then AS replicas (0..N), using
/// the same index-0 normalization as `controlplane::{controller_node,
/// as_node}`.
fn node_for(selector: u8, k: u32, n: u32) -> NodeId {
    let i = u64::from(selector) % u64::from(k + n);
    let i = i as u32;
    if i < k {
        if i == 0 {
            NodeId::Controller
        } else {
            NodeId::ControllerReplica(i)
        }
    } else if i == k {
        NodeId::AttestationServer
    } else {
        NodeId::AsReplica(i - k)
    }
}

/// Build the scripted outage model. Each event contributes one crash
/// and one recovery; a node selected twice simply gets a second
/// (idempotent) transition, which both runs replay identically.
fn outage_script(seed: u64, events: &[Event], k: u32, n: u32) -> OutageModel {
    let mut model = OutageModel::new(seed ^ 0xC1A0);
    for &(slot, selector, delta) in events {
        let node = node_for(selector, k, n);
        let crash_at = (1 + slot) * SLOT_US;
        let recover_at = crash_at + delta * SLOT_US;
        model = model.crash_at(crash_at, node).recover_at(recover_at, node);
    }
    model
}

/// One full run: launch two VMs, subscribe both, apply the scripted
/// control-plane churn, and render everything observable into a single
/// comparable string.
fn run_once(shards: usize, k: u32, n: u32, seed: u64, events: &[Event]) -> String {
    let mut cloud = CloudBuilder::new()
        .servers(3)
        .seed(seed)
        .shards(shards)
        .control_plane(k, n)
        .build();
    let mut vids = Vec::new();
    for image in [Image::Cirros, Image::Ubuntu] {
        let vid = cloud
            .request_vm(
                VmRequest::new(Flavor::Small, image).require(SecurityProperty::RuntimeIntegrity),
            )
            .expect("launch");
        vids.push(vid);
    }
    cloud.set_outage_model(outage_script(seed, events, k, n));
    let mut subs = Vec::new();
    for (i, &vid) in vids.iter().enumerate() {
        let sub = cloud
            .runtime_attest_periodic(
                vid,
                SecurityProperty::RuntimeIntegrity,
                900_000 + 150_000 * i as u64,
            )
            .expect("subscribe");
        subs.push(sub);
    }
    cloud.run(HORIZON_US);

    let mut out = String::new();
    for (i, &sub) in subs.iter().enumerate() {
        let health = cloud.subscription_health(sub).expect("health");
        out.push_str(&format!("sub{i}: {health:?}\n"));
    }
    out.push_str(&format!("protocol: {:?}\n", cloud.protocol_stats()));
    out.push_str(&format!("outage: {:?}\n", cloud.outage_stats()));
    out.push_str(&format!(
        "control_plane: {:?}\n",
        cloud.control_plane_stats()
    ));
    out.push_str(&format!("in_flight: {}\n", cloud.sessions_in_flight()));
    out.push_str(&format!("wall_clock_us: {}\n", cloud.wall_clock_us()));
    out.push_str(&format!("rng_probe: {:#018x}\n", cloud.drbg_probe()));
    out
}

fn arb_events() -> impl Strategy<Value = Vec<Event>> {
    proptest::collection::vec((0u64..8, 0u8..=u8::MAX, 1u64..5), 1..4)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Scripted controller/AS-replica churn replays bit-identically
    /// across engine shard widths: the event engine's sharding is
    /// structural and cannot leak into failover decisions, rerouting,
    /// retry ladders or the DRBG draw order.
    #[test]
    fn control_plane_churn_is_identical_across_shards(
        k in 1u32..=3,
        n in 1u32..=3,
        seed in 0u64..500,
        events in arb_events(),
    ) {
        let r1 = run_once(1, k, n, seed, &events);
        let r4 = run_once(4, k, n, seed, &events);
        let r7 = run_once(7, k, n, seed, &events);
        prop_assert_eq!(&r1, &r4, "K=1 vs K=4 diverged (cp {}x{}, {:?})", k, n, &events);
        prop_assert_eq!(&r1, &r7, "K=1 vs K=7 diverged (cp {}x{}, {:?})", k, n, &events);
    }

    /// Liveness ledger after the script drains: every crash recovered,
    /// nothing wedged in flight, and every shard owned by exactly one
    /// live controller instance.
    #[test]
    fn control_plane_churn_reconciles_exactly(
        k in 1u32..=3,
        n in 1u32..=3,
        seed in 0u64..500,
        events in arb_events(),
    ) {
        let mut cloud = CloudBuilder::new()
            .servers(3)
            .seed(seed)
            .control_plane(k, n)
            .build();
        let vid = cloud
            .request_vm(
                VmRequest::new(Flavor::Small, Image::Cirros)
                    .require(SecurityProperty::RuntimeIntegrity),
            )
            .expect("launch");
        cloud.set_outage_model(outage_script(seed, &events, k, n));
        let sub = cloud
            .runtime_attest_periodic(vid, SecurityProperty::RuntimeIntegrity, 1_000_000)
            .expect("subscribe");
        cloud.run(HORIZON_US);

        // Every scripted recovery fits inside the horizon (max crash
        // slot 8, max delta 4 → slot 12 of 16), so the ledger must have
        // fully reconciled.
        prop_assert_eq!(cloud.sessions_in_flight(), 0, "wedged sessions");
        prop_assert!(cloud.down_nodes().is_empty(), "nodes still down: {:?}", cloud.down_nodes());
        let outage = cloud.outage_stats();
        prop_assert_eq!(outage.crashes, outage.recoveries, "unbalanced transitions: {:?}", outage);
        let topology = cloud.control_plane();
        for shard in 0..topology.controllers() {
            let owner = topology.owner_of_shard(shard);
            prop_assert!(owner.is_some(), "shard {} ownerless after full recovery", shard);
            // Exactly one owner, and it is live. With everything
            // recovered, ownership must have reverted to the home
            // instance (ownership is a pure function of the up-set).
            prop_assert_eq!(owner, Some(shard), "shard {} not reclaimed by its home", shard);
        }
        for replica in 0..topology.replicas() {
            prop_assert!(topology.replica_is_live(replica), "replica {} still down", replica);
        }
        // The subscription kept delivering: with ≥ 24 periods in the
        // horizon and bounded outages, a healthy majority must land.
        let health = cloud.subscription_health(sub).expect("health");
        prop_assert!(health.delivered >= 8, "starved subscription: {health:?}");
    }
}
