//! Integration tests for the four case studies of Section 4: each attack
//! is mounted through the public API and must be caught by the matching
//! property attestation — and only by it.

use cloudmonatt::core::{
    CloudBuilder, CloudError, Flavor, HealthStatus, Image, SecurityProperty, ServerId, VmRequest,
    WorkloadSpec,
};

const AVAIL: SecurityProperty = SecurityProperty::CpuAvailability { min_share_pct: 50 };

/// Case Study I: tampered image.
#[test]
fn case_i_tampered_image_rejected() {
    let mut cloud = CloudBuilder::new().servers(2).seed(200).build();
    for image in Image::ALL {
        let err = cloud
            .request_vm(
                VmRequest::new(Flavor::Small, image)
                    .require(SecurityProperty::StartupIntegrity)
                    .with_tampered_image(),
            )
            .unwrap_err();
        assert!(
            matches!(err, CloudError::LaunchRejected { .. }),
            "{image}: {err}"
        );
    }
}

/// Case Study I: corrupted platform — the scheduler routes around it,
/// and when it is the only server, launch fails.
#[test]
fn case_i_corrupted_platform() {
    let mut cloud = CloudBuilder::new()
        .servers(1)
        .seed(201)
        .corrupt_platform(0)
        .build();
    let err = cloud
        .request_vm(
            VmRequest::new(Flavor::Small, Image::Cirros)
                .require(SecurityProperty::StartupIntegrity),
        )
        .unwrap_err();
    assert!(
        matches!(err, CloudError::NoQualifiedServer { .. }),
        "launch on a wholly corrupted cloud should fail: {err}"
    );
    // Without the startup-integrity requirement the VM launches blindly —
    // the necessity of attestation.
    assert!(cloud
        .request_vm(VmRequest::new(Flavor::Small, Image::Cirros))
        .is_ok());
}

/// Case Study II: rootkit-hidden malware caught by VMI; visible malware
/// is not a *hiding* violation.
#[test]
fn case_ii_rootkit_detection() {
    let mut cloud = CloudBuilder::new().servers(2).seed(202).build();
    let vid = cloud
        .request_vm(
            VmRequest::new(Flavor::Small, Image::Ubuntu)
                .require(SecurityProperty::RuntimeIntegrity),
        )
        .unwrap();
    // Clean VM passes.
    assert!(cloud
        .runtime_attest_current(vid, SecurityProperty::RuntimeIntegrity)
        .unwrap()
        .healthy());
    // Hidden malware fails the check and is named in the evidence.
    cloud.infect_vm(vid, "keylogger").unwrap();
    let report = cloud
        .runtime_attest_current(vid, SecurityProperty::RuntimeIntegrity)
        .unwrap();
    let HealthStatus::Compromised { reason } = &report.status else {
        panic!("expected detection");
    };
    assert!(reason.contains("keylogger"));
}

/// Case Study III: the covert channel is detected on the sender, while
/// every benign workload passes (no false positives).
#[test]
fn case_iii_covert_channel_and_false_positives() {
    let mut cloud = CloudBuilder::new().servers(2).seed(203).build();
    let sender = cloud
        .request_vm(
            VmRequest::new(Flavor::Small, Image::Cirros)
                .require(SecurityProperty::CovertChannelFreedom)
                .workload(WorkloadSpec::CovertSender)
                .on_server(ServerId(0))
                .pin_pcpu(0),
        )
        .unwrap();
    let _victim = cloud
        .request_vm(
            VmRequest::new(Flavor::Small, Image::Cirros)
                .workload(WorkloadSpec::Busy)
                .on_server(ServerId(0))
                .pin_pcpu(0),
        )
        .unwrap();
    cloud.advance(500_000);
    assert!(!cloud
        .runtime_attest_current(sender, SecurityProperty::CovertChannelFreedom)
        .unwrap()
        .healthy());
    // Benign workloads on the other server never trip the detector.
    for (i, svc) in cloudmonatt::workloads::CloudService::ALL
        .into_iter()
        .enumerate()
    {
        let benign = cloud
            .request_vm(
                VmRequest::new(Flavor::Small, Image::Cirros)
                    .require(SecurityProperty::CovertChannelFreedom)
                    .workload(WorkloadSpec::Service(svc))
                    .on_server(ServerId(1))
                    .pin_pcpu(i % 4),
            )
            .unwrap();
        let report = cloud
            .runtime_attest_current(benign, SecurityProperty::CovertChannelFreedom)
            .unwrap();
        assert!(
            report.healthy(),
            "{svc} false positive: {:?}",
            report.status
        );
    }
}

/// Case Study IV: the boost attack starves the victim; a fair CPU-bound
/// neighbour does not trip the SLA check.
#[test]
fn case_iv_availability() {
    let mut cloud = CloudBuilder::new().servers(2).seed(204).build();
    let victim = cloud
        .request_vm(
            VmRequest::new(Flavor::Small, Image::Ubuntu)
                .require(AVAIL)
                .workload(WorkloadSpec::Busy)
                .on_server(ServerId(0))
                .pin_pcpu(0),
        )
        .unwrap();
    // Fair CPU-bound neighbour: victim gets its 50% entitlement.
    let _fair = cloud
        .request_vm(
            VmRequest::new(Flavor::Small, Image::Cirros)
                .workload(WorkloadSpec::Busy)
                .on_server(ServerId(0))
                .pin_pcpu(0),
        )
        .unwrap();
    cloud.advance(1_000_000);
    let report = cloud.runtime_attest_current(victim, AVAIL).unwrap();
    assert!(
        report.healthy(),
        "fair sharing flagged: {:?}",
        report.status
    );
    // Now the attacker arrives.
    let _attacker = cloud
        .request_vm(
            VmRequest::new(Flavor::Medium, Image::Cirros)
                .workload(WorkloadSpec::BoostAttack)
                .on_server(ServerId(0))
                .pin_pcpu(0),
        )
        .unwrap();
    cloud.advance(1_000_000);
    let report = cloud.runtime_attest_current(victim, AVAIL).unwrap();
    assert!(!report.healthy(), "attack not detected");
}

/// Extension property: scheduler-fairness attestation flags the
/// *attacker* VM directly (boost-density check), while every benign
/// service stays below the threshold.
#[test]
fn extension_scheduler_fairness_flags_the_attacker() {
    let mut cloud = CloudBuilder::new().servers(2).seed(206).build();
    let attacker = cloud
        .request_vm(
            VmRequest::new(Flavor::Medium, Image::Cirros)
                .require(SecurityProperty::SchedulerFairness)
                .workload(WorkloadSpec::BoostAttack)
                .on_server(ServerId(0))
                .pin_pcpu(0),
        )
        .unwrap();
    let victim = cloud
        .request_vm(
            VmRequest::new(Flavor::Small, Image::Cirros)
                .require(SecurityProperty::SchedulerFairness)
                .workload(WorkloadSpec::Busy)
                .on_server(ServerId(0))
                .pin_pcpu(0),
        )
        .unwrap();
    cloud.advance(1_000_000);
    let report = cloud
        .runtime_attest_current(attacker, SecurityProperty::SchedulerFairness)
        .unwrap();
    assert!(
        !report.healthy(),
        "attacker not flagged: {:?}",
        report.status
    );
    // The starved victim is not the abuser.
    let report = cloud
        .runtime_attest_current(victim, SecurityProperty::SchedulerFairness)
        .unwrap();
    assert!(
        report.healthy(),
        "victim wrongly flagged: {:?}",
        report.status
    );
    // Benign services on the other server all pass.
    for svc in cloudmonatt::workloads::CloudService::ALL {
        let vm = cloud
            .request_vm(
                VmRequest::new(Flavor::Small, Image::Cirros)
                    .require(SecurityProperty::SchedulerFairness)
                    .workload(WorkloadSpec::Service(svc))
                    .on_server(ServerId(1)),
            )
            .unwrap();
        let report = cloud
            .runtime_attest_current(vm, SecurityProperty::SchedulerFairness)
            .unwrap();
        assert!(report.healthy(), "{svc}: {:?}", report.status);
    }
}

/// Cross-property isolation: an attack on one property does not corrupt
/// verdicts for others.
#[test]
fn attacks_do_not_cross_contaminate_properties() {
    let mut cloud = CloudBuilder::new().servers(2).seed(205).build();
    let vid = cloud
        .request_vm(
            VmRequest::new(Flavor::Small, Image::Ubuntu)
                .require(SecurityProperty::StartupIntegrity)
                .require(SecurityProperty::RuntimeIntegrity)
                .workload(WorkloadSpec::Busy),
        )
        .unwrap();
    cloud.infect_vm(vid, "rootkit").unwrap();
    // Runtime integrity fails...
    assert!(!cloud
        .runtime_attest_current(vid, SecurityProperty::RuntimeIntegrity)
        .unwrap()
        .healthy());
    // ...but startup integrity (boot-time hashes) still holds.
    assert!(cloud
        .runtime_attest_current(vid, SecurityProperty::StartupIntegrity)
        .unwrap()
        .healthy());
}
