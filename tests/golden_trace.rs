//! Golden-trace determinism test.
//!
//! A seeded scenario — two launches, a direct attestation, two periodic
//! subscriptions driven through `Cloud::run` — is rendered to a textual
//! trace: every report field, the final wall clock, the protocol
//! counters and an RNG-position fingerprint. The trace is compared
//! byte-for-byte against a committed fixture that was captured from the
//! pre-event-loop implementation, so the discrete-event engine is pinned
//! to the exact clean-path behaviour of the blocking protocol it
//! replaced: same reports, same latencies, same wall clock, same number
//! of DRBG draws.
//!
//! Regenerate (only when a behaviour change is intended and understood):
//!
//! ```text
//! GOLDEN_REGEN=1 cargo test --test golden_trace
//! ```

use cloudmonatt::core::{
    AttestationReport, CloudBuilder, Flavor, Frequency, Image, SecurityProperty, VmRequest,
    WorkloadSpec,
};

const FIXTURE: &str = include_str!("golden/trace_v1.txt");
const FIXTURE_PATH: &str = "tests/golden/trace_v1.txt";

fn push_report(lines: &mut Vec<String>, tag: &str, index: usize, r: &AttestationReport) {
    lines.push(format!(
        "{tag}[{index}]: vid={} property={} status={:?} elapsed_us={} issued_at_us={}",
        r.vid.0,
        r.property.label(),
        r.status,
        r.elapsed_us,
        r.issued_at_us
    ));
}

fn scenario_trace_sharded(shards: usize) -> String {
    scenario_trace_with(|b| b.shards(shards))
}

fn scenario_trace_with(tweak: impl FnOnce(CloudBuilder) -> CloudBuilder) -> String {
    let mut lines = Vec::new();
    let mut c = tweak(CloudBuilder::new().servers(3).seed(2025)).build();

    // Launch 1: runtime-integrity VM with a busy guest.
    let vm1 = c
        .request_vm(
            VmRequest::new(Flavor::Small, Image::Cirros)
                .require(SecurityProperty::RuntimeIntegrity)
                .workload(WorkloadSpec::Busy),
        )
        .expect("launch vm1");
    let t1 = c.last_launch_timing().expect("timing vm1");
    lines.push(format!(
        "launch1: vid={} attestation_us={} total_us={}",
        vm1.0,
        t1.attestation_us,
        t1.total_us()
    ));

    // Launch 2: a windowed property (CPU availability, 1 s usage window).
    let avail = SecurityProperty::CpuAvailability { min_share_pct: 0 };
    let vm2 = c
        .request_vm(
            VmRequest::new(Flavor::Small, Image::Ubuntu)
                .require(SecurityProperty::StartupIntegrity)
                .require(avail)
                .workload(WorkloadSpec::Busy),
        )
        .expect("launch vm2");
    let t2 = c.last_launch_timing().expect("timing vm2");
    lines.push(format!(
        "launch2: vid={} attestation_us={} total_us={}",
        vm2.0,
        t2.attestation_us,
        t2.total_us()
    ));

    // One direct Table-1 attestation (quick spec, no window).
    let direct = c
        .runtime_attest_current(vm1, SecurityProperty::RuntimeIntegrity)
        .expect("direct attestation");
    push_report(&mut lines, "direct", 0, &direct);

    // Two periodic subscriptions with staggered periods (their sessions
    // never overlap, so the clean-path trace is implementation-agnostic).
    let sub1 = c
        .runtime_attest_periodic(vm1, SecurityProperty::RuntimeIntegrity, 11_000_000)
        .expect("subscribe vm1");
    let sub2 = c
        .runtime_attest_with_frequency(vm2, avail, Frequency::Fixed(13_000_000))
        .expect("subscribe vm2");
    c.run(40_000_000);

    for (tag, sub) in [("sub1", sub1), ("sub2", sub2)] {
        let health = c.subscription_health(sub).expect("health");
        lines.push(format!(
            "{tag}: delivered={} missed={} consecutive_failures={} escalations={}",
            health.delivered, health.missed, health.consecutive_failures, health.escalations
        ));
        let reports = c.stop_attest_periodic(sub).expect("stop");
        for (i, r) in reports.iter().enumerate() {
            push_report(&mut lines, tag, i, r);
        }
    }

    // Named counter fields only (not Debug of the whole struct), so the
    // fixture survives additive ProtocolStats extensions.
    let stats = c.protocol_stats();
    lines.push(format!(
        "stats: messages_sent={} retries={} drops_seen={} timeouts={} \
         duplicates_rejected={} auth_failures={}",
        stats.messages_sent,
        stats.retries,
        stats.drops_seen,
        stats.timeouts,
        stats.duplicates_rejected,
        stats.auth_failures
    ));
    lines.push(format!("wall_clock_us={}", c.wall_clock_us()));
    // One extra draw fingerprints the DRBG position: it only matches if
    // every preceding draw happened, in the same order.
    lines.push(format!("rng_probe={:#018x}", c.drbg_probe()));
    lines.join("\n") + "\n"
}

fn scenario_trace() -> String {
    scenario_trace_sharded(1)
}

#[test]
fn seeded_scenario_matches_committed_trace() {
    let trace = scenario_trace();
    if std::env::var_os("GOLDEN_REGEN").is_some() {
        std::fs::write(FIXTURE_PATH, &trace).expect("write fixture");
        return;
    }
    assert!(
        trace == FIXTURE,
        "golden trace diverged from {FIXTURE_PATH}.\n--- expected ---\n{FIXTURE}\n--- got ---\n{trace}"
    );
}

#[test]
fn trace_is_stable_across_runs_in_process() {
    // The fixture pins cross-version determinism; this pins determinism
    // across two fresh clouds in one process (no hidden global state).
    assert_eq!(scenario_trace(), scenario_trace());
}

#[test]
fn degenerate_msg4_batching_trace_is_byte_identical() {
    // A batch window of zero disables coalescing entirely, and a batch
    // size of one flushes each msg 4 the instant it is parked with a
    // zero wait — both degenerate configurations must reproduce the
    // inline path byte-for-byte: same latency charges, same DRBG draw
    // order, same reports.
    assert_eq!(
        scenario_trace_with(|b| b.as_batch(0, 64)),
        FIXTURE,
        "window=0 trace diverged"
    );
    assert_eq!(
        scenario_trace_with(|b| b.as_batch(500, 1)),
        FIXTURE,
        "max=1 trace diverged"
    );
}

#[test]
fn dormant_control_plane_trace_is_byte_identical() {
    // Explicitly configuring the replicated control plane at its
    // dormant size (one controller instance, one AS replica) must be
    // indistinguishable from never configuring it: no extra key
    // material is drawn, no route tag rides the wire (so the
    // payload-length latency model sees identical bytes), and the
    // control-plane retry ladder defaults to the data-plane one.
    assert_eq!(
        scenario_trace_with(|b| b.control_plane(1, 1)),
        FIXTURE,
        "K=1/N=1 control plane diverged"
    );
}

#[test]
fn sharded_engine_trace_is_byte_identical() {
    // Sharding the event engine is structural only: the global sequence
    // counter and least-(due, seq) merge make the pop order — and hence
    // latencies, RNG draw order and every report — independent of K.
    assert_eq!(scenario_trace_sharded(4), FIXTURE, "K=4 trace diverged");
    assert_eq!(scenario_trace_sharded(7), FIXTURE, "K=7 trace diverged");
}
